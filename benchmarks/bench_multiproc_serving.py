"""Multi-process serving: throughput and p99 vs worker-process count.

Not a paper table: this bench measures the ``--procs`` tier of
``repro.serve`` (``ProcessPool``).  Four TFMAE models — all snapshots of
the same fit, so every correct answer is bitwise-identical — are
published to a registry and served over live HTTP while concurrent
clients drive a mixed ``/score`` stream across them.  Rows vary the
worker-process count (1, 2, 4) plus a thread-tier reference row
(``--procs 0``), measuring client-side throughput and latency through
the same :class:`repro.serve.metrics.Histogram` the serving bench uses.

The load generator is closed-loop with **fixed per-worker concurrency**
(``CLIENTS_PER_PROC`` clients per worker process): measuring a 4-worker
deployment under the offered load that saturates one worker would
conflate capacity with queueing, and — because workers micro-batch
their pipe inbox — would also hand the single-worker row an artificial
coalescing advantage (all clients drain into one big batch).  Each row
reports the median of ``DRIVES`` runs; the JSON records every sample
and the client count per row.

The model names are chosen so the consistent-hash ring spreads them one
per worker at ``--procs 4`` and two per worker at ``--procs 2`` — the
locality the ring buys: a dedicated worker sees long single-model runs
and folds them into larger vectorized batches, where a lone worker
interleaves all four streams.

Three acceptance properties are asserted in-bench:

* **bitwise equivalence** — every HTTP score, from every tier and worker
  count, equals the in-process ``score_last`` reference exactly;
* **monotonic throughput** — adding worker processes must raise
  throughput wherever there is CPU headroom (``min(procs, cores)``
  grows); on a core-starved runner the requirement degrades honestly to
  "no collapse" (the JSON records ``cpu_count`` and the regime so the
  committed numbers are interpretable);
* **single-copy weights** — each model-version owns exactly one shared
  segment (``status()["shared_segments"]``), and a dedicated RSS probe
  loads the four models one by one into a single worker: its
  ``RssShmem`` grows by the full segment size per model (the weights are
  mapped from the shared segment) while the *marginal* private
  ``RssAnon`` per additional model stays a small fraction of one weight
  copy.  Marginal growth is the honest signal — the first model also
  pays one-time lazy imports and scoring caches (~20 MB), which a naive
  before/after total would misread as copied weights.  The HTTP phase
  re-checks the owners: every worker's ``RssShmem`` growth covers the
  segments resident on it.

Environment: ``REPRO_BENCH_POOL_REQUESTS`` (default 160) requests per
row.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import urllib.error
import urllib.request

import numpy as np

from repro import TFMAE, TFMAEConfig
from repro.serve import InferenceServer, ModelRegistry, ProcessPool
from repro.serve.metrics import Histogram

from _common import SEED, save_json, save_result

WINDOW = 100
PROC_COUNTS = (1, 2, 4)
#: Closed-loop load: offered concurrency scales with deployment size so
#: every row is measured at saturation with the same per-worker load.
CLIENTS_PER_PROC = 2
DRIVES = 5  # median-of-N per row; single-core schedulers are noisy
REQUESTS = int(os.environ.get("REPRO_BENCH_POOL_REQUESTS", "160"))
#: Chosen for their SHA-1 ring placement: one per slot at --procs 4
#: (current→0, flow→1, vibration→2, humidity→3), two per slot at 2.
MODELS = ("current", "flow", "vibration", "humidity")
N_WINDOWS = 4


def _fit_detector() -> tuple[TFMAE, list[np.ndarray]]:
    rng = np.random.default_rng(SEED)
    t = np.arange(700)
    series = np.sin(2 * np.pi * t / 25.0)[:, None] + rng.normal(0, 0.05, (700, 1))
    # d_model=128 keeps the shared state ~9 MB per model: large enough
    # that a hidden private copy per worker would dominate the RSS delta.
    config = TFMAEConfig(window_size=WINDOW, d_model=128, num_layers=2,
                         num_heads=4, anomaly_ratio=5.0, epochs=1,
                         batch_size=16, learning_rate=1e-3, seed=SEED)
    detector = TFMAE(config)
    detector.fit(series[:550], series[550:])
    windows = [series[i * 37 : i * 37 + WINDOW] for i in range(N_WINDOWS)]
    return detector, windows


def _post_score(url: str, body: bytes) -> tuple[int, dict]:
    request = urllib.request.Request(
        url + "/score", data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def _bodies(windows: list[np.ndarray]) -> dict[tuple[str, int], bytes]:
    return {
        (model, widx): json.dumps(
            {"model": model, "window": window.tolist()}
        ).encode("utf-8")
        for model in MODELS
        for widx, window in enumerate(windows)
    }


def _warmup(url: str, bodies: dict[tuple[str, int], bytes]) -> None:
    """Load every model on its owner and prime caches, outside the clock."""
    for key in sorted(bodies):
        deadline = time.monotonic() + 60.0
        while True:
            try:
                status, _ = _post_score(url, bodies[key])
            except urllib.error.HTTPError as error:
                status = error.code
                error.read()
            if status == 200:
                break
            if time.monotonic() >= deadline:  # pragma: no cover - bench guard
                raise RuntimeError(f"warmup of {key} stuck at HTTP {status}")
            time.sleep(0.05)


def _drive_once(url: str, bodies: dict[tuple[str, int], bytes],
                expected: dict[int, float], clients: int) -> dict:
    """Push the mixed model×window stream; verify every score bitwise."""
    plan = [
        (MODELS[i % len(MODELS)], (i // len(MODELS)) % N_WINDOWS)
        for i in range(REQUESTS)
    ]
    latency = Histogram(capacity=REQUESTS)
    errors: list[BaseException] = []

    def client(offsets: range) -> None:
        for offset in offsets:
            model, widx = plan[offset]
            started = time.perf_counter()
            try:
                status, payload = _post_score(url, bodies[(model, widx)])
                if status != 200 or payload["score"] != expected[widx]:
                    raise AssertionError(
                        f"{model} w{widx}: status {status}, "
                        f"score {payload.get('score')!r} != {expected[widx]!r}"
                    )
            except BaseException as error:  # pragma: no cover - bench guard
                errors.append(error)
                return
            latency.observe(time.perf_counter() - started)

    threads = [
        threading.Thread(target=client, args=(range(i, REQUESTS, clients),))
        for i in range(clients)
    ]
    begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begin
    if errors:
        raise errors[0]
    summary = latency.summary()
    return {
        "rps": REQUESTS / elapsed,
        "p50": summary["p50"] * 1e3,
        "p99": summary["p99"] * 1e3,
    }


def _drive(url: str, bodies: dict[tuple[str, int], bytes],
           expected: dict[int, float], clients: int) -> dict:
    """Median-of-``DRIVES`` row (by throughput); keeps every sample.

    One unmeasured drive first: the row's client count produces batch
    shapes the sequential warmup never formed, so the first concurrent
    pass pays JIT tape construction and shared-segment page faults.
    """
    _drive_once(url, bodies, expected, clients)
    samples = [
        _drive_once(url, bodies, expected, clients) for _ in range(DRIVES)
    ]
    row = dict(sorted(samples, key=lambda s: s["rps"])[len(samples) // 2])
    row["clients"] = clients
    row["rps_samples"] = [s["rps"] for s in samples]
    return row


def _single_copy_probe(detector: TFMAE, window: np.ndarray) -> dict:
    """Load the models one by one into a single worker, watching RSS.

    The counterfactual (weights copied into worker-private memory) would
    grow ``RssAnon`` by ~one segment per model; the shared mapping grows
    ``RssShmem`` by exactly that instead.  Marginal growth per
    *additional* model is the clean signal, since the first model also
    pays one-time imports and scoring caches.
    """
    with ProcessPool(procs=1, heartbeat_interval=0.5) as pool:
        base = pool.worker_rss(timeout=30.0)["proc-0"]
        trajectory = []
        for name in MODELS:
            pool.score(name, "v1", detector, window)
            trajectory.append(pool.worker_rss(timeout=30.0)["proc-0"])
        segments_kb = {key: size // 1024 for key, size in
                       pool.status()["shared_segments"].items()}
    total_kb = sum(segments_kb.values())
    per_model_kb = total_kb // len(MODELS)
    anon_kb = [t["RssAnon"] - base["RssAnon"] for t in trajectory]
    shmem_kb = [t["RssShmem"] - base["RssShmem"] for t in trajectory]
    marginal_anon_kb = [b - a for a, b in zip(anon_kb, anon_kb[1:])]

    # Exactly one published segment per model-version, and the worker
    # maps (essentially) every page of them shared.
    assert len(segments_kb) == len(MODELS), segments_kb
    assert per_model_kb > 4 * 1024  # big enough to measure against
    assert shmem_kb[-1] >= 0.9 * total_kb, (shmem_kb, total_kb)
    # ...while each additional resident model costs a small fraction of
    # one weight copy in private memory (codec scaffolding, JIT tapes).
    for delta in marginal_anon_kb:
        assert delta < 0.35 * per_model_kb, (marginal_anon_kb, per_model_kb)
    return {
        "segments_kb": segments_kb,
        "total_kb": total_kb,
        "per_model_kb": per_model_kb,
        "anon_growth_kb": anon_kb,
        "shmem_growth_kb": shmem_kb,
        "marginal_anon_per_model_kb": marginal_anon_kb,
        "first_model_overhead_kb": anon_kb[0],
        "counterfactual": "a private weight copy per resident model would "
                          f"grow RssAnon by ~{per_model_kb} kB each",
    }


def _check_owner_mappings(pool, rss_start: dict, rss_end: dict) -> dict:
    """HTTP-phase re-check: every owner maps its resident segments shared."""
    status = pool.status()
    segments_kb = {key: size // 1024 for key, size in
                   status["shared_segments"].items()}
    shmem_kb = {}
    resident_kb = {}
    for slot, worker in status["workers"].items():
        resident_kb[slot] = sum(
            segments_kb[key] for key in worker["resident_models"]
            if key in segments_kb
        )
        shmem_kb[slot] = max(
            0, rss_end[slot]["RssShmem"] - rss_start[slot]["RssShmem"]
        )
        if resident_kb[slot]:
            assert shmem_kb[slot] >= 0.9 * resident_kb[slot], (
                slot, shmem_kb, resident_kb,
            )
    return {"resident_kb": resident_kb, "shmem_growth_kb": shmem_kb}


def run_multiproc_bench() -> tuple[str, dict]:
    cores = os.cpu_count() or 1
    detector, windows = _fit_detector()
    expected = {
        i: float(detector.score_last(window[None])[0])
        for i, window in enumerate(windows)
    }
    bodies = _bodies(windows)

    shared = _single_copy_probe(detector, windows[0])

    rows: dict[str, dict] = {}
    owners_check: dict = {}
    routing: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="bench-multiproc-") as root:
        registry = ModelRegistry(root)
        for name in MODELS:
            registry.publish(name, detector)

        # Thread-tier reference row (--procs 0).
        with InferenceServer(registry, port=0, workers=2) as server:
            _warmup(server.url, bodies)
            rows["threads"] = _drive(server.url, bodies, expected,
                                     2 * CLIENTS_PER_PROC)

        for procs in PROC_COUNTS:
            with InferenceServer(registry, port=0, procs=procs) as server:
                pool = server.pool
                rss_start = pool.worker_rss(timeout=30.0)
                _warmup(server.url, bodies)
                rows[str(procs)] = _drive(server.url, bodies, expected,
                                          procs * CLIENTS_PER_PROC)
                rss_end = pool.worker_rss(timeout=30.0)
                routing[str(procs)] = dict(pool.status()["routing"])
                if procs == max(PROC_COUNTS):
                    owners_check = _check_owner_mappings(
                        pool, rss_start, rss_end
                    )

    header = (f"{'tier':>10} {'clients':>8} {'throughput':>12} {'p50 ms':>8} "
              f"{'p99 ms':>8} {'models/worker':>14}")
    lines = [
        f"Multi-process serving ({REQUESTS} requests/run, median of "
        f"{DRIVES} runs, {CLIENTS_PER_PROC} clients/worker, "
        f"{len(MODELS)} models, cpu_count={cores})",
        header,
        "-" * len(header),
    ]
    spread = {"threads": "-"}
    for procs in PROC_COUNTS:
        owners: dict[str, int] = {}
        for owner in routing[str(procs)].values():
            owners[owner] = owners.get(owner, 0) + 1
        spread[str(procs)] = "/".join(
            str(owners.get(f"proc-{i}", 0)) for i in range(procs)
        )
    for label, row in rows.items():
        tier = "threads(2)" if label == "threads" else f"procs={label}"
        lines.append(
            f"{tier:>10} {row['clients']:>8d} {row['rps']:>8.0f} r/s "
            f"{row['p50']:>8.2f} {row['p99']:>8.2f} {spread[label]:>14}"
        )
    lines.append(
        f"shared weights: {shared['total_kb']} kB published once; marginal "
        f"private RssAnon per extra model "
        f"{shared['marginal_anon_per_model_kb']} kB "
        f"(one copy would be ~{shared['per_model_kb']} kB each)"
    )

    monotonic = all(
        rows[str(hi)]["rps"] >= rows[str(lo)]["rps"]
        for lo, hi in zip(PROC_COUNTS, PROC_COUNTS[1:])
    )
    payload = {
        "cpu_count": cores,
        "regime": "parallel" if cores >= max(PROC_COUNTS) else "cpu_limited",
        "regime_note": (
            "cores >= 4: worker processes score concurrently; throughput "
            "must rise strictly with procs"
            if cores >= max(PROC_COUNTS) else
            f"{cores} core(s): procs beyond the core count time-share the "
            "CPU, so the bar is strict increase up to min(procs, cores) "
            "and no-collapse past it"
        ),
        "requests": REQUESTS,
        "drives_per_row": DRIVES,
        "clients_per_proc": CLIENTS_PER_PROC,
        "models": list(MODELS),
        "results": rows,
        "throughput_rps": {label: row["rps"] for label, row in rows.items()},
        "p99_ms": {label: row["p99"] for label, row in rows.items()},
        "routing": routing,
        "monotonic_increasing": monotonic,
        "bitwise_identical_to_inprocess": True,  # _drive raises otherwise
        "shared_memory": shared,
        "owner_mappings": owners_check,
        "single_copy_verified": True,  # the probe raises otherwise
    }
    return "\n".join(lines), payload


def _assert_acceptance(payload: dict) -> None:
    """The ISSUE's bar, honestly conditioned on available cores.

    Wherever ``min(procs, cores)`` grows there is real CPU headroom and
    throughput must strictly rise; once procs exceed cores the extra
    processes time-share one CPU and the bar is "ring locality keeps it
    from collapsing" (within 25%) — the JSON carries ``cpu_count`` and
    ``regime`` so committed numbers say which bar applied.
    """
    cores = payload["cpu_count"]
    rps = payload["throughput_rps"]
    for lo, hi in zip(PROC_COUNTS, PROC_COUNTS[1:]):
        if min(hi, cores) > min(lo, cores):
            assert rps[str(hi)] > rps[str(lo)], rps
        else:
            assert rps[str(hi)] >= 0.75 * rps[str(lo)], rps
    assert payload["bitwise_identical_to_inprocess"]
    assert payload["single_copy_verified"]
    per_model = payload["shared_memory"]["per_model_kb"]
    for delta in payload["shared_memory"]["marginal_anon_per_model_kb"]:
        assert delta < 0.35 * per_model, payload["shared_memory"]


def test_multiproc_serving(benchmark):
    table, payload = benchmark.pedantic(run_multiproc_bench, rounds=1,
                                        iterations=1)
    save_result("multiproc_serving", table)
    save_json("multiproc", payload)
    _assert_acceptance(payload)


def main() -> None:
    table, payload = run_multiproc_bench()
    save_result("multiproc_serving", table)
    save_json("multiproc", payload)
    _assert_acceptance(payload)


if __name__ == "__main__":
    main()
