"""Figure 7 — sensitivity to layers, hidden dimensions and CoV window.

The paper sweeps Transformer depth L in [1..5], hidden dimension D in
[32..512] and the statistic window W in [1..20] on MSL and SMD.  The bench
sweeps reduced grids on the same two datasets.

Expected shape: performance peaks at a moderate depth and dimension and
falls off on both sides; W = 1 (masking by raw value) underperforms
windowed statistics.
"""

from __future__ import annotations

from repro import TFMAE, evaluate_detector

from _common import bench_dataset, bench_tfmae_config, save_result

LAYER_GRID = [1, 2, 3]
DIM_GRID = [16, 32, 64]
WINDOW_GRID = [1, 5, 10, 20]
DATASETS = ["MSL", "SMD"]


def run_fig7() -> str:
    lines = ["Figure 7 (architecture/window sweeps, F1%)"]
    for dataset_name in DATASETS:
        dataset = bench_dataset(dataset_name)

        row = [f"{dataset_name} layers L:"]
        for layers in LAYER_GRID:
            detector = TFMAE(bench_tfmae_config(dataset_name, num_layers=layers))
            result = evaluate_detector(detector, dataset)
            row.append(f"L={layers}:{result.metrics.f1 * 100:.1f}")
        lines.append("  ".join(row))

        row = [f"{dataset_name} dims D:"]
        for dim in DIM_GRID:
            detector = TFMAE(bench_tfmae_config(dataset_name, d_model=dim))
            result = evaluate_detector(detector, dataset)
            row.append(f"D={dim}:{result.metrics.f1 * 100:.1f}")
        lines.append("  ".join(row))

        row = [f"{dataset_name} window W:"]
        for window in WINDOW_GRID:
            detector = TFMAE(bench_tfmae_config(dataset_name, cov_window=window))
            result = evaluate_detector(detector, dataset)
            row.append(f"W={window}:{result.metrics.f1 * 100:.1f}")
        lines.append("  ".join(row))
    return "\n".join(lines)


def test_fig7_hyperparameter_sensitivity(benchmark):
    table = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    save_result("fig7_hyperparams", table)
