"""Shared configuration for the benchmark harness.

Every bench regenerates one table or figure of the paper at a reduced,
CPU-friendly scale.  Two environment variables control cost:

``REPRO_BENCH_SCALE``
    Dataset length multiplier relative to the paper's Table II sizes
    (default 0.01 — about 1% of the full lengths).
``REPRO_BENCH_EPOCHS``
    Training epochs for the neural methods (default 6; the paper uses 1
    epoch at ~100x the data, so several epochs at 1% keep the number of
    gradient updates in a comparable regime).

Threshold ratios: the paper's per-dataset ``r`` values (0.3-0.9%) are
tuned for the full-length datasets.  At 1% scale the score distributions
are noisier, so each bench dataset uses a scale-appropriate ``r`` of
roughly half its anomaly rate — applied identically to *every* method, so
the comparison stays fair (the quantity Table III ranks).

Each bench prints its table and writes a copy under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core import TFMAEConfig, preset_for
from repro.datasets import PROFILE_SPECS, get_dataset

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))
EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "8"))
SEED = 0

RESULTS_DIR = Path(__file__).parent / "results"

#: The five real-world datasets of Tables III-V.
TABLE_DATASETS = ["SWaT", "PSM", "SMD", "MSL", "SMAP"]

#: Bench-scale threshold ratios r%.  The paper fixes one r per dataset for
#: all methods, chosen per dataset on validation behaviour (Section
#: V-A.4); these are the bench-scale equivalents, selected the same way
#: on the surrogate datasets.
BENCH_ANOMALY_RATIO = {
    "SWaT": 15.0,
    "PSM": 20.0,
    "SMD": 2.0,
    "MSL": 15.0,
    "SMAP": 6.0,
    "NIPS-TS-Global": 2.5,
    "NIPS-TS-Seasonal": 5.0,
}


def bench_scale(dataset: str) -> float:
    """Per-dataset scale: at least SCALE, raised so short datasets keep
    2000 train / 600 validation / 2000 test observations — below that,
    threshold percentiles estimated on the validation split are noise and
    every method's Table III row degenerates."""
    spec = PROFILE_SPECS.get(dataset)
    if spec is None:
        return SCALE
    needed = max(
        2000.0 / spec.train_len,
        600.0 / spec.val_len,
        2000.0 / spec.test_len,
    )
    return max(SCALE, needed)


def bench_dataset(name: str):
    """The bench realisation of a dataset (seeded, per-dataset scale)."""
    return get_dataset(name, seed=SEED, scale=bench_scale(name))


def bench_tfmae_config(dataset: str, **overrides) -> TFMAEConfig:
    """The paper's per-dataset TFMAE preset shrunk to bench scale.

    Architecture is reduced (d_model 128->32, layers 3->2) because the
    bench datasets are ~1% of the real lengths; the masking ratios and
    threshold ratios stay exactly as published.
    """
    base = TFMAEConfig(
        window_size=100,
        d_model=32,
        num_layers=2,
        num_heads=4,
        batch_size=16,
        epochs=EPOCHS,
        learning_rate=1e-3,
        seed=SEED,
    )
    if dataset in BENCH_ANOMALY_RATIO:
        overrides.setdefault("anomaly_ratio", BENCH_ANOMALY_RATIO[dataset])
    return preset_for(dataset, base=base, **overrides)


def baseline_kwargs() -> dict:
    """Constructor kwargs shared by all deep baselines at bench scale."""
    return dict(window_size=100, epochs=EPOCHS, batch_size=16, seed=SEED)


def save_result(name: str, text: str) -> None:
    """Print a bench table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def save_json(name: str, payload: dict) -> None:
    """Persist a machine-readable summary as ``BENCH_<name>.json``.

    Every perf bench emits one of these next to its text table so CI and
    tooling can track numbers without parsing tables.  The payload is
    stamped with the bench name and the scale/epochs knobs it ran under.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    record = {"bench": name, "scale": SCALE, "epochs": EPOCHS, **payload}
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {path}")
