"""Table V — masking-strategy ablation.

Runs the six masking variants of the paper's Section V-D:

* ``w/o MT`` — no temporal masking;
* ``w/ SMT`` — standard deviation instead of coefficient of variation;
* ``w/ RMT`` — random temporal masking;
* ``w/o MF`` — no frequency masking;
* ``w/ HMF`` — mask high frequencies instead of low amplitudes;
* ``w/ RMF`` — random frequency masking.

Expected shape: the paper's CoV + amplitude combination leads on average;
random masking underperforms anomaly-aware masking ("the key factor is
not Masking but Masking Anomalies").
"""

from __future__ import annotations

import os

import numpy as np

from repro import TFMAE, evaluate_detector

from _common import TABLE_DATASETS, bench_dataset, bench_tfmae_config, save_result

VARIANTS: dict[str, dict] = {
    "w/o MT": {"temporal_mask_strategy": "none"},
    "w/ SMT": {"temporal_mask_strategy": "std"},
    "w/ RMT": {"temporal_mask_strategy": "random"},
    "w/o MF": {"frequency_mask_strategy": "none"},
    "w/ HMF": {"frequency_mask_strategy": "high"},
    "w/ RMF": {"frequency_mask_strategy": "random"},
    "TFMAE": {},
}

_DATASET_FILTER = os.environ.get("REPRO_BENCH_DATASETS")


def _datasets() -> list[str]:
    if _DATASET_FILTER:
        return [d for d in TABLE_DATASETS if d in set(_DATASET_FILTER.split(","))]
    return TABLE_DATASETS


def run_table5() -> str:
    datasets = _datasets()
    lines = [
        "Table V (masking ablations)",
        f"{'variant':<10}" + "".join(f" | {d:^20}" for d in datasets) + f" | {'Average':^20}",
    ]
    lines.append(f"{'':<10}" + (" | " + f"{'P':>6}{'R':>7}{'F1':>7}") * (len(datasets) + 1))
    lines.append("-" * len(lines[-1]))
    for variant, overrides in VARIANTS.items():
        cells, triples = [], []
        for dataset_name in datasets:
            dataset = bench_dataset(dataset_name)
            detector = TFMAE(bench_tfmae_config(dataset_name, **overrides))
            result = evaluate_detector(detector, dataset)
            p, r, f1 = result.metrics.as_percent()
            triples.append((p, r, f1))
            cells.append(f"{p:>6.2f}{r:>7.2f}{f1:>7.2f}")
        avg = np.mean(triples, axis=0)
        cells.append(f"{avg[0]:>6.2f}{avg[1]:>7.2f}{avg[2]:>7.2f}")
        lines.append(f"{variant:<10} | " + " | ".join(cells))
    return "\n".join(lines)


def test_table5_masking_ablation(benchmark):
    table = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    save_result("table5_masking", table)
