"""Table IV — model ablation study.

Runs the seven TFMAE variants of the paper's Section V-C on the bench
datasets:

* ``w/o L_adv``  — plain contrastive objective, no adversarial term;
* ``w/ L_radv``  — adversarial roles of P and F swapped;
* ``w/o Fre``    — frequency view removed (reconstruction fallback);
* ``w/o FD``     — frequency decoder removed;
* ``w/o Tem``    — temporal view removed (reconstruction fallback);
* ``w/o TE``     — temporal encoder removed;
* ``w/o TD``     — temporal decoder removed.

Expected shape: the full model leads on average; removing a whole view or
the temporal decoder hurts most, matching the paper's Table IV.
"""

from __future__ import annotations

import os

import numpy as np

from repro import TFMAE, evaluate_detector

from _common import TABLE_DATASETS, bench_dataset, bench_tfmae_config, save_result

VARIANTS: dict[str, dict] = {
    "w/o L_adv": {"adversarial": False},
    "w/ L_radv": {"reversed_adversarial": True},
    "w/o Fre": {"use_frequency_branch": False},
    "w/o FD": {"use_frequency_decoder": False},
    "w/o Tem": {"use_temporal_branch": False},
    "w/o TE": {"use_temporal_encoder": False},
    "w/o TD": {"use_temporal_decoder": False},
    "TFMAE": {},
}

_DATASET_FILTER = os.environ.get("REPRO_BENCH_DATASETS")


def _datasets() -> list[str]:
    if _DATASET_FILTER:
        return [d for d in TABLE_DATASETS if d in set(_DATASET_FILTER.split(","))]
    return TABLE_DATASETS


def run_table4() -> str:
    datasets = _datasets()
    lines = [
        "Table IV (model ablations)",
        f"{'variant':<12}" + "".join(f" | {d:^20}" for d in datasets) + f" | {'Average':^20}",
    ]
    lines.append(f"{'':<12}" + (" | " + f"{'P':>6}{'R':>7}{'F1':>7}") * (len(datasets) + 1))
    lines.append("-" * len(lines[-1]))
    for variant, overrides in VARIANTS.items():
        cells, triples = [], []
        for dataset_name in datasets:
            dataset = bench_dataset(dataset_name)
            detector = TFMAE(bench_tfmae_config(dataset_name, **overrides))
            result = evaluate_detector(detector, dataset)
            p, r, f1 = result.metrics.as_percent()
            triples.append((p, r, f1))
            cells.append(f"{p:>6.2f}{r:>7.2f}{f1:>7.2f}")
        avg = np.mean(triples, axis=0)
        cells.append(f"{avg[0]:>6.2f}{avg[1]:>7.2f}{avg[2]:>7.2f}")
        lines.append(f"{variant:<12} | " + " | ".join(cells))
    return "\n".join(lines)


def test_table4_model_ablation(benchmark):
    table = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    save_result("table4_ablation", table)
