"""Streaming robustness under corrupted telemetry.

Not a paper table: this bench measures the fault-tolerance subsystem
(``repro.robustness``).  Each detector is trained and calibrated on clean
SMD-profile data, then scores the test split as a live stream corrupted
with each fault of the stream-fault taxonomy (NaN burst, stuck-at sensor,
dropout gap, spike corruption, scale drift).  Every (fault, method) cell
is run twice:

* ``off`` — no :class:`~repro.robustness.FaultPolicy`: the stream fails
  loudly on malformed input (recorded as ``FAIL(...)``) or scores the
  corruption as-is;
* ``on``  — impute + clamp + IsolationForest fallback: the stream must
  finish with a measurable point-adjusted F1 for every fault type.

Expected shape: the ``on`` rows degrade gracefully from the clean
reference (no failures, F1 within a handful of points for most faults),
while the ``off`` rows record the baseline failure modes.
"""

from __future__ import annotations

import os

import numpy as np

from repro import TFMAE, FaultPolicy, StreamingDetector, evaluate_detection
from repro.baselines import LOF, IsolationForest
from repro.datasets import get_dataset, inject_stream_fault
from repro.datasets.injection import STREAM_FAULTS

from _common import (
    BENCH_ANOMALY_RATIO,
    bench_scale,
    bench_tfmae_config,
    save_json,
    save_result,
)

DATASET = "SMD"
CONTEXT = 100
#: Streamed observations per (method, fault, policy) cell; streaming costs
#: one window score per observation, so this bounds bench wall-clock.
STREAM_LEN = int(os.environ.get("REPRO_BENCH_STREAM", "600"))
#: Offset into the test split: the SMD-profile realisation has no labelled
#: anomalies before ~1000, so stream a region whose scored part (past the
#: CONTEXT-length warmup) contains anomaly segments even at short lengths.
STREAM_START = int(os.environ.get("REPRO_BENCH_STREAM_START", "2700"))
FAULTS = list(STREAM_FAULTS)
SEED = 0


def _detectors() -> dict:
    ratio = BENCH_ANOMALY_RATIO[DATASET]
    return {
        "TFMAE": TFMAE(bench_tfmae_config(DATASET)),
        "LOF": LOF(anomaly_ratio=ratio, seed=SEED),
        "IForest": IsolationForest(anomaly_ratio=ratio, seed=SEED),
    }


def _stream_f1(detector, series: np.ndarray, labels: np.ndarray,
               policy: FaultPolicy | None) -> float | str:
    """Point-adjusted F1% of the streamed split, or ``"FAIL(...)"``."""
    stream = StreamingDetector(detector, context=CONTEXT, warmup=CONTEXT, policy=policy)
    try:
        events = stream.update_many(series)
    except ValueError as error:
        return f"FAIL({type(error).__name__})"
    predictions = np.array([event.is_anomaly for event in events], dtype=np.int64)
    scored = slice(CONTEXT, None)
    metrics = evaluate_detection(predictions[scored], labels[scored], adjust=True)
    return metrics.f1 * 100


def _cell(value: float | str) -> str:
    return f"{value:5.1f}" if isinstance(value, float) else value


def run_fault_bench() -> tuple[str, dict]:
    dataset = get_dataset(DATASET, seed=SEED, scale=bench_scale(DATASET)).normalised()
    test = dataset.test[STREAM_START:STREAM_START + STREAM_LEN]
    test_labels = dataset.test_labels[STREAM_START:STREAM_START + STREAM_LEN]

    detectors = _detectors()
    for detector in detectors.values():
        detector.fit(dataset.train, dataset.validation)

    fallback = IsolationForest(anomaly_ratio=BENCH_ANOMALY_RATIO[DATASET], seed=SEED)
    fallback.fit(dataset.train, dataset.validation)
    policy = FaultPolicy(impute_nonfinite=True, clamp_sigma=20.0, fallback=fallback)

    rng = np.random.default_rng(SEED)
    corrupted = {
        fault: inject_stream_fault(test, fault, rng, fault_fraction=0.05)[0]
        for fault in FAULTS
    }

    header = f"{'fault':<18} {'policy':<7}" + "".join(f" {name:>9}" for name in detectors)
    lines = [
        "Stream-fault robustness (point-adjusted F1% on the streamed test "
        f"split, {DATASET} profile, {STREAM_LEN} observations)",
        header,
        "-" * len(header),
    ]
    cells: dict[str, dict[str, dict[str, float | str]]] = {
        "clean": {"off": {}}
    }
    clean_row = [f"{'clean':<18} {'-':<7}"]
    for name, detector in detectors.items():
        value = _stream_f1(detector, test, test_labels, None)
        cells["clean"]["off"][name] = value
        clean_row.append(f" {_cell(value):>9}")
    lines.append("".join(clean_row))
    for fault in FAULTS:
        cells[fault] = {}
        for label, active_policy in (("off", None), ("on", policy)):
            cells[fault][label] = {}
            row = [f"{fault:<18} {label:<7}"]
            for name, detector in detectors.items():
                value = _stream_f1(detector, corrupted[fault], test_labels,
                                   active_policy)
                cells[fault][label][name] = value
                row.append(f" {_cell(value):>9}")
            lines.append("".join(row))
    payload = {
        "dataset": DATASET,
        "stream_len": STREAM_LEN,
        "methods": list(detectors),
        "faults": FAULTS,
        #: fault -> policy(off/on) -> method -> point-adjusted F1% (or
        #: "FAIL(...)" when the unprotected stream dies on the input).
        "f1_percent": cells,
    }
    return "\n".join(lines), payload


def test_robustness_faults(benchmark):
    table, payload = benchmark.pedantic(run_fault_bench, rounds=1, iterations=1)
    save_result("robustness_faults", table)
    save_json("robustness", payload)
    # With the policy on, every fault cell must finish with a number —
    # graceful degradation is the subsystem's contract.
    for fault in payload["faults"]:
        for method, value in payload["f1_percent"][fault]["on"].items():
            assert isinstance(value, float), (fault, method, value)


def main() -> None:
    table, payload = run_fault_bench()
    save_result("robustness_faults", table)
    save_json("robustness", payload)


if __name__ == "__main__":
    main()
