"""Extra ablation — FFT acceleration of the coefficient of variation.

DESIGN.md calls out the FFT acceleration (Eq. 4-5, Wiener-Khinchin) as a
design choice worth measuring in isolation.  This bench uses
pytest-benchmark properly (multiple rounds) to time the naive O(N*|S|*W)
loop against the O(N*|S|*log|S|) FFT form on a fixed workload, and
asserts their outputs agree.

Expected shape: the FFT form wins by an order of magnitude or more at
|S| = 10^4, consistent with the "w/o FFT" slowdown in Fig. 10.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.masking import coefficient_of_variation_fft, coefficient_of_variation_naive

LENGTH = 4000
FEATURES = 8
WINDOW = 10

_series = np.random.default_rng(0).normal(size=(LENGTH, FEATURES))


def test_fft_cov_speed(benchmark):
    result = benchmark(coefficient_of_variation_fft, _series, WINDOW)
    assert result.shape == (LENGTH,)


def test_naive_cov_speed(benchmark):
    # One round is enough — this is the slow side of the comparison.
    result = benchmark.pedantic(
        coefficient_of_variation_naive, args=(_series, WINDOW), rounds=1, iterations=1
    )
    assert result.shape == (LENGTH,)


def test_fft_and_naive_agree():
    fast = coefficient_of_variation_fft(_series, WINDOW)
    slow = coefficient_of_variation_naive(_series, WINDOW)
    np.testing.assert_allclose(fast, slow, atol=1e-8)
