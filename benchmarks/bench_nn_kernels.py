"""Kernel micro-benchmarks for the numpy substrate.

Not a paper figure: tracks the throughput of the hot kernels every
training run is made of — attention forward+backward, the Transformer
layer, the GRU unroll, im2col Conv1d, and the two masking transforms —
plus head-to-head fused-vs-reference pairs for the single-node kernels
of :mod:`repro.nn.fused`.  Run with real pytest-benchmark rounds so
regressions in the engine are visible:

    pytest benchmarks/bench_nn_kernels.py --benchmark-only

or produce the committed speedup table (``results/nn_kernels_fused.txt``)
directly:

    PYTHONPATH=src python benchmarks/bench_nn_kernels.py
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.masking import FrequencyMasker, TemporalMasker
from repro.nn import GRU, Conv1d, MultiHeadSelfAttention, Tensor, TransformerLayer, fused

_RNG = np.random.default_rng(0)
_BATCH, _TIME, _DIM = 8, 100, 32
_X = _RNG.normal(size=(_BATCH, _TIME, _DIM))
_WINDOWS = _RNG.normal(size=(16, 100, 25))

_attention = MultiHeadSelfAttention(_DIM, 4, _RNG)
_layer = TransformerLayer(_DIM, 4, _RNG)
_gru = GRU(_DIM, _DIM, _RNG)
_conv = Conv1d(_DIM, _DIM, 5, _RNG, padding="same")
_temporal = TemporalMasker(ratio=50.0, window=10)
_frequency = FrequencyMasker(ratio=30.0)


def _forward_backward(module, data: np.ndarray) -> float:
    x = Tensor(data, requires_grad=True)
    out = module(x)
    (out * out).mean().backward()
    return float(out.data.sum())


def test_attention_forward_backward(benchmark):
    benchmark(_forward_backward, _attention, _X)


def test_transformer_layer_forward_backward(benchmark):
    benchmark(_forward_backward, _layer, _X)


def test_gru_forward_backward(benchmark):
    benchmark(_forward_backward, _gru, _X[:, :50, :])  # unrolled loop is slow


def test_conv1d_forward_backward(benchmark):
    benchmark(_forward_backward, _conv, _X)


def test_temporal_masking(benchmark):
    result = benchmark(_temporal, _WINDOWS)
    assert result.num_masked == 50


def test_frequency_masking(benchmark):
    result = benchmark(_frequency, _WINDOWS)
    assert result.num_masked == 30


# ----------------------------------------------------------------------
# fused vs reference pairs (same math, one graph node vs composition)
# ----------------------------------------------------------------------
def _with_fused(enabled: bool, fn, *args):
    with fused.use_fused(enabled):
        return fn(*args)


def test_attention_fused(benchmark):
    benchmark(_with_fused, True, _forward_backward, _attention, _X)


def test_attention_reference(benchmark):
    benchmark(_with_fused, False, _forward_backward, _attention, _X)


def test_transformer_layer_fused(benchmark):
    benchmark(_with_fused, True, _forward_backward, _layer, _X)


def test_transformer_layer_reference(benchmark):
    benchmark(_with_fused, False, _forward_backward, _layer, _X)


def _elementwise_pair(op, ref_op, *tensors):
    def run(kernel):
        fresh = [Tensor(t.copy(), requires_grad=True) for t in tensors]
        out = kernel(*fresh)
        (out * out).mean().backward()
        return out

    return run


_LN_X = _RNG.normal(size=(_BATCH, _TIME, _DIM))
_LN_W = _RNG.normal(size=(_DIM,))
_LN_B = _RNG.normal(size=(_DIM,))


def test_layer_norm_fused(benchmark):
    run = _elementwise_pair(fused.layer_norm, None, _LN_X, _LN_W, _LN_B)
    benchmark(run, fused.layer_norm)


def test_layer_norm_reference(benchmark):
    run = _elementwise_pair(None, fused.reference_layer_norm, _LN_X, _LN_W, _LN_B)
    benchmark(run, fused.reference_layer_norm)


def test_softmax_fused(benchmark):
    run = _elementwise_pair(fused.softmax, None, _LN_X)
    benchmark(run, fused.softmax)


def test_softmax_reference(benchmark):
    run = _elementwise_pair(None, fused.reference_softmax, _LN_X)
    benchmark(run, fused.reference_softmax)


def test_gelu_fused(benchmark):
    run = _elementwise_pair(fused.gelu, None, _LN_X)
    benchmark(run, fused.gelu)


def test_gelu_reference(benchmark):
    run = _elementwise_pair(None, fused.reference_gelu, _LN_X)
    benchmark(run, fused.reference_gelu)


# ----------------------------------------------------------------------
# committed speedup table (results/nn_kernels_fused.txt)
# ----------------------------------------------------------------------
def _time(fn, repeats: int = 30, warmup: int = 3) -> float:
    """Best-of-N wall-clock seconds for one call of ``fn``."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _pair_row(name: str, build, dtype) -> tuple[str, float]:
    """Time the fused and reference variants of one kernel invocation."""

    def run(enabled: bool):
        with fused.use_fused(enabled):
            build()

    fused_s = _time(lambda: run(True))
    ref_s = _time(lambda: run(False))
    speedup = ref_s / fused_s
    row = (
        f"{name:<28} {np.dtype(dtype).name:<8} {ref_s * 1e3:>10.3f} "
        f"{fused_s * 1e3:>10.3f} {speedup:>8.2f}x"
    )
    return row, speedup


def run_hook_overhead_table() -> tuple[str, dict]:
    """Per-op dispatch cost with no hook vs a no-op hook installed.

    The op-hook fast path keeps the no-hook case to a single thread-local
    attribute load per op (``_HOOK_STATE.hooks`` with a class-level
    ``None`` default).  Before that change (commit 2f046a8) the same
    harness measured 3257 ns/op with no hook installed; the committed
    table tracks the current cost so regressions on the dispatch hot
    path are visible.
    """
    from repro.nn import no_grad
    from repro.nn.tensor import op_hook

    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(8, 32)))
    y = Tensor(rng.normal(size=(8, 32)))
    ops = 2000

    def chain():
        for _ in range(ops // 2):
            x * y
            x + y

    class _Noop:
        def after_forward(self, out, parents):
            pass

    def hooked():
        with op_hook(_Noop()):
            chain()

    with no_grad():
        no_hook_ns = _time(chain) / ops * 1e9
        noop_hook_ns = _time(hooked) / ops * 1e9
    rows = [
        "op-hook dispatch overhead: per-op cost of a no_grad mul/add chain",
        "on (8, 32) tensors (best of 30; pre-fast-path baseline: 3257 ns/op)",
        f"{'mode':<24} {'ns_per_op':>10}",
        f"{'no hook installed':<24} {no_hook_ns:>10.0f}",
        f"{'no-op hook installed':<24} {noop_hook_ns:>10.0f}",
    ]
    payload = {
        "no_hook_ns_per_op": round(no_hook_ns, 1),
        "noop_hook_ns_per_op": round(noop_hook_ns, 1),
        "pre_fast_path_ns_per_op": 3257.0,
    }
    return "\n".join(rows), payload


def run_fused_table() -> str:
    """Fused vs reference forward+backward timings, float64 and float32."""
    rows = [
        "nn kernel fusion: forward+backward wall-clock (best of 30)",
        "shapes: attention/layer (8, 100, 32) 4 heads; elementwise (8, 100, 32)",
        f"{'kernel':<28} {'dtype':<8} {'ref_ms':>10} {'fused_ms':>10} {'speedup':>9}",
    ]
    speedups: dict[str, float] = {}
    for dtype in (np.float64, np.float32):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(_BATCH, _TIME, _DIM)).astype(dtype)
        w = rng.normal(size=(_DIM,)).astype(dtype)
        b = rng.normal(size=(_DIM,)).astype(dtype)
        attention = MultiHeadSelfAttention(_DIM, 4, np.random.default_rng(0))
        attention.to_dtype(dtype)
        layer = TransformerLayer(_DIM, 4, np.random.default_rng(0))
        layer.to_dtype(dtype)

        def fwd_bwd(module):
            inp = Tensor(x, requires_grad=True, dtype=dtype)
            out = module(inp)
            (out * out).mean().backward()

        def elementwise(kernel_pair):
            fused_fn, ref_fn = kernel_pair
            kernel = fused_fn if fused.fused_enabled() else ref_fn
            inp = Tensor(x, requires_grad=True, dtype=dtype)
            out = kernel(inp)
            (out * out).mean().backward()

        def layer_norm_case():
            kernel = fused.layer_norm if fused.fused_enabled() else fused.reference_layer_norm
            inp = Tensor(x, requires_grad=True, dtype=dtype)
            out = kernel(inp, Tensor(w, dtype=dtype), Tensor(b, dtype=dtype))
            (out * out).mean().backward()

        cases = [
            ("attention (SDPA)", lambda: fwd_bwd(attention)),
            ("transformer layer", lambda: fwd_bwd(layer)),
            ("layer_norm", layer_norm_case),
            ("softmax", lambda: elementwise((fused.softmax, fused.reference_softmax))),
            ("gelu", lambda: elementwise((fused.gelu, fused.reference_gelu))),
            (
                "log_softmax",
                lambda: elementwise((fused.log_softmax, fused.reference_log_softmax)),
            ),
        ]
        for name, build in cases:
            row, speedup = _pair_row(name, build, dtype)
            rows.append(row)
            speedups[f"{name}/{np.dtype(dtype).name}"] = speedup
    rows.append("")
    rows.append(
        "acceptance: fused attention float32 speedup = "
        f"{speedups['attention (SDPA)/float32']:.2f}x (target >= 1.5x)"
    )
    return "\n".join(rows)


def main() -> None:
    from _common import save_json

    table = run_fused_table()
    hook_table, hook_payload = run_hook_overhead_table()
    table = table + "\n\n" + hook_table
    results = Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "nn_kernels_fused.txt").write_text(table + "\n")
    print(table)
    save_json("nn_kernels", {"hook_overhead": hook_payload})


if __name__ == "__main__":
    main()
