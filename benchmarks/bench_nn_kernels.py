"""Kernel micro-benchmarks for the numpy substrate.

Not a paper figure: tracks the throughput of the hot kernels every
training run is made of — attention forward+backward, the Transformer
layer, the GRU unroll, im2col Conv1d, and the two masking transforms.
Run with real pytest-benchmark rounds so regressions in the engine are
visible:

    pytest benchmarks/bench_nn_kernels.py --benchmark-only
"""

from __future__ import annotations

import numpy as np

from repro.masking import FrequencyMasker, TemporalMasker
from repro.nn import GRU, Conv1d, MultiHeadSelfAttention, Tensor, TransformerLayer

_RNG = np.random.default_rng(0)
_BATCH, _TIME, _DIM = 8, 100, 32
_X = _RNG.normal(size=(_BATCH, _TIME, _DIM))
_WINDOWS = _RNG.normal(size=(16, 100, 25))

_attention = MultiHeadSelfAttention(_DIM, 4, _RNG)
_layer = TransformerLayer(_DIM, 4, _RNG)
_gru = GRU(_DIM, _DIM, _RNG)
_conv = Conv1d(_DIM, _DIM, 5, _RNG, padding="same")
_temporal = TemporalMasker(ratio=50.0, window=10)
_frequency = FrequencyMasker(ratio=30.0)


def _forward_backward(module, data: np.ndarray) -> float:
    x = Tensor(data, requires_grad=True)
    out = module(x)
    (out * out).mean().backward()
    return float(out.data.sum())


def test_attention_forward_backward(benchmark):
    benchmark(_forward_backward, _attention, _X)


def test_transformer_layer_forward_backward(benchmark):
    benchmark(_forward_backward, _layer, _X)


def test_gru_forward_backward(benchmark):
    benchmark(_forward_backward, _gru, _X[:, :50, :])  # unrolled loop is slow


def test_conv1d_forward_backward(benchmark):
    benchmark(_forward_backward, _conv, _X)


def test_temporal_masking(benchmark):
    result = benchmark(_temporal, _WINDOWS)
    assert result.num_masked == 50


def test_frequency_masking(benchmark):
    result = benchmark(_frequency, _WINDOWS)
    assert result.num_masked == 30
