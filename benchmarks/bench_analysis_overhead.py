"""Overhead of the repro.analysis runtime sanitizers.

Not a paper figure: measures what the analysis layer costs so the
documented budgets stay honest —

* ``detect_anomaly`` wrapping a full TFMAE training step (forward +
  backward + Adam step) must stay **under 3x** the plain step
  (``docs/analysis.md`` quotes the committed numbers);
* ``preflight_model`` on the full paper configuration must stay **under
  100 ms**, the budget for running it at every ``Trainer.fit`` startup.

Run with pytest-benchmark rounds:

    pytest benchmarks/bench_analysis_overhead.py --benchmark-only

or produce the committed artifacts (``results/analysis_overhead.txt``
plus the machine-readable ``results/BENCH_analysis.json``):

    PYTHONPATH=src python benchmarks/bench_analysis_overhead.py
"""

from __future__ import annotations

import time

import numpy as np

from _common import save_json, save_result

from repro.analysis import detect_anomaly, preflight_model
from repro.core.config import TFMAEConfig
from repro.core.model import TFMAEModel
from repro.nn.optim import Adam

_RNG = np.random.default_rng(0)

#: Mid-size training config (the `python -m repro run` default scale).
_CONFIG = TFMAEConfig(window_size=100, d_model=32, num_layers=2, num_heads=4,
                      batch_size=16)
_FEATURES = 5
_BATCH = _RNG.normal(size=(_CONFIG.batch_size, _CONFIG.window_size, _FEATURES))


def _make_trainer_pieces():
    model = TFMAEModel(n_features=_FEATURES, config=_CONFIG)
    optimizer = Adam(model.parameters(), lr=_CONFIG.learning_rate)
    return model, optimizer


def _step(model, optimizer) -> float:
    loss, _ = model.loss(_BATCH)
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
    return loss.item()


def _sanitized_step(model, optimizer) -> float:
    with detect_anomaly():
        return _step(model, optimizer)


def test_training_step_plain(benchmark):
    model, optimizer = _make_trainer_pieces()
    benchmark(_step, model, optimizer)


def test_training_step_with_detect_anomaly(benchmark):
    model, optimizer = _make_trainer_pieces()
    benchmark(_sanitized_step, model, optimizer)


def test_preflight_full_paper_config(benchmark):
    model = TFMAEModel(n_features=_FEATURES)  # paper defaults: D=128, L=3
    preflight_model(model)  # warm the BLAS/kernel paths once
    benchmark(preflight_model, model)


def _timeit(fn, *args, repeat: int = 20) -> float:
    fn(*args)  # warm-up
    start = time.perf_counter()
    for _ in range(repeat):
        fn(*args)
    return (time.perf_counter() - start) / repeat


def main() -> tuple[str, dict]:
    model, optimizer = _make_trainer_pieces()
    plain = _timeit(_step, model, optimizer)
    sanitized = _timeit(_sanitized_step, model, optimizer)
    paper_model = TFMAEModel(n_features=_FEATURES)
    preflight = _timeit(preflight_model, paper_model)

    lines = [
        "analysis-layer overhead "
        f"(window={_CONFIG.window_size}, D={_CONFIG.d_model}, "
        f"L={_CONFIG.num_layers}, batch={_CONFIG.batch_size}, "
        f"N={_FEATURES})",
        "",
        f"{'training step (plain)':<36} {plain * 1e3:8.2f} ms",
        f"{'training step (detect_anomaly)':<36} {sanitized * 1e3:8.2f} ms",
        f"{'detect_anomaly overhead':<36} {sanitized / plain:8.2f} x  (budget < 3x)",
        "",
        f"{'preflight_model (paper config)':<36} {preflight * 1e3:8.2f} ms  (budget < 100 ms)",
    ]
    payload = {
        "config": {"window_size": _CONFIG.window_size, "d_model": _CONFIG.d_model,
                   "num_layers": _CONFIG.num_layers, "batch_size": _CONFIG.batch_size,
                   "n_features": _FEATURES},
        "train_step_plain_ms": plain * 1e3,
        "train_step_detect_anomaly_ms": sanitized * 1e3,
        "detect_anomaly_overhead_x": sanitized / plain,
        "detect_anomaly_budget_x": 3.0,
        "preflight_paper_config_ms": preflight * 1e3,
        "preflight_budget_ms": 100.0,
    }
    return "\n".join(lines), payload


if __name__ == "__main__":
    table, payload = main()
    save_result("analysis_overhead", table)
    save_json("analysis", payload)
