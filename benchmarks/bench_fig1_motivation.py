"""Figure 1 (left) — the abnormal-bias motivation.

The paper opens by showing TimesNet on NIPS-TS-Global: trained on data
that *contains* anomalies, the reconstruction model learns to reconstruct
them ("abnormal bias"), which compresses the anomaly/normal score gap.
TFMAE masks likely anomalies before modelling, so contaminated training
data barely affects it.

The bench isolates exactly that mechanism: each model trains twice — once
on a clean training split and once on a split contaminated with the same
anomaly process as the test set — and reports the anomaly/normal score
ratio under both conditions.

Expected shape: contamination collapses TimesNet's ratio by a large
factor, while TFMAE's ratio degrades far less (the "abnormal
bias-resistant" claim).
"""

from __future__ import annotations

import numpy as np

from repro import TFMAE
from repro.baselines import TimesNet
from repro.datasets import get_dataset, inject_global, random_positions

from _common import EPOCHS, SCALE, SEED, bench_tfmae_config, save_result

NIPS_SCALE = max(SCALE, 0.05)
CONTAMINATION = 0.05  # same rate as the test anomalies
# Abnormal bias needs enough optimisation for the model to start fitting
# the contaminating anomalies; at bench scale that takes ~30 epochs
# (mirroring the paper's 1 epoch over ~20x the data).
FIG1_EPOCHS = max(EPOCHS, 30)


def _contaminate(train: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    positions = random_positions(train.shape[0], int(CONTAMINATION * train.shape[0]), rng)
    contaminated, _ = inject_global(train[:, 0], positions, rng)
    return contaminated[:, None]


def _score_ratio(detector, train, data) -> float:
    detector.fit(train, data.validation)
    scores = detector.score(data.test)
    labels = data.test_labels.astype(bool)
    return float(scores[labels].mean() / scores[~labels].mean())


def run_fig1() -> str:
    dataset = get_dataset("NIPS-TS-Global", seed=SEED, scale=NIPS_SCALE)
    data = dataset.normalised()
    rng = np.random.default_rng(SEED)
    dirty_train = _contaminate(data.train, rng)

    def timesnet():
        # Reconstruction models only exhibit abnormal bias once they have
        # optimised long enough to start fitting the contaminating points.
        return TimesNet(window_size=100, epochs=FIG1_EPOCHS, batch_size=16,
                        anomaly_ratio=2.5, seed=SEED)

    def tfmae():
        # TFMAE is deliberately trained briefly (the paper uses a single
        # epoch at full scale) — prolonged adversarial training degrades
        # the contrastive signal, so it runs at its normal operating point.
        return TFMAE(bench_tfmae_config("NIPS-TS-Global"))

    rows = []
    for name, make in (("TimesNet", timesnet), ("TFMAE", tfmae)):
        clean_ratio = _score_ratio(make(), data.train, data)
        dirty_ratio = _score_ratio(make(), dirty_train, data)
        retained = dirty_ratio / clean_ratio
        rows.append(f"{name:<9} {clean_ratio:>12.2f} {dirty_ratio:>12.2f} {retained:>10.2f}")

    return "\n".join([
        "Figure 1(left) (abnormal bias: anomaly/normal score ratio,",
        "               clean vs contaminated training, NIPS-TS-Global)",
        f"{'model':<9} {'clean train':>12} {'dirty train':>12} {'retained':>10}",
        *rows,
        "(retained = dirty/clean; reconstruction models lose separation when",
        " anomalies leak into training — TFMAE's masking shields it)",
    ])


def test_fig1_motivation(benchmark):
    table = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    save_result("fig1_motivation", table)
