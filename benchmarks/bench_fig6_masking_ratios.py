"""Figure 6 — sensitivity to the temporal/frequency masking ratios.

Sweeps ``r^(T)`` and ``r^(F)`` on two datasets and prints the F1 curve for
each.  The paper sweeps 5-95% (temporal) and 10-90% (frequency) on all
five datasets; the bench uses a coarser grid on SMD and MSL.

Expected shape: performance is fairly flat over a wide band of temporal
ratios (temporal redundancy makes masked observations easy to recover) and
degrades at very large frequency ratios (a single frequency carries more
information than a single observation).
"""

from __future__ import annotations

from repro import TFMAE, evaluate_detector

from _common import bench_dataset, bench_tfmae_config, save_result

TEMPORAL_GRID = [5.0, 25.0, 45.0, 65.0, 85.0]
FREQUENCY_GRID = [10.0, 30.0, 50.0, 70.0, 90.0]
DATASETS = ["SMD", "MSL"]


def run_fig6() -> str:
    lines = ["Figure 6 (masking-ratio sweeps, F1%)"]
    for dataset_name in DATASETS:
        dataset = bench_dataset(dataset_name)
        row = [f"{dataset_name} temporal r^(T):"]
        for ratio in TEMPORAL_GRID:
            detector = TFMAE(bench_tfmae_config(dataset_name, temporal_mask_ratio=ratio))
            result = evaluate_detector(detector, dataset)
            row.append(f"{ratio:.0f}%={result.metrics.f1 * 100:.1f}")
        lines.append("  ".join(row))

        row = [f"{dataset_name} frequency r^(F):"]
        for ratio in FREQUENCY_GRID:
            detector = TFMAE(bench_tfmae_config(dataset_name, frequency_mask_ratio=ratio))
            result = evaluate_detector(detector, dataset)
            row.append(f"{ratio:.0f}%={result.metrics.f1 * 100:.1f}")
        lines.append("  ".join(row))
    return "\n".join(lines)


def test_fig6_masking_ratio_sensitivity(benchmark):
    table = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    save_result("fig6_masking_ratios", table)
