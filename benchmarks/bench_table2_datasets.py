"""Table II — dataset statistics.

Regenerates the paper's dataset summary (source, dimension, split sizes,
anomaly ratio) from the synthetic surrogates, at bench scale.  Dimensions
and anomaly ratios must match the published values; lengths are the
published values times ``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

from repro.datasets import PROFILE_SPECS, available_datasets, get_dataset

from _common import SCALE, save_result


def build_table() -> str:
    rows = [f"Table II (scale={SCALE})",
            f"{'dataset':<18} {'dim':>4} {'train':>8} {'val':>8} {'test':>8} {'AR%':>6} {'paper AR%':>10}"]
    paper_ar = {
        "MSL": 10.5, "PSM": 27.8, "SMD": 4.2, "SWaT": 12.1, "SMAP": 12.8,
        "NIPS-TS-Global": 5.0, "NIPS-TS-Seasonal": 5.0,
    }
    for name in available_datasets():
        ds = get_dataset(name, scale=SCALE)
        s = ds.summary()
        rows.append(
            f"{name:<18} {s['dimension']:>4} {s['train']:>8} {s['validation']:>8} "
            f"{s['test']:>8} {s['anomaly_ratio_pct']:>6.1f} {paper_ar[name]:>10.1f}"
        )
    return "\n".join(rows)


def test_table2_dataset_statistics(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    save_result("table2_datasets", table)
    # Dimensions must match the paper exactly.
    for name, spec in PROFILE_SPECS.items():
        assert get_dataset(name, scale=SCALE).n_features == spec.dimension
