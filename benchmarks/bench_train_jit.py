"""Trace-compiled training: train-step tape JIT vs the interpreted loop.

Not a paper table: this bench tracks the ``repro.nn.jit_train`` backend
behind ``Trainer.fit`` and ``TFMAE.refit``.  The same model is fitted
twice on the Table III bench configuration (window 100, d_model 32,
2 layers, 4 heads, batch 16) — once with ``train_jit=False`` and once
with the default compiled train step — and three things are reported:

* **per-epoch wall-clock** for both paths and their ratio (the
  acceptance criterion: >= 1.5x on this config);
* **bitwise equivalence**, asserted in-bench: the per-epoch loss curve
  and the final ``state_dict`` must be *identical* arrays, not merely
  close — the compiled step replays the interpreted trajectory exactly;
* **tape-cache behaviour**: traces, replays, fallbacks and LRU
  evictions from the trainer's ``TrainStep`` counters.

A steady-state per-step timing (trace amortised away) is included as
well, since the fit-level ratio folds the one-off trace epoch and the
non-training epoch work (windowing, divergence guard) into the number.

Run directly for the committed artifacts::

    PYTHONPATH=src python benchmarks/bench_train_jit.py
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.config import TFMAEConfig
from repro.core.model import TFMAEModel
from repro.core.trainer import TFMAETrainer
from repro.nn.jit_train import TrainStep
from repro.nn.optim import Adam

from _common import EPOCHS, SEED, save_json, save_result

#: Batches per epoch; 6 non-overlapping window batches keep the
#: interpreted run under ~10 s while giving the compiled path enough
#: steady-state steps to dominate the one-off trace.
BATCHES = int(os.environ.get("REPRO_BENCH_TRAIN_BATCHES", "6"))
STEP_REPEATS = int(os.environ.get("REPRO_BENCH_TRAIN_REPEATS", "10"))


def _config(train_jit: bool) -> TFMAEConfig:
    return TFMAEConfig(
        window_size=100,
        d_model=32,
        num_layers=2,
        num_heads=4,
        batch_size=16,
        epochs=max(2, EPOCHS),
        learning_rate=1e-3,
        seed=SEED,
        train_jit=train_jit,
        preflight=False,
    )


def _series(config: TFMAEConfig) -> np.ndarray:
    rng = np.random.default_rng(SEED)
    length = BATCHES * config.batch_size * config.window_size
    t = np.arange(length)
    base = np.stack(
        [np.sin(2 * np.pi * t / p) for p in (23.0, 47.0, 91.0)], axis=1
    )
    return base + 0.1 * rng.normal(size=base.shape)


def _fit(train_jit: bool):
    config = _config(train_jit)
    model = TFMAEModel(n_features=3, config=config)
    trainer = TFMAETrainer(model, config)
    series = _series(config)
    start = time.perf_counter()
    log = trainer.fit(series)
    elapsed = time.perf_counter() - start
    return model, trainer, log, elapsed


def _steady_step_ms(train_jit: bool) -> float:
    """Best per-step wall-clock with the trace already amortised."""
    config = _config(train_jit)
    model = TFMAEModel(n_features=3, config=config)
    optimizer = Adam(model.parameters(), lr=config.learning_rate,
                     grad_clip=config.grad_clip)
    step = TrainStep(model, optimizer, enabled=train_jit,
                     cache_size=config.jit_cache_size)
    rng = np.random.default_rng(SEED + 1)
    batch = rng.normal(size=(config.batch_size, config.window_size, 3))

    def one_step() -> None:
        handle = step.begin(batch)
        handle.backward()
        handle.apply_update()

    for _ in range(3):
        one_step()
    best = float("inf")
    for _ in range(STEP_REPEATS):
        start = time.perf_counter()
        one_step()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def run_train_jit_bench() -> tuple[str, dict]:
    interp_model, _, interp_log, interp_s = _fit(train_jit=False)
    jit_model, jit_trainer, jit_log, jit_s = _fit(train_jit=True)

    # --- bitwise equivalence: loss curve and final weights ---
    interp_losses = np.asarray(interp_log.losses)
    jit_losses = np.asarray(jit_log.losses)
    if not np.array_equal(interp_losses, jit_losses):
        raise AssertionError(
            f"per-epoch losses diverged: {interp_losses} vs {jit_losses}"
        )
    interp_state = interp_model.state_dict()
    jit_state = jit_model.state_dict()
    mismatched = [
        key for key in interp_state
        if not np.array_equal(interp_state[key], jit_state[key])
    ]
    if mismatched:
        raise AssertionError(f"final state_dict diverged at: {mismatched}")

    epochs = _config(train_jit=False).epochs  # log.losses is per batch
    interp_epoch = interp_s / epochs
    jit_epoch = jit_s / epochs
    speedup = interp_epoch / jit_epoch

    interp_step = _steady_step_ms(train_jit=False)
    jit_step = _steady_step_ms(train_jit=True)

    counters = jit_trainer.train_step
    rows = [
        "trace-compiled training: Trainer.fit wall-clock, train JIT vs interpreted",
        f"(Table III bench config, {BATCHES} batches x {epochs} epochs; "
        "per-batch loss curve and final state_dict asserted bitwise-identical)",
        f"{'path':<14} {'fit_s':>8} {'epoch_s':>8} {'step_ms':>8}",
        f"{'interpreted':<14} {interp_s:>8.2f} {interp_epoch:>8.2f} {interp_step:>8.1f}",
        f"{'train-jit':<14} {jit_s:>8.2f} {jit_epoch:>8.2f} {jit_step:>8.1f}",
        "",
        f"per-epoch speedup: {speedup:.2f}x (target >= 1.5x)   "
        f"steady-state step: {interp_step / jit_step:.2f}x",
        f"tape cache: traces={counters.traces} replays={counters.replays} "
        f"fallbacks={counters.fallbacks} evictions={counters.evictions}",
    ]
    payload = {
        "config": {
            "window_size": 100, "d_model": 32, "num_layers": 2,
            "num_heads": 4, "batch_size": 16, "batches_per_epoch": BATCHES,
            "epochs": epochs,
        },
        "interpreted": {
            "fit_s": round(interp_s, 3),
            "epoch_s": round(interp_epoch, 3),
            "step_ms": round(interp_step, 2),
        },
        "train_jit": {
            "fit_s": round(jit_s, 3),
            "epoch_s": round(jit_epoch, 3),
            "step_ms": round(jit_step, 2),
        },
        "speedup_per_epoch": round(speedup, 3),
        "speedup_steady_step": round(interp_step / jit_step, 3),
        "bitwise_identical": {"loss_curve": True, "state_dict": True},
        "tape_cache": {
            "traces": counters.traces,
            "replays": counters.replays,
            "fallbacks": counters.fallbacks,
            "evictions": counters.evictions,
        },
    }
    return "\n".join(rows), payload


def test_train_jit(benchmark):
    config = _config(train_jit=True)
    model = TFMAEModel(n_features=3, config=config)
    optimizer = Adam(model.parameters(), lr=config.learning_rate,
                     grad_clip=config.grad_clip)
    step = TrainStep(model, optimizer, enabled=True)
    rng = np.random.default_rng(SEED + 1)
    batch = rng.normal(size=(config.batch_size, config.window_size, 3))

    def one_step() -> None:
        handle = step.begin(batch)
        handle.backward()
        handle.apply_update()

    one_step()  # trace outside the timer
    benchmark(one_step)
    table, payload = run_train_jit_bench()
    save_result("train_jit", table)
    save_json("train_jit", payload)
    assert payload["speedup_per_epoch"] >= 1.5, payload
    assert payload["bitwise_identical"] == {
        "loss_curve": True, "state_dict": True,
    }


def main() -> None:
    table, payload = run_train_jit_bench()
    save_result("train_jit", table)
    save_json("train_jit", payload)


if __name__ == "__main__":
    main()
