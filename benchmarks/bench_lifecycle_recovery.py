"""Lifecycle recovery: rollback latency and availability under injected faults.

Not a paper table: this bench measures the serving guardrails
(``repro.serve.lifecycle`` + ``repro.robustness.chaos``).  Two parts:

**Rollback latency.**  A good model is published and promoted, then a
deliberately-bad candidate (NaN weights — every score non-finite) is
pushed live.  The watchdog detects the regression on its probe windows
and demotes to the prior version atomically.  Reported per trial:
detection-to-rollback wall time (publish → demote) and the watchdog
check itself, with served scores verified bitwise against the
pre-publish baseline.

**Availability per fault.**  Each scenario in
:data:`repro.robustness.chaos.CHAOS_FAULTS` is injected into a fresh
live server via :class:`~repro.robustness.chaos.ChaosHarness`, and a
burst of requests is sent to the affected model and to an untouched
healthy model.  The graceful-degradation contract: the healthy model
answers non-5xx under *every* fault, and the affected model either keeps
serving (fallback, retries), sheds explicitly (429), or fails typed and
contained (worker exception holds only its own requests).

Environment: ``REPRO_BENCH_EPOCHS`` (default 8) for training;
``REPRO_BENCH_LIFECYCLE_TRIALS`` (default 3) rollback trials;
``REPRO_BENCH_LIFECYCLE_REQUESTS`` (default 12) requests per burst.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro import TFMAE, TFMAEConfig
from repro.datasets import get_dataset
from repro.robustness import CHAOS_FAULTS, ChaosHarness
from repro.serve import InferenceServer, LifecycleManager, ModelRegistry

from _common import EPOCHS, SEED, save_json, save_result

DATASET = "NIPS-TS-Global"
WINDOW = 100
TRIALS = int(os.environ.get("REPRO_BENCH_LIFECYCLE_TRIALS", "3"))
REQUESTS = int(os.environ.get("REPRO_BENCH_LIFECYCLE_REQUESTS", "12"))


def _fit_detector() -> tuple[TFMAE, np.ndarray]:
    dataset = get_dataset(DATASET, seed=SEED, scale=0.02).normalised()
    config = TFMAEConfig(window_size=WINDOW, d_model=32, num_layers=2, num_heads=4,
                         anomaly_ratio=2.5, epochs=EPOCHS, batch_size=16,
                         learning_rate=1e-3, seed=SEED)
    detector = TFMAE(config)
    detector.fit(dataset.train, dataset.validation)
    return detector, dataset.test


def _probe_windows(series: np.ndarray, count: int = 24) -> np.ndarray:
    starts = np.linspace(0, series.shape[0] - WINDOW, count).astype(int)
    return np.stack([series[s : s + WINDOW] for s in starts])


def _post(url: str, payload: dict) -> int:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url + "/score", data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status
    except urllib.error.HTTPError as error:
        error.read()
        return error.code


# ----------------------------------------------------------------------
# part 1: detection-to-rollback latency
# ----------------------------------------------------------------------
def run_rollback_trials(detector: TFMAE, test: np.ndarray) -> dict:
    windows = _probe_windows(test)
    rollback_s: list[float] = []
    watchdog_s: list[float] = []
    for _ in range(TRIALS):
        with tempfile.TemporaryDirectory() as tmp:
            registry = ModelRegistry(Path(tmp))
            manager = LifecycleManager(registry, "tfmae", detect_anomaly=True)
            manager.publish_guarded(detector, windows)
            live, _ = registry.load("tfmae")
            baseline = live.score_last(windows)

            candidate, _ = registry.load_fresh("tfmae")
            next(candidate.model.parameters()).data[:] = np.nan
            manager.publish_guarded(candidate, windows)

            started = time.perf_counter()
            report = manager.watchdog_check()
            watchdog_s.append(time.perf_counter() - started)
            assert report.rolled_back and report.restored == "v1", report
            rollback_s.append(manager.history[-1].latency)

            restored, version = registry.load("tfmae")
            assert version == "v1"
            np.testing.assert_array_equal(restored.score_last(windows), baseline)
    return {
        "trials": TRIALS,
        "publish_to_rollback_ms_mean": float(np.mean(rollback_s)) * 1e3,
        "publish_to_rollback_ms_max": float(np.max(rollback_s)) * 1e3,
        "watchdog_check_ms_mean": float(np.mean(watchdog_s)) * 1e3,
        "restored_bitwise": True,
    }


# ----------------------------------------------------------------------
# part 2: availability per fault
# ----------------------------------------------------------------------
def _burst(url: str, model: str, window: list) -> dict:
    statuses = [_post(url, {"model": model, "window": window}) for _ in range(REQUESTS)]
    return {
        "requests": len(statuses),
        "ok": sum(1 for s in statuses if s == 200),
        "shed": sum(1 for s in statuses if s == 429),
        "unavailable": sum(1 for s in statuses if s == 503),
        "failed": sum(1 for s in statuses if s >= 500 and s != 503),
        "availability": sum(1 for s in statuses if s < 500) / len(statuses),
    }


def run_fault_scenarios(detector: TFMAE, test: np.ndarray) -> dict:
    window = test[:WINDOW].tolist()
    results: dict[str, dict] = {}
    for fault in CHAOS_FAULTS:
        with tempfile.TemporaryDirectory() as tmp:
            registry = ModelRegistry(Path(tmp), load_retries=3, retry_backoff=0.01)
            registry.publish("primary", detector)
            registry.publish("primary", detector)  # v2: fallback headroom
            registry.publish("healthy", detector)
            server = InferenceServer(registry, port=0, max_batch_size=4,
                                     max_delay=0.005, max_queue=8, workers=2)
            with server, ChaosHarness(server) as chaos:
                injected_at = time.perf_counter()
                if fault in ("corrupt_artifact", "truncated_artifact"):
                    chaos.corrupt_artifact(
                        "primary", truncate=(fault == "truncated_artifact")
                    )
                elif fault == "slow_load":
                    chaos.evict("primary")
                    chaos.inject_slow_load(0.2, models={"primary"})
                elif fault == "transient_load_failure":
                    chaos.evict("primary")
                    chaos.inject_transient_load_failures(times=2, models={"primary"})
                elif fault == "worker_exception":
                    chaos.inject_worker_exception(times=2, models={"primary"})
                elif fault == "queue_saturation":
                    chaos.saturate_queue("primary:v2", np.asarray(test[:WINDOW]))

                affected = _burst(server.url, "primary", window)
                healthy = _burst(server.url, "healthy", window)

                if fault == "queue_saturation":
                    chaos.release_queue()
                else:
                    chaos.clear()
                recovered_at = None
                for _ in range(20):
                    if _post(server.url, {"model": "primary", "window": window}) == 200:
                        recovered_at = time.perf_counter()
                        break
                    time.sleep(0.05)
                results[fault] = {
                    "expect": CHAOS_FAULTS[fault]["expect"],
                    "affected": affected,
                    "healthy": healthy,
                    "recovery_s": (
                        recovered_at - injected_at if recovered_at is not None else None
                    ),
                }
    return results


def run_lifecycle_bench() -> tuple[str, dict]:
    detector, test = _fit_detector()
    detector.score_last(_probe_windows(test))  # warm caches outside the clock

    rollback = run_rollback_trials(detector, test)
    faults = run_fault_scenarios(detector, test)

    header = (f"{'fault':<24} {'affected avail':>14} {'healthy avail':>14} "
              f"{'shed':>5} {'recovery s':>11}")
    lines = [
        f"Lifecycle recovery ({DATASET} profile, {REQUESTS} requests/burst, "
        f"{TRIALS} rollback trials)",
        f"bad publish -> rollback: "
        f"{rollback['publish_to_rollback_ms_mean']:.1f}ms mean / "
        f"{rollback['publish_to_rollback_ms_max']:.1f}ms max "
        f"(watchdog check {rollback['watchdog_check_ms_mean']:.1f}ms, "
        f"restored scores bitwise)",
        header,
        "-" * len(header),
    ]
    for fault, row in faults.items():
        recovery = row["recovery_s"]
        lines.append(
            f"{fault:<24} {row['affected']['availability']:>13.0%} "
            f"{row['healthy']['availability']:>14.0%} "
            f"{row['affected']['shed']:>5d} "
            f"{recovery:>11.3f}" if recovery is not None else
            f"{fault:<24} {row['affected']['availability']:>13.0%} "
            f"{row['healthy']['availability']:>14.0%} "
            f"{row['affected']['shed']:>5d} {'-':>11}"
        )
    payload = {"rollback": rollback, "faults": faults}
    return "\n".join(lines), payload


def test_lifecycle_recovery(benchmark):
    table, payload = benchmark.pedantic(run_lifecycle_bench, rounds=1, iterations=1)
    save_result("lifecycle_recovery", table)
    save_json("lifecycle", payload)
    # The acceptance criteria: healthy models stay fully available under
    # every fault, and a bad publish is detected and rolled back with the
    # prior version's scores restored bitwise.
    for fault, row in payload["faults"].items():
        assert row["healthy"]["availability"] == 1.0, fault
    assert payload["rollback"]["restored_bitwise"] is True
    assert payload["rollback"]["publish_to_rollback_ms_max"] > 0


def main() -> None:
    table, payload = run_lifecycle_bench()
    save_result("lifecycle_recovery", table)
    save_json("lifecycle", payload)


if __name__ == "__main__":
    main()
