"""Figure 10 — accuracy vs. training speed vs. memory on SMD.

The paper compares TFMAE against TranAD, AnoTran, TimesNet, DCdetector and
GPT4TS, plus a "w/o FFT" TFMAE variant that computes the coefficient of
variation with the naive double loop.  The bench measures wall-clock
training time, peak heap and point-adjusted F1 for the same set.

Expected shape: TFMAE sits in the top-left (high F1, fast, small); the
"w/o FFT" variant is noticeably slower with identical accuracy; GPT4TS
and AnoTran carry larger footprints.
"""

from __future__ import annotations

import json

from repro import TFMAE, evaluate_detector
from repro.baselines import GPT4TS, AnomalyTransformer, DCdetector, TimesNet, TranAD
from repro.eval import profile_detector

from _common import (
    BENCH_ANOMALY_RATIO,
    EPOCHS,
    RESULTS_DIR,
    SEED,
    bench_dataset,
    bench_tfmae_config,
    save_json,
    save_result,
)


def _contenders() -> dict[str, object]:
    ratio = BENCH_ANOMALY_RATIO["SMD"]
    kwargs = dict(window_size=100, epochs=EPOCHS, batch_size=16,
                  anomaly_ratio=ratio, seed=SEED)
    return {
        "TFMAE": TFMAE(bench_tfmae_config("SMD")),
        "TFMAE w/o FFT": TFMAE(bench_tfmae_config("SMD", use_fft_acceleration=False)),
        "TranAD": TranAD(**kwargs),
        "AnoTran": AnomalyTransformer(**kwargs),
        "TimesNet": TimesNet(**kwargs),
        "DCdetector": DCdetector(**kwargs),
        "GPT4TS": GPT4TS(**kwargs),
    }


def run_fig10() -> tuple[str, dict]:
    dataset = bench_dataset("SMD")
    lines = [
        "Figure 10 (F1 vs training speed vs peak memory, SMD)",
        f"{'method':<14} {'F1%':>7} {'fit_s':>8} {'obs/s':>10} {'peak_MB':>9}",
    ]
    rows: dict[str, dict] = {}
    for name, detector in _contenders().items():
        profile = profile_detector(detector, dataset)
        result = evaluate_detector(detector, dataset)  # refits; cheap at bench scale
        rows[name] = {
            "f1_pct": round(result.metrics.f1 * 100, 3),
            "fit_s": round(profile.fit_seconds, 3),
            "throughput_obs_per_s": round(profile.throughput_obs_per_s, 2),
            "peak_memory_mb": round(profile.peak_memory_mb, 2),
        }
        lines.append(
            f"{name:<14} {result.metrics.f1 * 100:>7.2f} {profile.fit_seconds:>8.2f} "
            f"{profile.throughput_obs_per_s:>10.1f} {profile.peak_memory_mb:>9.1f}"
        )
    return "\n".join(lines), {"contenders": rows}


def run_dtype_delta() -> tuple[str, dict]:
    """TFMAE float32 vs float64 fit+score wall-clock and score drift.

    The compute-dtype policy (``TFMAEConfig.compute_dtype``, see
    docs/performance.md) lets production training/serving run float32
    while float64 stays the reference path; this section records what
    that buys and costs on the SMD bench dataset.
    """
    import time

    import numpy as np

    data = bench_dataset("SMD").normalised()
    lines = [
        "TFMAE compute-dtype delta (same data/seed; see docs/performance.md)",
        f"{'dtype':<10} {'fit_s':>8} {'score_s':>9} {'obs/s':>10} {'max|dscore|':>12}",
    ]
    rows: dict[str, dict] = {}
    scores: dict[str, object] = {}
    for dtype in ("float64", "float32"):
        detector = TFMAE(bench_tfmae_config("SMD", compute_dtype=dtype))
        start = time.perf_counter()
        detector.fit(data.train, data.validation)
        fit_s = time.perf_counter() - start
        start = time.perf_counter()
        scores[dtype] = detector.score(data.test)
        score_s = time.perf_counter() - start
        delta = (
            float(np.abs(scores["float32"] - scores["float64"]).max())
            if len(scores) == 2
            else 0.0
        )
        rows[dtype] = {
            "fit_s": round(fit_s, 3),
            "score_s": round(score_s, 3),
            "throughput_obs_per_s": round(data.train.shape[0] / max(fit_s, 1e-9), 2),
            "max_abs_score_delta": delta,
        }
        lines.append(
            f"{dtype:<10} {fit_s:>8.2f} {score_s:>9.2f} "
            f"{data.train.shape[0] / max(fit_s, 1e-9):>10.1f} {delta:>12.2e}"
        )
    return "\n".join(lines), {"dtype_delta": rows}


def test_fig10_efficiency(benchmark):
    table, fig10_payload = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    dtype_table, dtype_payload = run_dtype_delta()
    save_result("fig10_efficiency", table + "\n\n" + dtype_table)
    save_json("fig10_efficiency", {**fig10_payload, **dtype_payload})


if __name__ == "__main__":
    # Refresh only the dtype-delta section, keeping the committed Figure 10
    # table (the full contender sweep is much more expensive).
    path = RESULTS_DIR / "fig10_efficiency.txt"
    existing = path.read_text().rstrip() if path.exists() else ""
    main_table = existing.split("\n\nTFMAE compute-dtype delta")[0]
    dtype_table, dtype_payload = run_dtype_delta()
    save_result("fig10_efficiency", main_table + "\n\n" + dtype_table)
    json_path = RESULTS_DIR / "BENCH_fig10_efficiency.json"
    merged: dict = {}
    if json_path.exists():
        merged = {
            key: value
            for key, value in json.loads(json_path.read_text()).items()
            if key not in ("bench", "scale", "epochs")
        }
    merged.update(dtype_payload)
    save_json("fig10_efficiency", merged)
