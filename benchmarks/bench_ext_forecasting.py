"""Extension bench — masked-autoencoder forecasting vs. naive floors.

Not a paper table: it validates the future-work extension named in the
paper's conclusion (Section VI).  The fixed-mask temporal autoencoder
forecasts a periodic load signal; it must beat persistence and approach
or beat seasonal naive once trained.

Expected shape: TFMAE-forecast MSE < persistence MSE, and within the same
order of magnitude as (or below) seasonal naive.
"""

from __future__ import annotations

import numpy as np

from repro.extensions import (
    ForecastConfig,
    TFMAEForecaster,
    persistence_forecast,
    seasonal_naive_forecast,
)

from _common import save_result


def run_forecasting() -> str:
    rng = np.random.default_rng(3)
    t = np.arange(3000)
    series = (
        2.0
        + np.sin(2 * np.pi * t / 24.0)
        + 0.4 * np.sin(2 * np.pi * t / 168.0)
        + rng.normal(0, 0.08, t.size)
    )[:, None]
    train, evaluation = series[:2400], series[2400:]

    config = ForecastConfig(context_length=96, horizon=24, d_model=32,
                            num_layers=2, num_heads=4, epochs=15, stride=4)
    forecaster = TFMAEForecaster(config).fit(train)

    errors: dict[str, list[float]] = {"TFMAE-forecast": [], "persistence": [], "seasonal": []}
    for start in range(0, evaluation.shape[0] - config.window_size, config.horizon):
        context = evaluation[start : start + config.context_length]
        target = evaluation[start + config.context_length : start + config.window_size]
        errors["TFMAE-forecast"].append(float(np.mean((forecaster.predict(context) - target) ** 2)))
        errors["persistence"].append(
            float(np.mean((persistence_forecast(context, config.horizon) - target) ** 2))
        )
        errors["seasonal"].append(
            float(np.mean((seasonal_naive_forecast(context, config.horizon, 24) - target) ** 2))
        )

    lines = ["Extension: 24-step forecasting MSE (daily+weekly load signal)"]
    for name, values in errors.items():
        lines.append(f"{name:<15} {np.mean(values):.5f}")
    return "\n".join(lines)


def test_forecasting_extension(benchmark):
    table = benchmark.pedantic(run_forecasting, rounds=1, iterations=1)
    save_result("ext_forecasting", table)
    # The learned forecaster must beat the persistence floor.
    rows = {line.split()[0]: float(line.split()[-1]) for line in table.splitlines()[1:]}
    assert rows["TFMAE-forecast"] < rows["persistence"]
