"""Figure 8 — case study on the NIPS-TS synthetic benchmarks.

The paper visualises anomaly-score traces of TFMAE vs. DCdetector on
NIPS-TS-Seasonal and NIPS-TS-Global: TFMAE's scores spike exactly at the
seasonal segment and the global observation anomalies, while DCdetector
misses them.  The bench reports the numeric equivalent — score separation
(mean anomaly score over mean normal score) and point-adjusted F1 for both
methods on both datasets — plus an ASCII rendering of the score trace
around the first anomaly.

Expected shape: TFMAE separates both anomaly types clearly; DCdetector's
separation is markedly weaker on at least one of the two.
"""

from __future__ import annotations

import numpy as np

from repro import TFMAE, evaluate_detector
from repro.baselines import DCdetector
from repro.datasets import get_dataset

from _common import BENCH_ANOMALY_RATIO, EPOCHS, SCALE, SEED, bench_tfmae_config, save_result

DATASETS = ["NIPS-TS-Seasonal", "NIPS-TS-Global"]
# NIPS datasets are shorter than the real ones; run them a bit larger.
NIPS_SCALE = max(SCALE, 0.05)


def _sparkline(values: np.ndarray, width: int = 60) -> str:
    blocks = " .:-=+*#%@"
    resampled = np.interp(
        np.linspace(0, len(values) - 1, width), np.arange(len(values)), values
    )
    span = resampled.max() - resampled.min() + 1e-12
    normalised = (resampled - resampled.min()) / span
    return "".join(blocks[int(v * (len(blocks) - 1))] for v in normalised)


def run_fig8() -> str:
    lines = ["Figure 8 (case study: score traces, separation and F1)"]
    for dataset_name in DATASETS:
        dataset = get_dataset(dataset_name, seed=SEED, scale=NIPS_SCALE)
        data = dataset.normalised()
        labels = data.test_labels.astype(bool)
        ratio = BENCH_ANOMALY_RATIO[dataset_name]

        detectors = {
            "TFMAE": TFMAE(bench_tfmae_config(dataset_name, anomaly_ratio=ratio)),
            "DCdet": DCdetector(window_size=100, epochs=EPOCHS, batch_size=16,
                                anomaly_ratio=ratio, seed=SEED),
        }
        first_anomaly = int(np.flatnonzero(labels)[0])
        window = slice(max(0, first_anomaly - 100), first_anomaly + 100)
        lines.append(f"\n{dataset_name}: first anomaly at t={first_anomaly}")
        lines.append(f"  input   |{_sparkline(np.abs(data.test[window, 0]))}|")
        for name, detector in detectors.items():
            result = evaluate_detector(detector, dataset)
            scores = detector.score(data.test)
            separation = scores[labels].mean() / scores[~labels].mean()
            lines.append(f"  {name:<7} |{_sparkline(scores[window])}|"
                         f"  separation={separation:5.2f}  F1={result.metrics.f1 * 100:.1f}%")
    return "\n".join(lines)


def test_fig8_case_study(benchmark):
    table = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    save_result("fig8_case_study", table)
