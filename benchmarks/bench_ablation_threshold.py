"""Extra ablation — threshold strategies.

DESIGN.md calls out the threshold protocol as a sensitivity of the whole
evaluation: the paper fixes a per-dataset ratio ``r`` (Eq. 17).  This
bench compares, for TFMAE on every bench dataset:

* the paper's ratio rule (validation percentile),
* the POT / extreme-value rule (Siffer et al., the paper's ref. [51]),
* the label-peeking best-F1 oracle (upper bound).

Expected shape: the ratio rule sits between POT and the oracle; the gap
to the oracle quantifies how much headroom threshold selection leaves —
context for interpreting every F1 in Tables III-V.
"""

from __future__ import annotations

from repro import TFMAE
from repro.metrics import (
    apply_threshold,
    best_f1_threshold,
    evaluate_detection,
    pot_threshold,
    ratio_threshold,
)

from _common import (
    BENCH_ANOMALY_RATIO,
    TABLE_DATASETS,
    bench_dataset,
    bench_tfmae_config,
    save_result,
)


def run_threshold_ablation() -> str:
    lines = [
        "Threshold-strategy ablation (TFMAE, point-adjusted F1%)",
        f"{'dataset':<8} {'ratio rule':>11} {'POT/EVT':>9} {'oracle':>8}",
    ]
    for dataset_name in TABLE_DATASETS:
        dataset = bench_dataset(dataset_name).normalised()
        detector = TFMAE(bench_tfmae_config(dataset_name))
        detector.fit(dataset.train, dataset.validation)
        validation_scores = detector.score(dataset.validation)
        test_scores = detector.score(dataset.test)

        ratio = BENCH_ANOMALY_RATIO[dataset_name]
        f1_ratio = evaluate_detection(
            apply_threshold(test_scores, ratio_threshold(validation_scores, ratio)),
            dataset.test_labels,
        ).f1
        f1_pot = evaluate_detection(
            apply_threshold(test_scores, pot_threshold(validation_scores, q=ratio / 100.0)),
            dataset.test_labels,
        ).f1
        _, f1_oracle = best_f1_threshold(test_scores, dataset.test_labels)
        lines.append(
            f"{dataset_name:<8} {f1_ratio * 100:>11.2f} {f1_pot * 100:>9.2f} "
            f"{f1_oracle * 100:>8.2f}"
        )
    return "\n".join(lines)


def test_threshold_strategy_ablation(benchmark):
    table = benchmark.pedantic(run_threshold_ablation, rounds=1, iterations=1)
    save_result("ablation_threshold", table)
