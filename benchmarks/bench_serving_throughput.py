"""Serving throughput: micro-batching vs per-request scoring.

Not a paper table: this bench measures the ``repro.serve`` subsystem.  A
small TFMAE is fitted once, then concurrent client threads push rolling
windows through a :class:`~repro.serve.MicroBatcher` configured with
``max_batch_size`` in {1, 8, 32}.  Batch size 1 *is* per-request scoring
(every window takes its own forward pass), so the speedup of the larger
rows is exactly what coalescing buys — same detector, same worker pool,
same request stream.

Client-side latency lands in a :class:`repro.serve.metrics.Histogram`
(the same observability core the ``/metrics`` endpoint reads), and the
achieved coalescing is reported from the batcher's own
``serve_batch_size`` histogram.

Every row runs twice — interpreted and tape-replay (``jit=`` on the
batcher) — so the table separates what coalescing buys from what
trace-compiled scoring buys end to end.

Expected shape: on multi-core runners throughput rises with the
batch-size budget (vectorized ``score_windows`` amortises Python and
BLAS dispatch), while p50 latency stays within the same order of
magnitude — the max-delay flush bounds how long a lone request can be
held back.  With the JIT on, single-window forwards are cheap enough
that a single-core runner can favour ``max_batch=1`` outright.

Environment: ``REPRO_BENCH_EPOCHS`` (default 8) for training;
``REPRO_BENCH_SERVE_REQUESTS`` (default 320) total requests per row.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro import TFMAE, TFMAEConfig
from repro.serve import MicroBatcher
from repro.serve.metrics import Histogram
from repro.datasets import get_dataset

from _common import EPOCHS, SEED, save_json, save_result

DATASET = "NIPS-TS-Global"
WINDOW = 100
BATCH_SIZES = (1, 8, 32)
CLIENTS = 8
REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "320"))
MAX_DELAY = 0.002
WORKERS = 2


def _fit_detector() -> tuple[TFMAE, np.ndarray]:
    dataset = get_dataset(DATASET, seed=SEED, scale=0.02).normalised()
    config = TFMAEConfig(window_size=WINDOW, d_model=32, num_layers=2, num_heads=4,
                         anomaly_ratio=2.5, epochs=EPOCHS, batch_size=16,
                         learning_rate=1e-3, seed=SEED)
    detector = TFMAE(config)
    detector.fit(dataset.train, dataset.validation)
    return detector, dataset.test


def _run_config(
    detector: TFMAE, test: np.ndarray, max_batch_size: int, use_jit: bool = True
) -> dict:
    windows = [test[i : i + WINDOW] for i in range(0, REQUESTS)]
    latency = Histogram(capacity=REQUESTS)
    errors: list[BaseException] = []

    with MicroBatcher(detector_for=lambda key: detector,
                      max_batch_size=max_batch_size, max_delay=MAX_DELAY,
                      max_queue=REQUESTS + CLIENTS, workers=WORKERS,
                      jit=use_jit) as batcher:

        def client(offsets: range) -> None:
            for offset in offsets:
                started = time.perf_counter()
                try:
                    batcher.score("bench", windows[offset], timeout=120)
                except BaseException as error:  # pragma: no cover - bench guard
                    errors.append(error)
                    return
                latency.observe(time.perf_counter() - started)

        threads = [
            threading.Thread(target=client, args=(range(i, REQUESTS, CLIENTS),))
            for i in range(CLIENTS)
        ]
        begin = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - begin
        batch_summary = batcher.metrics.histogram("serve_batch_size").summary()

    if errors:
        raise errors[0]
    summary = latency.summary()
    return {
        "batch": max_batch_size,
        "rps": REQUESTS / elapsed,
        "p50": summary["p50"] * 1e3,
        "p95": summary["p95"] * 1e3,
        "p99": summary["p99"] * 1e3,
        "mean_batch": batch_summary["mean"],
    }


def run_serving_bench() -> tuple[str, dict]:
    detector, test = _fit_detector()
    # Warm caches (positional encodings, BLAS threads, JIT tapes for the
    # batch shapes the batcher will form) outside the clock.
    detector.score_last(np.stack([test[:WINDOW]]))

    header = (f"{'max_batch':>9} {'jit':>4} {'throughput':>12} {'p50 ms':>8} "
              f"{'p95 ms':>8} {'p99 ms':>8} {'mean batch':>11}")
    lines = [
        f"Serving throughput ({DATASET} profile, {REQUESTS} requests, "
        f"{CLIENTS} concurrent clients, {WORKERS} workers, "
        f"max_delay={MAX_DELAY * 1e3:g}ms)",
        header,
        "-" * len(header),
    ]
    throughput: dict[int, float] = {}
    jit_gain: dict[str, float] = {}
    results: dict[str, dict] = {}
    for batch_size in BATCH_SIZES:
        rps: dict[bool, float] = {}
        for use_jit in (False, True):
            row = _run_config(detector, test, batch_size, use_jit=use_jit)
            rps[use_jit] = row["rps"]
            results[f"B{batch_size}/{'jit' if use_jit else 'interp'}"] = row
            lines.append(
                f"{row['batch']:>9d} {'on' if use_jit else 'off':>4} "
                f"{row['rps']:>8.0f} r/s {row['p50']:>8.2f} "
                f"{row['p95']:>8.2f} {row['p99']:>8.2f} {row['mean_batch']:>11.1f}"
            )
        throughput[batch_size] = rps[True]
        jit_gain[str(batch_size)] = rps[True] / rps[False]
    best = max(BATCH_SIZES, key=lambda size: throughput[size])
    lines.append(
        f"micro-batching speedup vs per-request (jit on): "
        f"{throughput[best] / throughput[1]:.1f}x (best at max_batch={best})"
    )
    gains = ", ".join(
        f"B{batch}: {gain:.2f}x" for batch, gain in jit_gain.items()
    )
    lines.append(f"jit throughput gain vs interpreted scoring: {gains}")
    payload = {
        "results": results,
        "throughput_rps_jit": {str(b): throughput[b] for b in BATCH_SIZES},
        "jit_gain": jit_gain,
    }
    return "\n".join(lines), payload


def test_serving_throughput(benchmark):
    table, payload = benchmark.pedantic(run_serving_bench, rounds=1, iterations=1)
    save_result("serving_throughput", table)
    save_json("serving_throughput", payload)
    # The acceptance criterion: tape-replay scoring must raise end-to-end
    # throughput on the per-request hot path it targets.  (Coalescing vs
    # per-request depends on core count — on a single-core runner the jit
    # makes individual forwards cheap enough that B1 can win outright —
    # so batching is checked as "actually coalesces", not "always wins".)
    assert payload["jit_gain"]["1"] > 1.0
    assert payload["results"]["B8/jit"]["mean_batch"] > 1.0


def main() -> None:
    table, payload = run_serving_bench()
    save_result("serving_throughput", table)
    save_json("serving_throughput", payload)


if __name__ == "__main__":
    main()
