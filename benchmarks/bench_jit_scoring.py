"""Trace-compiled scoring: tape-replay JIT vs the interpreted graph.

Not a paper table: this bench tracks the ``repro.nn.jit`` scoring
backend.  A small TFMAE is fitted per configuration, then ``score_last``
wall-clock is measured with the JIT on and off across model sizes,
compute dtypes, and batch sizes.  Replay must stay bitwise-identical to
the interpreted graph (asserted here), so every speedup row is pure
dispatch/allocation overhead removed — the numpy math is the same.

Two baselines are reported:

* **in-tree interpreted** — ``use_jit(False)`` on the current tree.
  Conservative: the current interpreted path is itself faster than the
  PR-3-era one (op-hook dispatch fast path), so ratios against it
  understate the JIT's gain over history.
* **PR-3 interpreted** — when ``REPRO_BENCH_JIT_BASELINE`` points at a
  PR-3-era checkout's ``src`` directory (``git worktree add /tmp/pr3
  <pr3-commit>`` → ``REPRO_BENCH_JIT_BASELINE=/tmp/pr3/src``), the same
  fit + ``score_last`` timing runs there in a subprocess, giving the
  true pre-JIT fused interpreted baseline the acceptance criterion names
  (single-window ``score_last`` >= 2.0x, met by the stream configs; see
  the committed ``BENCH_jit_scoring.json``).

Run directly for the committed artifacts::

    PYTHONPATH=src REPRO_BENCH_JIT_BASELINE=/tmp/pr3/src \
        python benchmarks/bench_jit_scoring.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro import TFMAE, TFMAEConfig
from repro.nn import jit

from _common import SEED, save_json, save_result

#: (name -> TFMAEConfig overrides).  The stream configs model the online
#: scoring loop (short windows, small model, one window per call); the
#: serve configs match bench_serving_throughput's model.
CONFIGS = {
    "stream-w50-d16": dict(window_size=50, d_model=16, num_layers=1, num_heads=2),
    "stream-w50-d16-f32": dict(
        window_size=50, d_model=16, num_layers=1, num_heads=2,
        compute_dtype="float32",
    ),
    "serve-w100-d32": dict(window_size=100, d_model=32, num_layers=2, num_heads=4),
    "serve-w100-d32-f32": dict(
        window_size=100, d_model=32, num_layers=2, num_heads=4,
        compute_dtype="float32",
    ),
}
BATCH_SIZES = (1, 32)
REPEATS = int(os.environ.get("REPRO_BENCH_JIT_REPEATS", "60"))


def _series(length: int, rng: np.random.Generator) -> np.ndarray:
    t = np.arange(length)
    base = np.sin(2 * np.pi * t / 25.0)
    return (base + 0.1 * rng.normal(size=length))[:, None]


def _fit_detector(overrides: dict) -> TFMAE:
    rng = np.random.default_rng(SEED)
    config = TFMAEConfig(
        batch_size=16, epochs=1, learning_rate=1e-3, seed=SEED, **overrides
    )
    detector = TFMAE(config)
    detector.fit(_series(1200, rng), _series(400, rng))
    return detector


def _windows(overrides: dict, batch: int) -> np.ndarray:
    rng = np.random.default_rng(SEED + 1)
    return np.stack(
        [_series(overrides["window_size"], rng)[:, 0] for _ in range(batch)]
    )[:, :, None]


def _best(fn, repeats: int = REPEATS, warmup: int = 8) -> float:
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


#: Runs inside the baseline checkout (no repro.nn.jit there): fit the
#: same detector, time interpreted score_last, print one JSON line.
_BASELINE_SCRIPT = """
import json, sys, time
import numpy as np
from repro import TFMAE, TFMAEConfig

spec = json.loads(sys.argv[1])
rng = np.random.default_rng(spec["seed"])

def series(length, rng):
    t = np.arange(length)
    return (np.sin(2 * np.pi * t / 25.0) + 0.1 * rng.normal(size=length))[:, None]

config = TFMAEConfig(batch_size=16, epochs=1, learning_rate=1e-3,
                     seed=spec["seed"], **spec["overrides"])
detector = TFMAE(config)
detector.fit(series(1200, rng), series(400, rng))
out = {}
for batch in spec["batches"]:
    wrng = np.random.default_rng(spec["seed"] + 1)
    windows = np.stack([series(spec["overrides"]["window_size"], wrng)[:, 0]
                        for _ in range(batch)])[:, :, None]
    for _ in range(spec["warmup"]):
        detector.score_last(windows)
    best = float("inf")
    for _ in range(spec["repeats"]):
        start = time.perf_counter()
        detector.score_last(windows)
        best = min(best, time.perf_counter() - start)
    out[str(batch)] = best * 1e3
print(json.dumps(out))
"""


def _baseline_times(name: str, overrides: dict) -> dict[str, float] | None:
    """PR-3 interpreted score_last ms per batch size, or None when unset."""
    baseline = os.environ.get("REPRO_BENCH_JIT_BASELINE")
    if not baseline:
        return None
    spec = {
        "seed": SEED,
        "overrides": overrides,
        "batches": list(BATCH_SIZES),
        "warmup": 8,
        "repeats": REPEATS,
    }
    env = dict(os.environ, PYTHONPATH=baseline)
    result = subprocess.run(
        [sys.executable, "-c", _BASELINE_SCRIPT, json.dumps(spec)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(result.stdout.strip().splitlines()[-1])


def run_jit_bench() -> tuple[str, dict]:
    rows = [
        "trace-compiled scoring: score_last wall-clock, jit vs interpreted",
        f"(best of {REPEATS}; pr3_ms from REPRO_BENCH_JIT_BASELINE when set)",
        f"{'config':<22} {'batch':>5} {'interp_ms':>10} {'jit_ms':>8} "
        f"{'speedup':>8} {'pr3_ms':>8} {'vs_pr3':>7}",
    ]
    results: dict[str, dict] = {}
    for name, overrides in CONFIGS.items():
        detector = _fit_detector(overrides)
        baseline = _baseline_times(name, overrides)
        for batch in BATCH_SIZES:
            windows = _windows(overrides, batch)
            with jit.use_jit(False):
                interp_scores = detector.score_last(windows)
                interp = _best(lambda: detector.score_last(windows))
            with jit.use_jit(True):
                jit_scores = detector.score_last(windows)
                replay = _best(lambda: detector.score_last(windows))
            if not np.array_equal(interp_scores, jit_scores):
                raise AssertionError(
                    f"jit replay diverged from interpreted at {name} B={batch}"
                )
            pr3_ms = baseline[str(batch)] if baseline else None
            entry = {
                "interpreted_ms": round(interp * 1e3, 4),
                "jit_ms": round(replay * 1e3, 4),
                "speedup_vs_interpreted": round(interp / replay, 3),
            }
            if pr3_ms is not None:
                entry["pr3_interpreted_ms"] = round(pr3_ms, 4)
                entry["speedup_vs_pr3"] = round(pr3_ms / (replay * 1e3), 3)
            results[f"{name}/B{batch}"] = entry
            pr3_text = f"{pr3_ms:>8.3f}" if pr3_ms is not None else f"{'-':>8}"
            vs_text = (
                f"{pr3_ms / (replay * 1e3):>6.2f}x" if pr3_ms is not None
                else f"{'-':>7}"
            )
            rows.append(
                f"{name:<22} {batch:>5} {interp * 1e3:>10.3f} "
                f"{replay * 1e3:>8.3f} {interp / replay:>7.2f}x "
                f"{pr3_text} {vs_text}"
            )
    single = {
        key: entry for key, entry in results.items() if key.endswith("/B1")
    }
    best_key = max(
        single,
        key=lambda k: single[k].get(
            "speedup_vs_pr3", single[k]["speedup_vs_interpreted"]
        ),
    )
    best = single[best_key]
    headline = best.get("speedup_vs_pr3", best["speedup_vs_interpreted"])
    rows.append("")
    rows.append(
        f"acceptance: single-window score_last best speedup = {headline:.2f}x "
        f"({best_key}, target >= 2.0x vs PR 3 interpreted)"
    )
    payload = {"results": results, "headline_single_window": {
        "config": best_key, "speedup": headline,
        "baseline": "pr3" if "speedup_vs_pr3" in best else "in-tree",
    }}
    return "\n".join(rows), payload


def test_jit_scoring(benchmark):
    detector = _fit_detector(CONFIGS["stream-w50-d16"])
    windows = _windows(CONFIGS["stream-w50-d16"], 1)
    with jit.use_jit(True):
        detector.score_last(windows)  # trace once outside the timer
        benchmark(lambda: detector.score_last(windows))
    table, payload = run_jit_bench()
    save_result("jit_scoring", table)
    save_json("jit_scoring", payload)
    # Replay must beat the interpreted path on every single-window row.
    for key, entry in payload["results"].items():
        if key.endswith("/B1"):
            assert entry["speedup_vs_interpreted"] > 1.0, (key, entry)


def main() -> None:
    table, payload = run_jit_bench()
    save_result("jit_scoring", table)
    save_json("jit_scoring", payload)


if __name__ == "__main__":
    main()
