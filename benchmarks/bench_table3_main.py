"""Table III — main anomaly-detection comparison.

Runs TFMAE and all 14 baselines on the five real-world dataset surrogates
with the paper's protocol (window 100, validation-ratio threshold, point
adjustment) and prints P/R/F1 per (method, dataset) plus the cross-dataset
average — the same rows as the paper's Table III.

Expected *shape* (not absolute numbers): TFMAE ranks at or near the top on
average; contrastive (AnoTran, DCdetector) and adversarial (USAD, TranAD)
methods beat plain reconstruction; classical LOF/IForest trail the deep
methods on the multivariate profiles.
"""

from __future__ import annotations

import os

import numpy as np

from repro import TFMAE, evaluate_detector
from repro.baselines import BASELINE_REGISTRY

from _common import (
    BENCH_ANOMALY_RATIO,
    SCALE,
    SEED,
    TABLE_DATASETS,
    baseline_kwargs,
    bench_dataset,
    bench_tfmae_config,
    save_result,
)

_METHOD_FILTER = os.environ.get("REPRO_BENCH_METHODS")  # comma-separated
_DATASET_FILTER = os.environ.get("REPRO_BENCH_DATASETS")


def _methods() -> list[str]:
    names = list(BASELINE_REGISTRY) + ["TFMAE"]
    if _METHOD_FILTER:
        wanted = set(_METHOD_FILTER.split(","))
        names = [n for n in names if n in wanted]
    return names


def _datasets() -> list[str]:
    if _DATASET_FILTER:
        return [d for d in TABLE_DATASETS if d in set(_DATASET_FILTER.split(","))]
    return TABLE_DATASETS


def _build_detector(method: str, dataset: str):
    ratio = BENCH_ANOMALY_RATIO[dataset]
    if method == "TFMAE":
        return TFMAE(bench_tfmae_config(dataset))
    ctor = BASELINE_REGISTRY[method]
    if method in ("LOF", "IForest"):
        return ctor(anomaly_ratio=ratio, seed=SEED)
    return ctor(anomaly_ratio=ratio, **baseline_kwargs())


def run_table3() -> str:
    methods = _methods()
    datasets = _datasets()
    scores: dict[str, dict[str, tuple[float, float, float]]] = {}
    for method in methods:
        scores[method] = {}
        for dataset_name in datasets:
            dataset = bench_dataset(dataset_name)
            detector = _build_detector(method, dataset_name)
            result = evaluate_detector(detector, dataset)
            scores[method][dataset_name] = result.metrics.as_percent()

    header = f"{'method':<12}" + "".join(
        f" | {d:^20}" for d in datasets
    ) + f" | {'Average':^20}"
    sub = f"{'':<12}" + (" | " + f"{'P':>6}{'R':>7}{'F1':>7}") * (len(datasets) + 1)
    lines = [f"Table III (scale={SCALE})", header, sub, "-" * len(sub)]
    for method in methods:
        cells = []
        triples = []
        for dataset_name in datasets:
            p, r, f1 = scores[method][dataset_name]
            triples.append((p, r, f1))
            cells.append(f"{p:>6.2f}{r:>7.2f}{f1:>7.2f}")
        avg = np.mean(triples, axis=0)
        cells.append(f"{avg[0]:>6.2f}{avg[1]:>7.2f}{avg[2]:>7.2f}")
        lines.append(f"{method:<12} | " + " | ".join(cells))
    return "\n".join(lines)


def test_table3_main_results(benchmark):
    table = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    save_result("table3_main", table)
