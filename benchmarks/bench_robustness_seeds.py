"""Seed-robustness check for the headline comparison.

Not a paper table: at 1% scale the Table III numbers carry seed variance
(data realisation + weight init).  This bench repeats TFMAE and the two
strongest baselines over three seeds on SMD and SWaT and reports
mean ± std of the point-adjusted F1, so readers can tell which Table III
gaps are signal.

Expected shape: TFMAE's mean stays at/near the top and the TFMAE-vs-
reconstruction gaps exceed one standard deviation.
"""

from __future__ import annotations

import numpy as np

from repro import TFMAE, evaluate_detector
from repro.baselines import AnomalyTransformer, TimesNet
from repro.datasets import get_dataset

from _common import (
    BENCH_ANOMALY_RATIO,
    EPOCHS,
    bench_scale,
    bench_tfmae_config,
    save_json,
    save_result,
)

SEEDS = [0, 1, 2]
DATASETS = ["SMD", "SWaT"]


def _detectors(dataset: str, seed: int) -> dict:
    ratio = BENCH_ANOMALY_RATIO[dataset]
    kwargs = dict(window_size=100, epochs=EPOCHS, batch_size=16,
                  anomaly_ratio=ratio, seed=seed)
    return {
        "TFMAE": TFMAE(bench_tfmae_config(dataset, seed=seed)),
        "AnoTran": AnomalyTransformer(**kwargs),
        "TimesNet": TimesNet(**kwargs),
    }


def run_robustness() -> tuple[str, dict]:
    lines = ["Seed robustness (point-adjusted F1%, mean +/- std over "
             f"seeds {SEEDS})"]
    results: dict[str, dict] = {}
    for dataset_name in DATASETS:
        lines.append(f"\n{dataset_name}:")
        scores: dict[str, list[float]] = {}
        for seed in SEEDS:
            dataset = get_dataset(dataset_name, seed=seed, scale=bench_scale(dataset_name))
            for name, detector in _detectors(dataset_name, seed).items():
                result = evaluate_detector(detector, dataset)
                scores.setdefault(name, []).append(result.metrics.f1 * 100)
        results[dataset_name] = {
            name: {
                "f1_mean": round(float(np.mean(values)), 3),
                "f1_std": round(float(np.std(values)), 3),
                "runs": [round(v, 3) for v in values],
            }
            for name, values in scores.items()
        }
        for name, values in scores.items():
            lines.append(f"  {name:<9} {np.mean(values):6.2f} +/- {np.std(values):5.2f}"
                         f"   (runs: {', '.join(f'{v:.1f}' for v in values)})")
    payload = {"seeds": SEEDS, "results": results}
    return "\n".join(lines), payload


def test_seed_robustness(benchmark):
    table, payload = benchmark.pedantic(run_robustness, rounds=1, iterations=1)
    save_result("robustness_seeds", table)
    save_json("robustness_seeds", payload)


if __name__ == "__main__":
    table, payload = run_robustness()
    save_result("robustness_seeds", table)
    save_json("robustness_seeds", payload)
