"""Figures 1 (right) and 9 — threshold generalisation under distribution
shift.

The paper plots the CDF of anomaly scores on the SMAP validation vs. test
sets: TimesNet (reconstruction criterion) shows a wide gap — test scores
run systematically higher, so a validation-calibrated threshold
misbehaves — while TFMAE's contrastive criterion keeps the two CDFs close.
The SMAP surrogate reproduces the regime drift that causes this.

The bench reports the mean CDF gap and KS distance between validation and
normal-test score distributions for both models.

Expected shape: TFMAE's gap is substantially smaller than TimesNet's.
"""

from __future__ import annotations

import numpy as np

from repro import TFMAE
from repro.baselines import TimesNet
from repro.metrics import cdf_gap, empirical_cdf, ks_distance

from _common import EPOCHS, SEED, bench_dataset, bench_tfmae_config, save_result


def _gap_report(name: str, val_scores: np.ndarray, test_scores: np.ndarray) -> str:
    gap = cdf_gap(val_scores, test_scores)
    ks = ks_distance(val_scores, test_scores)
    lo = min(val_scores.min(), test_scores.min())
    hi = max(val_scores.max(), test_scores.max())
    grid = np.linspace(lo, hi, 8)
    _, val_cdf = empirical_cdf(val_scores, grid)
    _, test_cdf = empirical_cdf(test_scores, grid)
    curve = "  ".join(f"{v:.2f}/{t:.2f}" for v, t in zip(val_cdf, test_cdf))
    return (f"{name:<9} mean CDF gap={gap:.4f}  KS={ks:.4f}\n"
            f"          CDF val/test over 8 grid points: {curve}")


def run_fig9() -> str:
    dataset = bench_dataset("SMAP").normalised()
    normal_mask = dataset.test_labels == 0

    tfmae = TFMAE(bench_tfmae_config("SMAP"))
    tfmae.fit(dataset.train, dataset.validation)
    tfmae_report = _gap_report(
        "TFMAE",
        tfmae.score(dataset.validation),
        tfmae.score(dataset.test)[normal_mask],
    )

    timesnet = TimesNet(window_size=100, epochs=EPOCHS, batch_size=16,
                        anomaly_ratio=1.0, seed=SEED)
    timesnet.fit(dataset.train, dataset.validation)
    timesnet_report = _gap_report(
        "TimesNet",
        timesnet.score(dataset.validation),
        timesnet.score(dataset.test)[normal_mask],
    )

    return "\n".join([
        "Figure 1(right)/9 (validation-vs-test score distribution gap, SMAP)",
        timesnet_report,
        tfmae_report,
    ])


def test_fig9_distribution_shift(benchmark):
    table = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    save_result("fig9_distribution_shift", table)
