"""TFMAE core: the paper's primary contribution.

Exposes the configuration, the model with its two masked autoencoder
branches, the trainer and the end-user detector facade.
"""

from .config import PAPER_PRESETS, TFMAEConfig, preset_for
from .detector import TFMAE
from .model import FrequencyBranch, TemporalBranch, TFMAEModel
from .trainer import TFMAETrainer, TrainingLog

__all__ = [
    "TFMAEConfig",
    "PAPER_PRESETS",
    "preset_for",
    "TFMAEModel",
    "TemporalBranch",
    "FrequencyBranch",
    "TFMAETrainer",
    "TrainingLog",
    "TFMAE",
]
