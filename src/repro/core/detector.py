"""Public TFMAE detector facade.

:class:`TFMAE` wires the model, trainer, windowed scoring and threshold
protocol behind the library-wide :class:`~repro.detector.BaseDetector`
interface:

>>> from repro.core import TFMAE, TFMAEConfig
>>> detector = TFMAE(TFMAEConfig(window_size=100))
>>> detector.fit(train, validation)          # doctest: +SKIP
>>> labels = detector.predict(test)          # doctest: +SKIP
"""

from __future__ import annotations

import numpy as np

from ..datasets.windows import batched_window_scores, score_series
from ..detector import BaseDetector, check_finite_series
from .config import TFMAEConfig
from .model import TFMAEModel
from .trainer import TFMAETrainer, TrainingLog

__all__ = ["TFMAE"]


class TFMAE(BaseDetector):
    """Temporal-Frequency Masked Autoencoder anomaly detector.

    Parameters
    ----------
    config:
        Model/training configuration; defaults reproduce the paper's
        Section V-A.4 settings.  The number of series features is inferred
        at :meth:`fit` time.
    """

    name = "TFMAE"

    def __init__(self, config: TFMAEConfig | None = None):
        self.config = config if config is not None else TFMAEConfig()
        super().__init__(anomaly_ratio=self.config.anomaly_ratio)
        self.model: TFMAEModel | None = None
        self.training_log: TrainingLog | None = None

    def fit(self, train: np.ndarray, validation: np.ndarray | None = None) -> "TFMAE":
        # Stash the validation split so the trainer can run snapshot
        # selection against a synthetic probe built from it.
        self._validation_for_selection = validation
        super().fit(train, validation)
        return self

    def _fit(self, train: np.ndarray) -> None:
        self.model = TFMAEModel(n_features=train.shape[1], config=self.config)
        trainer = TFMAETrainer(self.model, self.config)
        self.training_log = trainer.fit(
            train, validation=getattr(self, "_validation_for_selection", None)
        )

    def refit(
        self,
        recent: np.ndarray,
        validation: np.ndarray | None = None,
        epochs: int | None = None,
        learning_rate: float | None = None,
    ) -> "TFMAE":
        """Incrementally refit the existing model on recent telemetry.

        Continues training from the **current** weights (fresh Adam
        state, same schedule) instead of reinitialising — the serving
        lifecycle's answer to score-distribution drift: a few cheap
        epochs on the recent slice re-anchor the model without paying
        for a full retrain.  The threshold is recalibrated on
        ``validation`` (or ``recent`` when absent) so the anomaly-ratio
        contract holds against the *new* score distribution.

        ``epochs``/``learning_rate`` override the config for this refit
        only — drift refreshes typically use fewer epochs and a smaller
        rate than the original fit.
        """
        self._require_fitted()
        assert self.model is not None
        recent = np.asarray(recent, dtype=np.float64)
        if recent.ndim != 2:
            raise ValueError(f"recent must be (time, features), got shape {recent.shape}")
        if recent.shape[1] != self.model.n_features:
            raise ValueError(
                f"recent has {recent.shape[1]} features but the model was fit "
                f"with {self.model.n_features}"
            )
        check_finite_series(recent, name="refit data")
        overrides = {}
        if epochs is not None:
            overrides["epochs"] = epochs
        if learning_rate is not None:
            overrides["learning_rate"] = learning_rate
        config = self.config.with_overrides(**overrides) if overrides else self.config
        trainer = TFMAETrainer(self.model, config)
        self.training_log = trainer.fit(recent, validation=validation)
        self.calibrate_threshold(validation if validation is not None else recent)
        return self

    def score(self, series: np.ndarray) -> np.ndarray:
        """Per-observation contrastive discrepancy (Eq. 16)."""
        self._require_fitted()
        assert self.model is not None
        series = check_finite_series(series, name="TFMAE scoring input")
        return score_series(
            series,
            size=self.config.window_size,
            score_fn=self.model.score_windows,
            batch_size=self.config.batch_size,
        )

    def score_last(self, windows: np.ndarray) -> np.ndarray:
        """Vectorized last-observation scores for a batch of windows.

        One ``score_windows`` forward pass per ``config.batch_size``
        chunk instead of one full :meth:`score` per window.  Bitwise
        identical to ``[score(w)[-1] for w in windows]``: for each window
        the last observation's score always comes from the
        ``window_size``-length slice ending at that observation (the tail
        slice when the window is long enough, the front-padded window
        :func:`~repro.datasets.windows.score_series` builds otherwise),
        and ``score_windows`` is batch-size invariant because every
        window flows through the model independently.
        """
        self._require_fitted()
        assert self.model is not None
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim == 2:
            windows = windows[None]
        if windows.ndim != 3:
            raise ValueError(
                f"windows must be (batch, time, features), got shape {windows.shape}"
            )
        windows = check_finite_series(windows, name="TFMAE scoring input")
        size = self.config.window_size
        time = windows.shape[1]
        if time >= size:
            tails = windows[:, time - size:, :]
        else:
            pad = np.repeat(windows[:, :1, :], size - time, axis=1)
            tails = np.concatenate([pad, windows], axis=1)
        return batched_window_scores(
            tails,
            lambda chunk: self.model.score_windows(chunk)[:, -1],
            batch_size=self.config.batch_size,
        )
