"""Training loop for TFMAE.

Implements the paper's schedule (Section V-A.4): Adam at learning rate
1e-4, batch size 64, one epoch over non-overlapping windows of length 100.
The loop is model-agnostic enough that the Table IV/V ablation variants
train through the same code path.

Fault tolerance (see ``docs/robustness.md``): when
``config.checkpoint_dir`` is set the trainer writes an atomic
training-state checkpoint (weights, optimizer, RNG state, probe AUC)
every ``checkpoint_every`` epochs and can resume from it bit-exactly
after a crash.  A :class:`~repro.robustness.DivergenceGuard` watches
every batch; on non-finite loss/gradients or epoch-loss explosion the
trainer rolls back to the last good state, scales the learning rate by
``lr_backoff`` and retries, raising
:class:`~repro.robustness.TrainingDivergedError` after
``max_divergence_retries`` failed retries.
"""

from __future__ import annotations

import copy
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..analysis.anomaly import AnomalyError, detect_anomaly
from ..analysis.shapecheck import preflight_model
from ..datasets.windows import non_overlapping_windows
from ..metrics.ranking import roc_auc
from ..nn.jit_train import TrainStep
from ..nn.optim import Adam
from ..robustness.checkpoint import CheckpointManager, config_fingerprint
from ..robustness.guards import DivergenceGuard, TrainingDivergedError
from .config import TFMAEConfig
from .model import TFMAEModel

__all__ = ["TrainingLog", "TFMAETrainer", "build_synthetic_probe"]

#: Config fields allowed to differ between the run that wrote a checkpoint
#: and the run resuming from it (run control, not trajectory).
_RESUMABLE_FIELDS = (
    "checkpoint_dir",
    "checkpoint_every",
    "resume",
    "epochs",
    "early_stop_patience",
    "max_divergence_retries",
    "lr_backoff",
    "loss_explosion_factor",
    "check_gradients",
    "preflight",
    "detect_anomaly",
    # Execution strategy only: the compiled train step is bitwise-identical
    # to the interpreted loop, so flipping it never forks a trajectory.
    "train_jit",
    "jit_cache_size",
)


def build_synthetic_probe(
    validation: np.ndarray,
    window_size: int,
    rng: np.random.Generator,
    spike_fraction: float = 0.05,
    magnitude: float = 6.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Corrupt validation windows with synthetic anomalies at known spots.

    Returns ``(windows, labels)`` where labels mark the injected
    positions.  The probe mixes the two anomaly families of the paper's
    taxonomy — 6-sigma point spikes AND pattern segments (flatline or
    drift over ~1/5 of the window) — because contrastive view collapse
    degrades pattern detection first while blatant spikes keep ranking
    high; a spike-only probe misses the failure.  Used by snapshot
    selection without touching any real test labels.
    """
    windows = non_overlapping_windows(validation, window_size).copy()
    if windows.shape[0] == 0:
        raise ValueError("validation split shorter than one window")
    batch, time, features = windows.shape
    labels = np.zeros((batch, time), dtype=np.int64)
    std = validation.std(axis=0) + 1e-8
    count = max(1, int(spike_fraction * time))
    n_channels = max(1, features // 3)
    segment_len = max(4, time // 5)
    for b in range(batch):
        # Point anomalies: +/- magnitude*sigma spikes.
        positions = rng.choice(time, size=count, replace=False)
        channels = rng.choice(features, size=n_channels, replace=False)
        signs = rng.choice([-1.0, 1.0], size=(count, n_channels))
        windows[b][np.ix_(positions, channels)] += magnitude * signs * std[channels]
        labels[b, positions] = 1
        # Pattern anomaly: flatline or linear drift on a channel subset.
        start = int(rng.integers(0, time - segment_len))
        stop = start + segment_len
        seg_channels = rng.choice(features, size=n_channels, replace=False)
        if rng.random() < 0.5:
            windows[b][start:stop, seg_channels] = windows[b][start:stop, seg_channels].mean(axis=0)
        else:
            drift = np.linspace(0.0, 3.0, segment_len)[:, None] * std[seg_channels]
            windows[b][start:stop, seg_channels] += drift * rng.choice([-1.0, 1.0])
        labels[b, start:stop] = 1
    return windows, labels


@dataclass
class TrainingLog:
    """Per-batch loss traces collected during training."""

    losses: list[float] = field(default_factory=list)
    metrics: list[dict[str, float]] = field(default_factory=list)
    #: (epoch, reason) pairs for every divergence rollback performed.
    rollbacks: list[tuple[int, str]] = field(default_factory=list)
    #: True when this run restored state from a checkpoint before training.
    resumed: bool = False

    def summary(self) -> dict[str, float]:
        if not self.losses:
            return {"batches": 0}
        return {
            "batches": len(self.losses),
            "first_loss": self.losses[0],
            "last_loss": self.losses[-1],
            "mean_loss": float(np.mean(self.losses)),
        }

    def truncate(self, length: int) -> None:
        """Drop trace entries past ``length`` (divergence rollback)."""
        del self.losses[length:]
        del self.metrics[length:]


class TFMAETrainer:
    """Fits a :class:`~repro.core.model.TFMAEModel` on a training series."""

    def __init__(self, model: TFMAEModel, config: TFMAEConfig | None = None):
        self.model = model
        self.config = config if config is not None else model.config
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            grad_clip=self.config.grad_clip,
        )
        # Trace-compiled train step (see repro.nn.jit_train): default-on,
        # bitwise-identical to the interpreted loop, soft-falls-back per
        # batch-shape key when the graph is untraceable.
        self.train_step = TrainStep(
            model,
            self.optimizer,
            enabled=self.config.train_jit,
            cache_size=self.config.jit_cache_size,
        )
        self.log = TrainingLog()

    # ------------------------------------------------------------------
    # training state snapshots (rollback + checkpoint share one format)
    # ------------------------------------------------------------------
    def _snapshot(self, epoch, rng, best_auc, best_state, best_epoch_loss,
                  epochs_without_improvement, guard) -> dict:
        return {
            "epoch": epoch,
            "model": self.model.state_dict(),
            "optim": self.optimizer.state_dict(),
            "rng_state": copy.deepcopy(rng.bit_generator.state),
            "best_auc": best_auc,
            "best_state": best_state,
            "best_epoch_loss": best_epoch_loss,
            "epochs_without_improvement": epochs_without_improvement,
            "guard_best": guard.best_epoch_loss,
            "log_length": len(self.log.losses),
        }

    def _restore(self, snapshot: dict, rng, guard) -> None:
        self.model.load_state_dict(snapshot["model"])
        self.optimizer.load_state_dict(snapshot["optim"])
        rng.bit_generator.state = copy.deepcopy(snapshot["rng_state"])
        guard.best_epoch_loss = snapshot["guard_best"]
        self.log.truncate(snapshot["log_length"])

    def _write_checkpoint(self, manager: CheckpointManager, snapshot: dict) -> None:
        metadata = {
            "epoch": snapshot["epoch"],
            "rng_state": snapshot["rng_state"],
            "best_probe_auc": None if snapshot["best_auc"] == -np.inf
            else float(snapshot["best_auc"]),
            "best_epoch_loss": None if snapshot["best_epoch_loss"] == np.inf
            else float(snapshot["best_epoch_loss"]),
            "epochs_without_improvement": snapshot["epochs_without_improvement"],
            "guard_best_epoch_loss": snapshot["guard_best"],
            "learning_rate": float(self.optimizer.lr),
            "config_fingerprint": config_fingerprint(self.config, _RESUMABLE_FIELDS),
        }
        extra = None
        if snapshot["best_state"] is not None:
            extra = {f"best.{name}": array for name, array in snapshot["best_state"].items()}
        manager.save(self.model, self.optimizer, metadata, extra_arrays=extra)

    def fit(
        self,
        train: np.ndarray,
        shuffle: bool = True,
        verbose: bool = False,
        validation: np.ndarray | None = None,
        checkpoint_dir: str | None = None,
        resume: bool | None = None,
    ) -> TrainingLog:
        """Train on a ``(time, features)`` series.

        Windows shorter than ``window_size`` at the tail are dropped, as in
        the reference protocol.  When ``config.select_best_epoch`` is set
        and a validation split is given, the weights revert at the end to
        the epoch with the best synthetic-probe ROC-AUC (see
        :func:`build_synthetic_probe`).

        ``checkpoint_dir``/``resume`` override the config fields of the
        same names; see the module docstring for the fault-tolerance
        contract.
        """
        config = self.config
        checkpoint_dir = checkpoint_dir if checkpoint_dir is not None else config.checkpoint_dir
        resume = resume if resume is not None else config.resume
        windows = non_overlapping_windows(train, config.window_size)
        if windows.shape[0] == 0:
            raise ValueError(
                f"training series of length {train.shape[0]} is shorter than "
                f"window_size={config.window_size}"
            )
        rng = np.random.default_rng(config.seed)

        if config.preflight:
            # Cheap shape/dtype/grad-flow trace of model.loss before any
            # training; raises ShapeCheckError naming the culpable op.
            # Internal RNG state is restored, so the training trajectory is
            # identical with or without the pre-flight.
            preflight_model(self.model)

        probe = None
        if config.select_best_epoch and validation is not None:
            probe = build_synthetic_probe(validation, config.window_size,
                                          np.random.default_rng(config.seed + 1))
        best_auc = -np.inf
        best_state = None

        guard = DivergenceGuard(
            explosion_factor=config.loss_explosion_factor,
            check_gradients=config.check_gradients,
        )
        manager = CheckpointManager(checkpoint_dir) if checkpoint_dir else None

        epoch = 0
        best_epoch_loss = np.inf
        epochs_without_improvement = 0

        if resume and manager is not None and manager.exists():
            metadata, extra = manager.load(self.model, self.optimizer)
            manager.verify_config(metadata, config, _RESUMABLE_FIELDS)
            rng.bit_generator.state = metadata["rng_state"]
            epoch = int(metadata["epoch"])
            best_auc = metadata.get("best_probe_auc")
            best_auc = -np.inf if best_auc is None else float(best_auc)
            loaded_best = metadata.get("best_epoch_loss")
            best_epoch_loss = np.inf if loaded_best is None else float(loaded_best)
            epochs_without_improvement = int(metadata.get("epochs_without_improvement", 0))
            guard.best_epoch_loss = metadata.get("guard_best_epoch_loss")
            best_state = {
                name[len("best."):]: array
                for name, array in extra.items()
                if name.startswith("best.")
            } or None
            self.log.resumed = True
            if verbose:
                print(f"resumed from {manager.path} at epoch {epoch}")

        # The rollback target: always valid, even before any checkpoint
        # is written (a divergence in the very first epoch restores the
        # initial weights).
        last_good = self._snapshot(epoch, rng, best_auc, best_state,
                                   best_epoch_loss, epochs_without_improvement, guard)
        retries = 0

        self.model.train()
        while epoch < config.epochs:
            order = rng.permutation(windows.shape[0]) if shuffle else np.arange(windows.shape[0])
            epoch_losses = []
            report = None
            for start in range(0, len(order), config.batch_size):
                batch = windows[order[start : start + config.batch_size]]
                try:
                    sanitizer = detect_anomaly() if config.detect_anomaly else nullcontext()
                    with sanitizer:
                        # begin() dispatches to the compiled tape when one
                        # matches this batch; under detect_anomaly the
                        # active hook forces the interpreted path so op
                        # attribution stays exact.
                        handle = self.train_step.begin(batch)
                        loss_value = handle.loss_value
                        metrics = handle.metrics
                        # The adversarial objective's value is 0 by construction
                        # (min minus max of the same quantity), so log the
                        # minimisation component — the meaningful convergence trace.
                        tracked = metrics.get("minimise", loss_value)
                        report = guard.check_batch_loss(loss_value) or guard.check_batch_loss(tracked)
                        if report is None:
                            handle.backward()
                            report = guard.check_batch_gradients(self.optimizer.parameters)
                except AnomalyError as anomaly:
                    # The sanitizer pinpointed the op that produced the first
                    # NaN/Inf; roll back through the standard divergence path
                    # with the culpable op in the report.
                    report = guard.report_anomaly(anomaly)
                if report is not None:
                    break
                handle.apply_update()
                epoch_losses.append(tracked)
                self.log.losses.append(tracked)
                self.log.metrics.append(metrics)
            if report is None:
                epoch_loss = float(np.mean(epoch_losses))
                report = guard.check_epoch_loss(epoch_loss)

            if report is not None:
                self.log.rollbacks.append((epoch, report.reason))
                retries += 1
                if retries > config.max_divergence_retries:
                    raise TrainingDivergedError(
                        f"training diverged at epoch {epoch + 1} ({report}) and "
                        f"exhausted {config.max_divergence_retries} rollback "
                        f"retries; last learning rate {self.optimizer.lr:g}"
                    )
                self._restore(last_good, rng, guard)
                self.optimizer.lr *= config.lr_backoff
                epoch = last_good["epoch"]
                best_auc = last_good["best_auc"]
                best_state = last_good["best_state"]
                best_epoch_loss = last_good["best_epoch_loss"]
                epochs_without_improvement = last_good["epochs_without_improvement"]
                if verbose:
                    print(f"divergence at epoch {epoch + 1} ({report}); rolled back, "
                          f"lr -> {self.optimizer.lr:g} "
                          f"(retry {retries}/{config.max_divergence_retries})")
                continue

            if verbose:
                print(f"epoch {epoch + 1}/{config.epochs}: mean loss {epoch_loss:.6f}")
            if probe is not None:
                self.model.eval()
                scores = self.model.score_windows(probe[0]).reshape(-1)
                auc = roc_auc(scores, probe[1].reshape(-1))
                self.model.train()
                if verbose:
                    print(f"  probe AUC {auc:.4f}")
                if auc > best_auc:
                    best_auc = auc
                    best_state = self.model.state_dict()
            stop_early = False
            if config.early_stop_patience is not None:
                if epoch_loss < best_epoch_loss:
                    best_epoch_loss = epoch_loss
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if epochs_without_improvement >= config.early_stop_patience:
                        if verbose:
                            print(f"early stop after epoch {epoch + 1}")
                        stop_early = True
            epoch += 1
            last_good = self._snapshot(epoch, rng, best_auc, best_state,
                                       best_epoch_loss, epochs_without_improvement, guard)
            if manager is not None and (
                epoch % config.checkpoint_every == 0
                or epoch == config.epochs
                or stop_early
            ):
                self._write_checkpoint(manager, last_good)
            if stop_early:
                break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return self.log
