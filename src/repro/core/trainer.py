"""Training loop for TFMAE.

Implements the paper's schedule (Section V-A.4): Adam at learning rate
1e-4, batch size 64, one epoch over non-overlapping windows of length 100.
The loop is model-agnostic enough that the Table IV/V ablation variants
train through the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.windows import non_overlapping_windows
from ..metrics.ranking import roc_auc
from ..nn.optim import Adam
from .config import TFMAEConfig
from .model import TFMAEModel

__all__ = ["TrainingLog", "TFMAETrainer", "build_synthetic_probe"]


def build_synthetic_probe(
    validation: np.ndarray,
    window_size: int,
    rng: np.random.Generator,
    spike_fraction: float = 0.05,
    magnitude: float = 6.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Corrupt validation windows with synthetic anomalies at known spots.

    Returns ``(windows, labels)`` where labels mark the injected
    positions.  The probe mixes the two anomaly families of the paper's
    taxonomy — 6-sigma point spikes AND pattern segments (flatline or
    drift over ~1/5 of the window) — because contrastive view collapse
    degrades pattern detection first while blatant spikes keep ranking
    high; a spike-only probe misses the failure.  Used by snapshot
    selection without touching any real test labels.
    """
    windows = non_overlapping_windows(validation, window_size).copy()
    if windows.shape[0] == 0:
        raise ValueError("validation split shorter than one window")
    batch, time, features = windows.shape
    labels = np.zeros((batch, time), dtype=np.int64)
    std = validation.std(axis=0) + 1e-8
    count = max(1, int(spike_fraction * time))
    n_channels = max(1, features // 3)
    segment_len = max(4, time // 5)
    for b in range(batch):
        # Point anomalies: +/- magnitude*sigma spikes.
        positions = rng.choice(time, size=count, replace=False)
        channels = rng.choice(features, size=n_channels, replace=False)
        signs = rng.choice([-1.0, 1.0], size=(count, n_channels))
        windows[b][np.ix_(positions, channels)] += magnitude * signs * std[channels]
        labels[b, positions] = 1
        # Pattern anomaly: flatline or linear drift on a channel subset.
        start = int(rng.integers(0, time - segment_len))
        stop = start + segment_len
        seg_channels = rng.choice(features, size=n_channels, replace=False)
        if rng.random() < 0.5:
            windows[b][start:stop, seg_channels] = windows[b][start:stop, seg_channels].mean(axis=0)
        else:
            drift = np.linspace(0.0, 3.0, segment_len)[:, None] * std[seg_channels]
            windows[b][start:stop, seg_channels] += drift * rng.choice([-1.0, 1.0])
        labels[b, start:stop] = 1
    return windows, labels


@dataclass
class TrainingLog:
    """Per-batch loss traces collected during training."""

    losses: list[float] = field(default_factory=list)
    metrics: list[dict[str, float]] = field(default_factory=list)

    def summary(self) -> dict[str, float]:
        if not self.losses:
            return {"batches": 0}
        return {
            "batches": len(self.losses),
            "first_loss": self.losses[0],
            "last_loss": self.losses[-1],
            "mean_loss": float(np.mean(self.losses)),
        }


class TFMAETrainer:
    """Fits a :class:`~repro.core.model.TFMAEModel` on a training series."""

    def __init__(self, model: TFMAEModel, config: TFMAEConfig | None = None):
        self.model = model
        self.config = config if config is not None else model.config
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            grad_clip=self.config.grad_clip,
        )
        self.log = TrainingLog()

    def fit(
        self,
        train: np.ndarray,
        shuffle: bool = True,
        verbose: bool = False,
        validation: np.ndarray | None = None,
    ) -> TrainingLog:
        """Train on a ``(time, features)`` series.

        Windows shorter than ``window_size`` at the tail are dropped, as in
        the reference protocol.  When ``config.select_best_epoch`` is set
        and a validation split is given, the weights revert at the end to
        the epoch with the best synthetic-probe ROC-AUC (see
        :func:`build_synthetic_probe`).
        """
        config = self.config
        windows = non_overlapping_windows(train, config.window_size)
        if windows.shape[0] == 0:
            raise ValueError(
                f"training series of length {train.shape[0]} is shorter than "
                f"window_size={config.window_size}"
            )
        rng = np.random.default_rng(config.seed)

        probe = None
        if config.select_best_epoch and validation is not None:
            probe = build_synthetic_probe(validation, config.window_size,
                                          np.random.default_rng(config.seed + 1))
        best_auc = -np.inf
        best_state = None

        self.model.train()
        best_epoch_loss = np.inf
        epochs_without_improvement = 0
        for epoch in range(config.epochs):
            order = rng.permutation(windows.shape[0]) if shuffle else np.arange(windows.shape[0])
            epoch_losses = []
            for start in range(0, len(order), config.batch_size):
                batch = windows[order[start : start + config.batch_size]]
                loss, metrics = self.model.loss(batch)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                # The adversarial objective's value is 0 by construction
                # (min minus max of the same quantity), so log the
                # minimisation component — the meaningful convergence trace.
                tracked = metrics.get("minimise", loss.item())
                epoch_losses.append(tracked)
                self.log.losses.append(tracked)
                self.log.metrics.append(metrics)
            epoch_loss = float(np.mean(epoch_losses))
            if verbose:
                print(f"epoch {epoch + 1}/{config.epochs}: mean loss {epoch_loss:.6f}")
            if probe is not None:
                self.model.eval()
                scores = self.model.score_windows(probe[0]).reshape(-1)
                auc = roc_auc(scores, probe[1].reshape(-1))
                self.model.train()
                if verbose:
                    print(f"  probe AUC {auc:.4f}")
                if auc > best_auc:
                    best_auc = auc
                    best_state = self.model.state_dict()
            if config.early_stop_patience is not None:
                if epoch_loss < best_epoch_loss:
                    best_epoch_loss = epoch_loss
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if epochs_without_improvement >= config.early_stop_patience:
                        if verbose:
                            print(f"early stop after epoch {epoch + 1}")
                        break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return self.log
