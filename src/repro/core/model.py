"""The TFMAE model: dual temporal/frequency masked autoencoders (Fig. 2/5).

Two Transformer-based autoencoders produce representations of the same
window from complementary views:

* the **temporal branch** masks high coefficient-of-variation observations
  (likely observation anomalies), encodes the unmasked tokens, then runs a
  decoder over the full sequence with learnable mask tokens at the masked
  positions (paper Fig. 5 right);
* the **frequency branch** masks low-amplitude frequency bins (likely
  pattern anomalies), substitutes a learnable complex token, inverts to
  the time domain, and runs a decoder-only Transformer (Fig. 5 left).

The discrepancy (symmetric KL) between the two final representations is
the anomaly criterion.  When an ablation removes one branch entirely the
model degrades to a reconstruction autoencoder on the remaining branch,
which keeps the "w/o Fre"/"w/o Tem" rows of Table IV trainable.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..masking import FrequencyMasker, TemporalMasker
from ..nn import Module, Parameter, Tensor
from ..nn import functional as F
from ..nn import fused, init, jit
from ..nn.dtype import resolve_dtype
from ..nn.tensor import _as_array
from ..nn.transformer import TransformerStack, sinusoidal_positional_encoding
from .config import TFMAEConfig

__all__ = ["TemporalBranch", "FrequencyBranch", "TFMAEModel"]

#: Negative-cache marker: this specialization key hit a trace-unsupported
#: op; keep using the interpreted path without re-tracing every call.
_UNSUPPORTED = object()


class TemporalBranch(Module):
    """Temporal masking-based autoencoder (paper Fig. 5, right).

    Produces ``P^(L)`` of shape ``(batch, T, D)`` from raw windows.
    """

    def __init__(self, n_features: int, config: TFMAEConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.masker = TemporalMasker(
            ratio=config.temporal_mask_ratio,
            window=config.cov_window,
            strategy=config.temporal_mask_strategy,
            use_fft=config.use_fft_acceleration,
            rng=rng,
        )
        self.projection = nn.Linear(n_features, config.d_model, rng)  # W^(T), b^(T)
        self.mask_token = Parameter(init.normal((config.d_model,), rng), name="m_T")
        if config.use_temporal_encoder:
            self.encoder = TransformerStack(
                config.d_model, config.num_layers, config.num_heads, rng,
                ffn_dim=config.ffn_dim, dropout=config.dropout,
            )
        else:
            self.encoder = None
        if config.use_temporal_decoder:
            self.decoder = TransformerStack(
                config.d_model, config.num_layers, config.num_heads, rng,
                ffn_dim=config.ffn_dim, dropout=config.dropout,
            )
        else:
            self.decoder = None
        self._pe_cache: dict[tuple, np.ndarray] = {}

    def _positional_encoding(self, length: int) -> np.ndarray:
        """Positional encoding pre-cast to the active compute dtype.

        The table itself is deterministic float64 per length; caching the
        cast per (length, dtype) saves a fresh ``astype`` copy on every
        float32 prelude call.  Consumers only read the slot array, so one
        shared array across calls is safe.
        """
        key = (length, resolve_dtype())
        pe = self._pe_cache.get(key)
        if pe is None:
            pe = _as_array(sinusoidal_positional_encoding(length, self.config.d_model))
            self._pe_cache[key] = pe
        return pe

    def forward(self, windows: np.ndarray) -> Tensor:
        slots = self.prelude(windows)
        slots["windows"] = _as_array(windows)
        return self.graph(slots)

    def prelude(self, windows: np.ndarray) -> dict:
        """Data-dependent stage: masking, PE lookups, index construction.

        Runs interpreted on *every* call (it consumes the masker's RNG
        and produces data-dependent index arrays); its outputs are the
        named input slots the pure-tensor :meth:`graph` stage reads, so
        the jit tracer can keep them dynamic across tape replays.  Slot
        arrays are pre-cast to the active compute dtype so wrapping them
        in a ``Tensor`` inside the graph stage is identity-preserving.
        """
        batch, time, _ = windows.shape
        result = self.masker(windows)
        pe = self._positional_encoding(time)
        num_masked = result.num_masked
        slots = {
            "t_pe": pe,
            "t_mask": result.mask[:, :, None],
        }
        if self.encoder is not None and 0 < num_masked < time:
            # The masker just built (and cached) this exact index array.
            slots["t_rows"] = self.masker._row_cache[batch]
            slots["t_unmasked"] = result.unmasked_indices
            # Fancy indexing the pre-cast table copies exactly the rows
            # needed; cast-then-index is bitwise index-then-cast.
            slots["t_pe_unmasked"] = pe[result.unmasked_indices]
        else:
            # The branch structure is static per (shape, config): the
            # masked count is a data-independent function of the window
            # length, so this flag never flips between calls sharing a
            # tape key.  (Non-array slot values are ignored by the
            # tracer's identity map.)
            slots["t_encode_full"] = self.encoder is not None and num_masked == 0
        return slots

    def graph(self, slots: dict) -> Tensor:
        """Pure-tensor stage over named input slots (jit-traceable)."""
        projected = self.projection(Tensor(slots["windows"]))  # (B, T, D), Eq. 3
        pe = slots["t_pe"]

        if "t_rows" in slots:
            # Encode only the unmasked tokens, at their original positions.
            index = (slots["t_rows"], slots["t_unmasked"])
            unmasked = projected[index]
            unmasked = unmasked + Tensor(slots["t_pe_unmasked"])
            encoded = self.encoder(unmasked)
            batch, time = slots["t_mask"].shape[:2]
            unmasked_full = Tensor.scatter(
                encoded, index, (batch, time, self.config.d_model)
            )
        else:
            # No masking (or no encoder): the "unmasked representation" is
            # the position-encoded projection, optionally encoded whole.
            full = projected + Tensor(pe)
            unmasked_full = self.encoder(full) if slots["t_encode_full"] else full

        # Insert mask tokens (with positional encoding) at masked slots.
        masked_value = self.mask_token + Tensor(pe)  # (T, D), broadcasts over batch
        decoder_input = Tensor.where(slots["t_mask"], masked_value, unmasked_full)

        if self.decoder is not None:
            return self.decoder(decoder_input)
        return decoder_input


class FrequencyBranch(Module):
    """Frequency masking-based decoder-only autoencoder (paper Fig. 5, left).

    Produces ``F^(L)`` of shape ``(batch, T, D)`` from raw windows.
    """

    def __init__(self, n_features: int, config: TFMAEConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.masker = FrequencyMasker(
            ratio=config.frequency_mask_ratio,
            strategy=config.frequency_mask_strategy,
            rng=rng,
        )
        # m^(F) in C^N, stored as separate real/imaginary parameters.
        self.mask_token_re = Parameter(init.normal((n_features,), rng), name="m_F_re")
        self.mask_token_im = Parameter(init.normal((n_features,), rng), name="m_F_im")
        self.projection = nn.Linear(n_features, config.d_model, rng)  # W^(F), b^(F)
        if config.use_frequency_decoder:
            self.decoder = TransformerStack(
                config.d_model, config.num_layers, config.num_heads, rng,
                ffn_dim=config.ffn_dim, dropout=config.dropout,
            )
        else:
            self.decoder = None
        self._pe_cache: dict[tuple, np.ndarray] = {}

    def _positional_encoding(self, length: int) -> np.ndarray:
        """Positional encoding pre-cast to the active compute dtype.

        The table itself is deterministic float64 per length; caching the
        cast per (length, dtype) saves a fresh ``astype`` copy on every
        float32 prelude call.  Consumers only read the slot array, so one
        shared array across calls is safe.
        """
        key = (length, resolve_dtype())
        pe = self._pe_cache.get(key)
        if pe is None:
            pe = _as_array(sinusoidal_positional_encoding(length, self.config.d_model))
            self._pe_cache[key] = pe
        return pe

    def forward(self, windows: np.ndarray) -> Tensor:
        return self.graph(self.prelude(windows))

    def prelude(self, windows: np.ndarray) -> dict:
        """Data-dependent stage: frequency masking and basis construction.

        Same contract as :meth:`TemporalBranch.prelude` — runs every
        call, emits compute-dtype slot arrays for the traceable
        :meth:`graph` stage.
        """
        _, time, _ = windows.shape
        result = self.masker(windows)
        return {
            "f_fixed": _as_array(result.fixed),
            "f_cos": _as_array(result.cos_basis),
            "f_sin": _as_array(result.sin_basis),
            "f_pe": self._positional_encoding(time),
        }

    def graph(self, slots: dict) -> Tensor:
        """Pure-tensor stage over named input slots (jit-traceable)."""
        # Eq. 9-10: replaced spectrum inverted to the time domain, with the
        # learnable token entering through the linear basis decomposition.
        masked_series = (
            Tensor(slots["f_fixed"])
            + self.mask_token_re * Tensor(slots["f_cos"])
            - self.mask_token_im * Tensor(slots["f_sin"])
        )
        representation = self.projection(masked_series)
        representation = representation + Tensor(slots["f_pe"])  # Eq. 11
        if self.decoder is not None:
            return self.decoder(representation)
        return representation


class TFMAEModel(Module):
    """Full TFMAE: both branches plus the adversarial contrastive objective.

    Parameters
    ----------
    n_features:
        Number of series features ``N``.
    config:
        Hyper-parameters and ablation switches.
    """

    def __init__(self, n_features: int, config: TFMAEConfig | None = None):
        super().__init__()
        self.config = config if config is not None else TFMAEConfig()
        self.n_features = n_features
        self.compute_dtype = np.dtype(self.config.compute_dtype)
        rng = np.random.default_rng(self.config.seed)

        if self.config.use_temporal_branch:
            self.temporal = TemporalBranch(n_features, self.config, rng)
        else:
            self.temporal = None
        if self.config.use_frequency_branch:
            self.frequency = FrequencyBranch(n_features, self.config, rng)
        else:
            self.frequency = None

        # Compiled scoring tapes keyed (window shape, compute dtype,
        # fused policy); _UNSUPPORTED negative-caches untraceable keys.
        # Capacity comes from config.jit_cache_size (REPRO_JIT_CACHE env
        # overrides the default); evictions are counted for the benches.
        self._tapes: dict = {}
        self.jit_evictions = 0

        self._dual = self.temporal is not None and self.frequency is not None
        if not self._dual:
            # Single-branch ablations fall back to reconstruction; they
            # need an output head mapping D back to N.
            self.reconstruction_head = nn.Linear(self.config.d_model, n_features, rng)

        # Parameters are initialised in float64 (deterministic across
        # dtype policies, same seeds => same float64 weights) and cast
        # once when the model opts into reduced precision.
        if self.compute_dtype != np.float64:
            self.to_dtype(self.compute_dtype)

    # ------------------------------------------------------------------
    # forward passes
    # ------------------------------------------------------------------
    def _validate_windows(self, windows: np.ndarray) -> None:
        if windows.ndim != 3:
            raise ValueError(f"expected (batch, time, features), got shape {windows.shape}")
        if windows.shape[-1] != self.n_features:
            raise ValueError(
                f"model built for {self.n_features} features, got {windows.shape[-1]}"
            )

    def forward(self, windows: np.ndarray) -> tuple[Tensor | None, Tensor | None]:
        """Return ``(P^(L), F^(L))``; a missing branch yields ``None``."""
        self._validate_windows(windows)
        # Every tensor built inside the branches follows the model's
        # compute-dtype policy (thread-local, so a float32 model serving
        # traffic never disturbs float64 work elsewhere).
        with nn.default_dtype(self.compute_dtype):
            p = self.temporal(windows) if self.temporal is not None else None
            f = self.frequency(windows) if self.frequency is not None else None
        return p, f

    # ------------------------------------------------------------------
    # objective (Eq. 14-15)
    # ------------------------------------------------------------------
    def loss(self, windows: np.ndarray) -> tuple[Tensor, dict[str, float]]:
        """Training loss for one batch plus logging metrics.

        Dual-branch mode uses the adversarial contrastive objective; the
        single-branch ablations use reconstruction MSE.
        """
        with nn.default_dtype(self.compute_dtype):
            slots = self._loss_prelude(windows)
            loss, metric_tensors = self._loss_graph(slots)
            metrics = {name: value.item() for name, value in metric_tensors.items()}
        return loss, metrics

    # -- trace-compiled training (see repro.nn.jit_train) ---------------
    def _loss_prelude(self, windows: np.ndarray) -> dict:
        """Interpreted per-call stage of the training loss.

        Same contract as :meth:`_score_prelude`: consumes the maskers'
        RNG and produces the named input slots the pure-tensor
        :meth:`_loss_graph` stage reads, so the train-step tape can keep
        them dynamic across replays.
        """
        self._validate_windows(windows)
        slots = {"windows": _as_array(windows)}
        if self.temporal is not None:
            slots.update(self.temporal.prelude(windows))
        if self.frequency is not None:
            slots.update(self.frequency.prelude(windows))
        return slots

    def _loss_graph(self, slots: dict) -> tuple[Tensor, dict[str, Tensor]]:
        """Pure-tensor loss graph over prelude slots (jit-traceable).

        Returns the loss tensor plus the *tensor-valued* logging metrics;
        :meth:`loss` converts them to floats, and the train-step tape
        returns their compiled buffers so the trainer's loss trace is
        identical on both paths.
        """
        p = self.temporal.graph(slots) if self.temporal is not None else None
        f = self.frequency.graph(slots) if self.frequency is not None else None
        if self._dual:
            return self._contrastive_loss(p, f)
        representation = p if p is not None else f
        reconstruction = self.reconstruction_head(representation)
        loss = F.mse_loss(reconstruction, Tensor(slots["windows"]))
        return loss, {"reconstruction_mse": loss}

    def _contrastive_loss(self, p: Tensor, f: Tensor) -> tuple[Tensor, dict[str, Tensor]]:
        config = self.config
        if not config.adversarial:
            # Plain contrastive objective (Eq. 14): both branches minimise.
            loss = F.symmetric_kl(p, f)
            return loss, {"contrastive": loss}

        if config.reversed_adversarial:
            # "w/ L_radv": swap the roles of P and F in Eq. 15.
            anchor, mover = f, p
        else:
            # Eq. 15: the frequency branch minimises the discrepancy
            # towards a frozen temporal view; the temporal branch maximises
            # it against a frozen frequency view.
            anchor, mover = p, f
        minimise = F.symmetric_kl(anchor.detach(), mover)
        maximise = F.symmetric_kl(anchor, mover.detach())
        loss = minimise - maximise
        return loss, {"minimise": minimise, "maximise": maximise}

    # ------------------------------------------------------------------
    # anomaly score (Eq. 16)
    # ------------------------------------------------------------------
    def score_windows(self, windows: np.ndarray) -> np.ndarray:
        """Per-observation anomaly score for a batch of windows.

        Returns an array of shape ``(batch, time)``.  Dual-branch mode uses
        the symmetric KL discrepancy (Eq. 16); single-branch ablations use
        the per-point reconstruction error.

        When tape-replay scoring is enabled (:func:`repro.nn.jit.use_jit`,
        the default) the tensor-graph stage runs from a compiled tape
        after the first call per (shape, dtype, fused-policy) key; replay
        output is bitwise-identical to the interpreted graph.
        """
        if jit.jit_enabled():
            return self._jit_score(windows)
        self._validate_windows(windows)
        with nn.no_grad(), nn.default_dtype(self.compute_dtype):
            score = self._score_graph(self._score_prelude(windows))
            return self._score_post(score.data, interpreted=True)

    # -- trace-compiled scoring (see repro.nn.jit) ----------------------
    def _score_prelude(self, windows: np.ndarray) -> dict:
        """Interpreted per-call stage: maskers, PE, index slots."""
        slots = {"windows": _as_array(windows)}
        if self.temporal is not None:
            slots.update(self.temporal.prelude(windows))
        if self.frequency is not None:
            slots.update(self.frequency.prelude(windows))
        return slots

    def _score_graph(self, slots: dict) -> Tensor:
        """Pure-tensor scoring graph over prelude slots (jit-traceable)."""
        p = self.temporal.graph(slots) if self.temporal is not None else None
        f = self.frequency.graph(slots) if self.frequency is not None else None
        if self._dual:
            return F.symmetric_kl(p, f, reduce=False)
        representation = p if p is not None else f
        reconstruction = self.reconstruction_head(representation)
        return (reconstruction - Tensor(slots["windows"])) ** 2

    def _score_post(self, data: np.ndarray, interpreted: bool = False) -> np.ndarray:
        """Final numpy stage: float64 score contract, owned output.

        Scores are float64 by contract regardless of compute_dtype
        (thresholds/metrics compare across policies).  Tape replay hands
        back a live frame buffer, so that path always copies.
        """
        if self._dual:
            if interpreted:
                return data.astype(np.float64, copy=False)  # repro: noqa[F64001]
            return np.array(data, dtype=np.float64)  # repro: noqa[F64001]
        return data.mean(axis=-1).astype(np.float64, copy=False)  # repro: noqa[F64001]

    def _jit_score(self, windows: np.ndarray) -> np.ndarray:
        self._validate_windows(windows)
        key = (windows.shape, self.compute_dtype, fused.fused_enabled())
        with nn.no_grad(), nn.default_dtype(self.compute_dtype):
            slots = self._score_prelude(windows)
            tape = self._tapes.get(key)
            if tape is _UNSUPPORTED:
                score = self._score_graph(slots)
                return self._score_post(score.data, interpreted=True)
            if tape is not None:
                if tape.guards_ok():
                    return self._score_post(tape.replay(slots))
                # A parameter array was rebound (checkpoint load, publish,
                # dtype cast): every cached tape refers to stale arrays.
                self._tapes.clear()
            out, tape = jit.trace(
                lambda: self._score_graph(slots), slots, self.parameters()
            )
            self._tapes[key] = tape if tape is not None else _UNSUPPORTED
            while len(self._tapes) > self.config.jit_cache_size:
                self._tapes.pop(next(iter(self._tapes)))
                self.jit_evictions += 1
            return self._score_post(out.data, interpreted=True)
