"""The TFMAE model: dual temporal/frequency masked autoencoders (Fig. 2/5).

Two Transformer-based autoencoders produce representations of the same
window from complementary views:

* the **temporal branch** masks high coefficient-of-variation observations
  (likely observation anomalies), encodes the unmasked tokens, then runs a
  decoder over the full sequence with learnable mask tokens at the masked
  positions (paper Fig. 5 right);
* the **frequency branch** masks low-amplitude frequency bins (likely
  pattern anomalies), substitutes a learnable complex token, inverts to
  the time domain, and runs a decoder-only Transformer (Fig. 5 left).

The discrepancy (symmetric KL) between the two final representations is
the anomaly criterion.  When an ablation removes one branch entirely the
model degrades to a reconstruction autoencoder on the remaining branch,
which keeps the "w/o Fre"/"w/o Tem" rows of Table IV trainable.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..masking import FrequencyMasker, TemporalMasker
from ..nn import Module, Parameter, Tensor
from ..nn import functional as F
from ..nn import init
from ..nn.transformer import TransformerStack, sinusoidal_positional_encoding
from .config import TFMAEConfig

__all__ = ["TemporalBranch", "FrequencyBranch", "TFMAEModel"]


class TemporalBranch(Module):
    """Temporal masking-based autoencoder (paper Fig. 5, right).

    Produces ``P^(L)`` of shape ``(batch, T, D)`` from raw windows.
    """

    def __init__(self, n_features: int, config: TFMAEConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.masker = TemporalMasker(
            ratio=config.temporal_mask_ratio,
            window=config.cov_window,
            strategy=config.temporal_mask_strategy,
            use_fft=config.use_fft_acceleration,
            rng=rng,
        )
        self.projection = nn.Linear(n_features, config.d_model, rng)  # W^(T), b^(T)
        self.mask_token = Parameter(init.normal((config.d_model,), rng), name="m_T")
        if config.use_temporal_encoder:
            self.encoder = TransformerStack(
                config.d_model, config.num_layers, config.num_heads, rng,
                ffn_dim=config.ffn_dim, dropout=config.dropout,
            )
        else:
            self.encoder = None
        if config.use_temporal_decoder:
            self.decoder = TransformerStack(
                config.d_model, config.num_layers, config.num_heads, rng,
                ffn_dim=config.ffn_dim, dropout=config.dropout,
            )
        else:
            self.decoder = None
        self._pe_cache: dict[int, np.ndarray] = {}

    def _positional_encoding(self, length: int) -> np.ndarray:
        if length not in self._pe_cache:
            self._pe_cache[length] = sinusoidal_positional_encoding(length, self.config.d_model)
        return self._pe_cache[length]

    def forward(self, windows: np.ndarray) -> Tensor:
        batch, time, _ = windows.shape
        result = self.masker(windows)
        pe = self._positional_encoding(time)
        projected = self.projection(Tensor(windows))  # (B, T, D), Eq. 3 for all t

        num_masked = result.num_masked
        rows = np.arange(batch)[:, None]

        if self.encoder is not None and 0 < num_masked < time:
            # Encode only the unmasked tokens, at their original positions.
            unmasked = projected[rows, result.unmasked_indices]
            unmasked = unmasked + Tensor(pe[result.unmasked_indices])
            encoded = self.encoder(unmasked)
            unmasked_full = Tensor.scatter(
                encoded, (rows, result.unmasked_indices), (batch, time, self.config.d_model)
            )
        else:
            # No masking (or no encoder): the "unmasked representation" is
            # the position-encoded projection, optionally encoded whole.
            full = projected + Tensor(pe)
            unmasked_full = self.encoder(full) if (self.encoder is not None and num_masked == 0) else full

        # Insert mask tokens (with positional encoding) at masked slots.
        masked_value = self.mask_token + Tensor(pe)  # (T, D), broadcasts over batch
        decoder_input = Tensor.where(result.mask[:, :, None], masked_value, unmasked_full)

        if self.decoder is not None:
            return self.decoder(decoder_input)
        return decoder_input


class FrequencyBranch(Module):
    """Frequency masking-based decoder-only autoencoder (paper Fig. 5, left).

    Produces ``F^(L)`` of shape ``(batch, T, D)`` from raw windows.
    """

    def __init__(self, n_features: int, config: TFMAEConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.masker = FrequencyMasker(
            ratio=config.frequency_mask_ratio,
            strategy=config.frequency_mask_strategy,
            rng=rng,
        )
        # m^(F) in C^N, stored as separate real/imaginary parameters.
        self.mask_token_re = Parameter(init.normal((n_features,), rng), name="m_F_re")
        self.mask_token_im = Parameter(init.normal((n_features,), rng), name="m_F_im")
        self.projection = nn.Linear(n_features, config.d_model, rng)  # W^(F), b^(F)
        if config.use_frequency_decoder:
            self.decoder = TransformerStack(
                config.d_model, config.num_layers, config.num_heads, rng,
                ffn_dim=config.ffn_dim, dropout=config.dropout,
            )
        else:
            self.decoder = None
        self._pe_cache: dict[int, np.ndarray] = {}

    def _positional_encoding(self, length: int) -> np.ndarray:
        if length not in self._pe_cache:
            self._pe_cache[length] = sinusoidal_positional_encoding(length, self.config.d_model)
        return self._pe_cache[length]

    def forward(self, windows: np.ndarray) -> Tensor:
        _, time, _ = windows.shape
        result = self.masker(windows)
        # Eq. 9-10: replaced spectrum inverted to the time domain, with the
        # learnable token entering through the linear basis decomposition.
        masked_series = (
            Tensor(result.fixed)
            + self.mask_token_re * Tensor(result.cos_basis)
            - self.mask_token_im * Tensor(result.sin_basis)
        )
        representation = self.projection(masked_series)
        representation = representation + Tensor(self._positional_encoding(time))  # Eq. 11
        if self.decoder is not None:
            return self.decoder(representation)
        return representation


class TFMAEModel(Module):
    """Full TFMAE: both branches plus the adversarial contrastive objective.

    Parameters
    ----------
    n_features:
        Number of series features ``N``.
    config:
        Hyper-parameters and ablation switches.
    """

    def __init__(self, n_features: int, config: TFMAEConfig | None = None):
        super().__init__()
        self.config = config if config is not None else TFMAEConfig()
        self.n_features = n_features
        self.compute_dtype = np.dtype(self.config.compute_dtype)
        rng = np.random.default_rng(self.config.seed)

        if self.config.use_temporal_branch:
            self.temporal = TemporalBranch(n_features, self.config, rng)
        else:
            self.temporal = None
        if self.config.use_frequency_branch:
            self.frequency = FrequencyBranch(n_features, self.config, rng)
        else:
            self.frequency = None

        self._dual = self.temporal is not None and self.frequency is not None
        if not self._dual:
            # Single-branch ablations fall back to reconstruction; they
            # need an output head mapping D back to N.
            self.reconstruction_head = nn.Linear(self.config.d_model, n_features, rng)

        # Parameters are initialised in float64 (deterministic across
        # dtype policies, same seeds => same float64 weights) and cast
        # once when the model opts into reduced precision.
        if self.compute_dtype != np.float64:
            self.to_dtype(self.compute_dtype)

    # ------------------------------------------------------------------
    # forward passes
    # ------------------------------------------------------------------
    def forward(self, windows: np.ndarray) -> tuple[Tensor | None, Tensor | None]:
        """Return ``(P^(L), F^(L))``; a missing branch yields ``None``."""
        if windows.ndim != 3:
            raise ValueError(f"expected (batch, time, features), got shape {windows.shape}")
        if windows.shape[-1] != self.n_features:
            raise ValueError(
                f"model built for {self.n_features} features, got {windows.shape[-1]}"
            )
        # Every tensor built inside the branches follows the model's
        # compute-dtype policy (thread-local, so a float32 model serving
        # traffic never disturbs float64 work elsewhere).
        with nn.default_dtype(self.compute_dtype):
            p = self.temporal(windows) if self.temporal is not None else None
            f = self.frequency(windows) if self.frequency is not None else None
        return p, f

    # ------------------------------------------------------------------
    # objective (Eq. 14-15)
    # ------------------------------------------------------------------
    def loss(self, windows: np.ndarray) -> tuple[Tensor, dict[str, float]]:
        """Training loss for one batch plus logging metrics.

        Dual-branch mode uses the adversarial contrastive objective; the
        single-branch ablations use reconstruction MSE.
        """
        p, f = self.forward(windows)
        with nn.default_dtype(self.compute_dtype):
            if self._dual:
                loss, metrics = self._contrastive_loss(p, f)
            else:
                representation = p if p is not None else f
                reconstruction = self.reconstruction_head(representation)
                loss = F.mse_loss(reconstruction, Tensor(windows))
                metrics = {"reconstruction_mse": loss.item()}
        return loss, metrics

    def _contrastive_loss(self, p: Tensor, f: Tensor) -> tuple[Tensor, dict[str, float]]:
        config = self.config
        if not config.adversarial:
            # Plain contrastive objective (Eq. 14): both branches minimise.
            loss = F.symmetric_kl(p, f)
            return loss, {"contrastive": loss.item()}

        if config.reversed_adversarial:
            # "w/ L_radv": swap the roles of P and F in Eq. 15.
            anchor, mover = f, p
        else:
            # Eq. 15: the frequency branch minimises the discrepancy
            # towards a frozen temporal view; the temporal branch maximises
            # it against a frozen frequency view.
            anchor, mover = p, f
        minimise = F.symmetric_kl(anchor.detach(), mover)
        maximise = F.symmetric_kl(anchor, mover.detach())
        loss = minimise - maximise
        return loss, {
            "minimise": minimise.item(),
            "maximise": maximise.item(),
        }

    # ------------------------------------------------------------------
    # anomaly score (Eq. 16)
    # ------------------------------------------------------------------
    def score_windows(self, windows: np.ndarray) -> np.ndarray:
        """Per-observation anomaly score for a batch of windows.

        Returns an array of shape ``(batch, time)``.  Dual-branch mode uses
        the symmetric KL discrepancy (Eq. 16); single-branch ablations use
        the per-point reconstruction error.
        """
        with nn.no_grad(), nn.default_dtype(self.compute_dtype):
            p, f = self.forward(windows)
            if self._dual:
                score = F.symmetric_kl(p, f, reduce=False)
                # Scores are float64 by contract regardless of compute_dtype
                # (thresholds/metrics compare across policies).
                return score.data.astype(np.float64, copy=False)  # repro: noqa[F64001]
            representation = p if p is not None else f
            reconstruction = self.reconstruction_head(representation)
            error = (reconstruction - Tensor(windows)) ** 2
            # Same float64 score contract as the dual-branch path above.
            return error.data.mean(axis=-1).astype(np.float64, copy=False)  # repro: noqa[F64001]
