"""Configuration for TFMAE, including the paper's per-dataset settings.

The defaults follow Section V-A.4 of the paper: Adam with learning rate
1e-4, one epoch, batch size 64, 3 Transformer layers, hidden dimension
128, sliding-window length 10 for the coefficient of variation, and input
windows of length 100 (the fair-comparison protocol of Table III).

Per-dataset masking ratios come from Figure 6 and the threshold ratios
``r`` from Section V-A.4.  The reproduction's synthetic dataset profiles
reuse the same names so the presets apply directly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from ..masking.frequency import FrequencyMaskStrategy
from ..masking.temporal import TemporalMaskStrategy

__all__ = ["TFMAEConfig", "PAPER_PRESETS", "preset_for"]


def _default_jit_cache() -> int:
    """Default tape-LRU capacity; ``REPRO_JIT_CACHE`` overrides it."""
    return int(os.environ.get("REPRO_JIT_CACHE", "8"))


@dataclass(frozen=True)
class TFMAEConfig:
    """Hyper-parameters and architectural switches for TFMAE.

    Architectural switches default to the full model; the ablation benches
    (Tables IV and V) flip them to realise each paper variant.
    """

    # --- data/protocol ---
    window_size: int = 100           # fixed input length (Table III protocol)
    anomaly_ratio: float = 0.9       # r%: share of data flagged as anomalous

    # --- architecture ---
    d_model: int = 128               # hidden feature dimension D
    num_layers: int = 3              # Transformer layers L
    num_heads: int = 8
    ffn_dim: int | None = None       # defaults to 4 * d_model
    dropout: float = 0.0

    # --- compute precision (see docs/performance.md) ---
    # "float64" is the full-precision reference path every equivalence
    # test and paper table uses; "float32" halves memory traffic and
    # roughly doubles BLAS throughput for production training/serving.
    # Scores are always returned as float64 regardless.
    compute_dtype: str = "float64"

    # --- trace-compiled execution (see docs/performance.md) ---
    # Train-step tape JIT: compile loss -> backward -> optimizer update
    # into one generated function per (batch shape, dtype, fused policy).
    # Bitwise-identical trajectory to the interpreted loop; falls back
    # softly on untraceable steps.  The process-wide
    # repro.nn.jit_train.set_train_jit toggle gates it as well.
    train_jit: bool = True
    # Most cached tapes per model (scoring) and per trainer (train step);
    # the REPRO_JIT_CACHE env var overrides the default of 8.  Evictions
    # are counted on the model/train-step objects for the benches.
    jit_cache_size: int = field(default_factory=_default_jit_cache)

    # --- masking ---
    temporal_mask_ratio: float = 55.0      # r^(T) percent
    frequency_mask_ratio: float = 40.0     # r^(F) percent
    cov_window: int = 10                   # W for the local statistic
    temporal_mask_strategy: TemporalMaskStrategy = "cov"
    frequency_mask_strategy: FrequencyMaskStrategy = "amplitude"
    use_fft_acceleration: bool = True      # False => "w/o FFT" ablation

    # --- training ---
    learning_rate: float = 1e-4
    epochs: int = 1
    batch_size: int = 64
    grad_clip: float | None = 5.0
    seed: int = 0
    # Stop when the epoch-mean alignment loss (the minimisation component
    # of Eq. 15) has worsened for this many consecutive epochs; None
    # disables.  Prolonged adversarial training can run away — the paper
    # sidesteps this by training a single epoch at full scale, but
    # multi-epoch schedules at smaller scales need the guard.
    early_stop_patience: int | None = None
    # --- fault tolerance (see repro.robustness and docs/robustness.md) ---
    # Directory for periodic atomic training checkpoints (model, optimizer,
    # RNG state, probe AUC); None disables checkpointing.
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1          # epochs between checkpoint writes
    # Resume from checkpoint_dir when a compatible checkpoint exists there;
    # starts fresh (and overwrites) otherwise.
    resume: bool = False
    # Divergence guard: on non-finite loss/gradients or epoch-loss
    # explosion, roll back to the last good state and retry the epoch with
    # the learning rate scaled by lr_backoff, at most max_divergence_retries
    # times before raising TrainingDivergedError.
    max_divergence_retries: int = 3
    lr_backoff: float = 0.5
    loss_explosion_factor: float | None = 1e4   # None disables the explosion check
    check_gradients: bool = True       # scan gradients for NaN/Inf per batch
    # --- static analysis (see repro.analysis and docs/analysis.md) ---
    # Pre-flight shape/dtype/grad-flow trace of model.loss at the top of
    # Trainer.fit and before registry publish; well under 100 ms and catches
    # broadcast/policy/grad-flow bugs before a long run burns CPU time.
    preflight: bool = True
    # Wrap every training batch in analysis.detect_anomaly(): the first
    # NaN/Inf in any forward output or backward gradient is attributed to
    # the op that produced it, and the divergence guard turns it into a
    # rollback naming that op.  Costs < 3x per step (docs/analysis.md).
    detect_anomaly: bool = False
    # Snapshot selection: after each epoch, score a validation probe
    # corrupted with synthetic 6-sigma spikes at known positions and keep
    # the weights with the best spike-vs-normal ROC-AUC.  Label-free (the
    # probe is self-generated), and the standard defence against the
    # view-collapse failure mode of positive-pair contrastive training,
    # where both views align so well that the discrepancy signal — and
    # detection — dies.  Requires a validation split at fit time.
    select_best_epoch: bool = False

    # --- objective (Table IV ablations) ---
    adversarial: bool = True               # False => "w/o L_adv"
    reversed_adversarial: bool = False     # True  => "w/ L_radv"

    # --- architecture ablations (Table IV) ---
    use_frequency_branch: bool = True      # False => "w/o Fre"
    use_frequency_decoder: bool = True     # False => "w/o FD"
    use_temporal_branch: bool = True       # False => "w/o Tem"
    use_temporal_encoder: bool = True      # False => "w/o TE"
    use_temporal_decoder: bool = True      # False => "w/o TD"

    def __post_init__(self) -> None:
        if self.window_size < 2:
            raise ValueError("window_size must be >= 2")
        if not (self.use_temporal_branch or self.use_frequency_branch):
            raise ValueError("at least one of the temporal/frequency branches is required")
        if not 0.0 <= self.temporal_mask_ratio <= 100.0:
            raise ValueError("temporal_mask_ratio must be in [0, 100]")
        if not 0.0 <= self.frequency_mask_ratio <= 100.0:
            raise ValueError("frequency_mask_ratio must be in [0, 100]")
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        if self.compute_dtype not in ("float32", "float64"):
            raise ValueError(
                f"compute_dtype must be 'float32' or 'float64', got {self.compute_dtype!r}"
            )
        if self.jit_cache_size < 1:
            raise ValueError("jit_cache_size must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.max_divergence_retries < 0:
            raise ValueError("max_divergence_retries must be >= 0")
        if not 0.0 < self.lr_backoff < 1.0:
            raise ValueError("lr_backoff must be in (0, 1)")
        if self.loss_explosion_factor is not None and self.loss_explosion_factor <= 1.0:
            raise ValueError("loss_explosion_factor must exceed 1")

    def with_overrides(self, **kwargs) -> "TFMAEConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


# Masking ratios from Figure 6 (optimal per dataset) and threshold ratios
# r from Section V-A.4 of the paper.  The paper does not report ratios for
# the NIPS-TS case-study datasets; those two entries were tuned on the
# synthetic generators here.  Note the seasonal preset keeps the temporal
# ratio LOW: masking too aggressively normal-recovers the pattern anomaly
# in the temporal view as well, erasing the cross-view discrepancy.
PAPER_PRESETS: dict[str, dict[str, float]] = {
    "SWaT": {"temporal_mask_ratio": 25.0, "frequency_mask_ratio": 40.0, "anomaly_ratio": 0.3},
    "SMD": {"temporal_mask_ratio": 5.0, "frequency_mask_ratio": 20.0, "anomaly_ratio": 0.45},
    "SMAP": {"temporal_mask_ratio": 65.0, "frequency_mask_ratio": 30.0, "anomaly_ratio": 0.75},
    "PSM": {"temporal_mask_ratio": 65.0, "frequency_mask_ratio": 10.0, "anomaly_ratio": 0.9},
    "MSL": {"temporal_mask_ratio": 55.0, "frequency_mask_ratio": 40.0, "anomaly_ratio": 0.9},
    "NIPS-TS-Global": {"temporal_mask_ratio": 55.0, "frequency_mask_ratio": 30.0, "anomaly_ratio": 2.5},
    "NIPS-TS-Seasonal": {"temporal_mask_ratio": 15.0, "frequency_mask_ratio": 30.0, "anomaly_ratio": 5.0},
}


def preset_for(dataset: str, base: TFMAEConfig | None = None, **overrides) -> TFMAEConfig:
    """Build a config using the paper's per-dataset masking/threshold ratios.

    Unknown dataset names fall back to the defaults, so user datasets work
    without registration.
    """
    config = base if base is not None else TFMAEConfig()
    preset = PAPER_PRESETS.get(dataset, {})
    merged = {**preset, **overrides}
    return config.with_overrides(**merged) if merged else config
