"""Amplitude-based frequency masking (paper Section IV-A.2, Eq. 6-10).

The series is transformed with the DFT (Eq. 6); each frequency bin's
amplitude (Eq. 7) measures how long-lived and strong the corresponding
pattern is.  The ``r%`` *lowest-amplitude* bins — short-lived patterns that
deviate from the dominant behaviour, i.e. likely pattern anomalies — are
replaced with a learnable complex token before inverting back to the time
domain (Eq. 9-10).

Autograd integration
--------------------
The FFT itself runs outside the autograd graph; gradients only need to
reach the learnable mask token ``m^(F)``.  Because the IDFT is linear, the
time-domain result decomposes exactly as::

    idft(X_masked)(t) = fixed(t) + Re(m) * cos_basis(t) - Im(m) * sin_basis(t)

where ``fixed`` is the IDFT of the spectrum with masked bins zeroed, and
``cos_basis``/``sin_basis`` collect ``sum_i exp(j w_i t) / |S|`` over the
masked bins of each feature.  The masker returns those three real arrays;
the model combines them with its ``m^(F)`` parameters using ordinary
tensor operations, so gradients reach the token while the transform stays
in fast numpy FFT code.

A replaced spectrum generally loses conjugate symmetry, so the exact IDFT
is complex; following the reference implementation we keep the real part
(``fixed``, ``cos_basis`` and ``sin_basis`` are all real parts of the
corresponding complex sums).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from .temporal import top_indices

__all__ = [
    "amplitude_spectrum",
    "FrequencyMaskResult",
    "FrequencyMasker",
    "FrequencyMaskStrategy",
]

FrequencyMaskStrategy = Literal["amplitude", "high", "random", "none"]


def amplitude_spectrum(series: np.ndarray) -> np.ndarray:
    """Amplitude of the full DFT along the time axis (Eq. 6-7).

    Parameters
    ----------
    series:
        ``(batch, time, features)`` real array.

    Returns
    -------
    numpy.ndarray
        ``(batch, time, features)`` non-negative amplitudes
        ``sqrt(Re^2 + Im^2)`` per frequency bin.
    """
    spectrum = np.fft.fft(series, axis=1)
    return np.abs(spectrum)


@dataclass(frozen=True)
class FrequencyMaskResult:
    """Outcome of frequency masking on a batch of windows.

    Attributes
    ----------
    fixed:
        ``(batch, time, features)`` real part of the IDFT of the spectrum
        with masked bins zeroed — the contribution of unmasked frequencies.
    cos_basis, sin_basis:
        ``(batch, time, features)`` coefficients multiplying the real and
        (negated) imaginary parts of the learnable token (see module
        docstring).
    masked_bins:
        ``(batch, I_F, features)`` integer frequency indices masked per
        feature.
    amplitude:
        ``(batch, time, features)`` amplitude spectrum used for selection.
    """

    fixed: np.ndarray
    cos_basis: np.ndarray
    sin_basis: np.ndarray
    masked_bins: np.ndarray
    amplitude: np.ndarray

    @property
    def num_masked(self) -> int:
        return self.masked_bins.shape[1]


class FrequencyMasker:
    """Amplitude-based frequency masking with pluggable criteria.

    Parameters
    ----------
    ratio:
        Masking ratio ``r^(F)`` in percent (0-100).
    strategy:
        ``"amplitude"`` (paper default: mask smallest amplitudes),
        ``"high"`` (HMF ablation: mask highest frequencies), ``"random"``
        (RMF ablation) or ``"none"``.
    """

    def __init__(
        self,
        ratio: float,
        strategy: FrequencyMaskStrategy = "amplitude",
        rng: np.random.Generator | None = None,
    ):
        if not 0.0 <= ratio <= 100.0:
            raise ValueError(f"ratio must be in [0, 100], got {ratio}")
        if strategy not in ("amplitude", "high", "random", "none"):
            raise ValueError(f"unknown frequency mask strategy: {strategy}")
        self.ratio = ratio
        self.strategy = strategy
        # Interactive fallback; model construction always passes the
        # config-seeded generator.
        self.rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[RNG001]
        # (batch, features) -> broadcastable arange index pair; read-only,
        # a handful of keys ever exist (one per scoring geometry).
        self._index_cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}

    def num_masked(self, length: int) -> int:
        """``I^(F) = floor(r% * |S|)`` (Eq. 8)."""
        if self.strategy == "none":
            return 0
        return int(self.ratio / 100.0 * length)

    def _select_bins(self, amplitude: np.ndarray, count: int) -> np.ndarray:
        """Choose masked bins per (batch, feature); returns (batch, count, features)."""
        batch, time, features = amplitude.shape
        if self.strategy == "random":
            scores = self.rng.random((batch, time, features))
        elif self.strategy == "high":
            # Highest angular frequency = bins closest to the Nyquist bin
            # (the DFT is conjugate-symmetric around time//2).
            distance_to_nyquist = np.abs(np.arange(time) - time / 2.0)
            scores = -distance_to_nyquist[None, :, None] * np.ones((batch, 1, features))
        else:  # "amplitude": mask the smallest amplitudes (Eq. 8: TopIndex(-a))
            scores = -amplitude
        # top_indices works on the trailing axis; move time last.
        per_feature = np.swapaxes(scores, 1, 2)  # (batch, features, time)
        selected = top_indices(per_feature, count)  # (batch, features, count)
        return np.swapaxes(selected, 1, 2)  # (batch, count, features)

    def __call__(self, windows: np.ndarray) -> FrequencyMaskResult:
        """Mask a batch of windows shaped ``(batch, time, features)``."""
        if windows.ndim != 3:
            raise ValueError(f"expected (batch, time, features), got {windows.shape}")
        batch, time, features = windows.shape
        spectrum = np.fft.fft(windows, axis=1)
        amplitude = np.abs(spectrum)
        count = self.num_masked(time)

        if count == 0:
            return FrequencyMaskResult(
                fixed=windows.astype(np.float64),
                cos_basis=np.zeros_like(windows, dtype=np.float64),
                sin_basis=np.zeros_like(windows, dtype=np.float64),
                masked_bins=np.zeros((batch, 0, features), dtype=np.int64),
                amplitude=amplitude,
            )

        masked_bins = self._select_bins(amplitude, count)

        # Zero out masked bins, keep the rest (Eq. 9 with m = 0 for now).
        bin_mask = np.zeros((batch, time, features), dtype=bool)
        indices = self._index_cache.get((batch, features))
        if indices is None:
            indices = (np.arange(batch)[:, None, None], np.arange(features)[None, None, :])
            self._index_cache[(batch, features)] = indices
        rows, cols = indices
        bin_mask[rows, masked_bins, cols] = True
        kept = np.where(bin_mask, 0.0, spectrum)

        # Basis for the learnable token: sum over masked bins of
        # exp(j*2*pi*i*t/|S|) / |S| per feature (real and imaginary parts).
        # Computed as the IDFT of the bin-indicator, which numpy evaluates
        # in O(|S| log |S|).  Both IDFTs run in one batched transform —
        # the FFT is independent per (batch, feature) column, so stacking
        # ``kept`` and the indicator along the feature axis is
        # bitwise-identical at half the transform call count.
        indicator = bin_mask.astype(np.complex128)
        inverted = np.fft.ifft(
            np.concatenate([kept, indicator], axis=-1), axis=1
        )
        fixed = inverted[..., :features].real
        token_response = inverted[..., features:]
        cos_basis = token_response.real
        sin_basis = token_response.imag

        return FrequencyMaskResult(
            fixed=fixed,
            cos_basis=cos_basis,
            sin_basis=sin_basis,
            masked_bins=masked_bins,
            amplitude=amplitude,
        )
