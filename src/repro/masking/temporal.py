"""Window-based temporal masking (paper Section IV-A.1, Eq. 1-5).

The strategy slides a window of length ``W`` over the series, computes a
coefficient-of-variation statistic per position, and masks the ``r%`` of
observations whose local windows fluctuate the most — those are the likely
observation anomalies.  Two implementations are provided:

* :func:`coefficient_of_variation_naive` — the double loop of Eq. 1, kept
  as the reference implementation and for the "w/o FFT" efficiency
  ablation (Fig. 10).
* :func:`coefficient_of_variation_fft` — the FFT-accelerated form of
  Eq. 4-5 via the Wiener-Khinchin theorem: rolling sums of ``x`` and
  ``x**2`` are convolutions with a ones kernel, evaluated in
  ``O(N |S| log |S|)``.

Note on Eq. 4: the paper prints ``(mu2 + mu^2)/mu`` but the variance
identity is ``E[x^2] - E[x]^2``; we implement the mathematically correct
minus sign, which also makes the FFT form agree with Eq. 1 exactly (this
is verified by property-based tests).  Because the series is z-score
normalised upstream, the window mean can approach zero; the denominator
uses ``|mu| + eps`` in **both** implementations so they stay equivalent
and numerically stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

__all__ = [
    "coefficient_of_variation_naive",
    "coefficient_of_variation_fft",
    "rolling_std",
    "top_indices",
    "TemporalMaskResult",
    "TemporalMasker",
    "TemporalMaskStrategy",
]

_EPS = 1e-4

#: Cached ones-kernel spectra keyed by (window, fft_len); read-only.
_KERNEL_FFT_CACHE: dict[tuple[int, int], np.ndarray] = {}

TemporalMaskStrategy = Literal["cov", "std", "random", "none"]


def _left_pad(series: np.ndarray, window: int) -> np.ndarray:
    """Replicate the first observation so every position has a full window.

    ``series`` has shape ``(..., time, features)``; the trailing window of
    position ``t`` covers ``[t - window + 1, t]`` after padding.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    first = series[..., :1, :]
    pad = np.repeat(first, window - 1, axis=-2)
    return np.concatenate([pad, series], axis=-2)


def coefficient_of_variation_naive(series: np.ndarray, window: int) -> np.ndarray:
    """Reference O(N*|S|*W) implementation of Eq. 1.

    Parameters
    ----------
    series:
        Array of shape ``(time, features)`` or ``(batch, time, features)``.
    window:
        Sliding-window length ``W``.

    Returns
    -------
    numpy.ndarray
        Per-position statistic ``V`` of shape ``(time,)`` or
        ``(batch, time)`` — the sum over features of window variance
        divided by the window mean magnitude.
    """
    squeezed = series.ndim == 2
    data = series[None] if squeezed else series
    padded = _left_pad(data, window)
    batch, time, features = data.shape
    result = np.zeros((batch, time))
    for b in range(batch):
        for t in range(time):
            window_values = padded[b, t : t + window, :]
            mean = window_values.mean(axis=0)
            if window > 1:
                var = window_values.var(axis=0, ddof=1)
            else:
                var = np.zeros(features)
            result[b, t] = float(np.sum(var / (np.abs(mean) + _EPS)))
    return result[0] if squeezed else result


def _rolling_moments_fft(data: np.ndarray, window: int) -> tuple[np.ndarray, np.ndarray]:
    """Rolling window means of ``x`` and ``x**2`` via FFT convolution.

    ``data`` has shape ``(batch, time, features)``; returns two arrays of
    the same shape containing trailing-window means (with left padding by
    replication, matching the naive implementation).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    batch, time, features = data.shape
    length = time + window - 1
    fft_len = 1 << int(np.ceil(np.log2(length + window - 1)))
    # The ones-kernel spectrum depends only on (window, fft_len); caching
    # it keeps this off the per-score hot path (a handful of keys ever
    # exist per process — one per distinct window geometry).
    key = (window, fft_len)
    kernel_fft = _KERNEL_FFT_CACHE.get(key)
    if kernel_fft is None:
        kernel_fft = np.fft.rfft(np.ones(window), n=fft_len)
        _KERNEL_FFT_CACHE[key] = kernel_fft

    # One batched transform convolves x and x**2 together: the FFT is
    # independent per feature column, so stacking along the feature axis
    # produces bitwise-identical results at half the FFT call count.
    # Both the left padding and the stack are written straight into one
    # array (``x ** 2`` is bitwise ``x * x``), skipping the repeat +
    # double-concatenate temporaries of the naive construction.
    both = np.empty((batch, length, 2 * features), dtype=data.dtype)
    both[:, : window - 1, :features] = data[:, :1, :]
    both[:, window - 1 :, :features] = data
    np.multiply(both[..., :features], both[..., :features], out=both[..., features:])
    spectrum = np.fft.rfft(both, n=fft_len, axis=1)
    full = np.fft.irfft(spectrum * kernel_fft[None, :, None], n=fft_len, axis=1)
    # 'valid' part of the convolution: positions window-1 .. length-1.
    valid = full[:, window - 1 : length, :]
    return valid[..., :features] / window, valid[..., features:] / window


def coefficient_of_variation_fft(series: np.ndarray, window: int) -> np.ndarray:
    """FFT-accelerated coefficient of variation (Eq. 4-5).

    Numerically equivalent to :func:`coefficient_of_variation_naive` up to
    floating-point error; complexity ``O(N |S| log |S|)``.
    """
    squeezed = series.ndim == 2
    data = series[None] if squeezed else series
    mean, mean_sq = _rolling_moments_fft(data, window)
    if window > 1:
        # Unbiased variance from raw moments: n/(n-1) * (E[x^2] - E[x]^2).
        var = (mean_sq - mean**2) * (window / (window - 1))
        var = np.maximum(var, 0.0)  # guard tiny negative fp residue
    else:
        var = np.zeros_like(mean)
    statistic = (var / (np.abs(mean) + _EPS)).sum(axis=-1)
    return statistic[0] if squeezed else statistic


def rolling_std(series: np.ndarray, window: int) -> np.ndarray:
    """Rolling standard deviation statistic, for the 'w/ SMT' ablation.

    Same shape conventions as :func:`coefficient_of_variation_fft`, but
    without the mean normalisation — the paper shows this is more
    sensitive to data-scale changes.
    """
    squeezed = series.ndim == 2
    data = series[None] if squeezed else series
    mean, mean_sq = _rolling_moments_fft(data, window)
    if window > 1:
        var = np.maximum((mean_sq - mean**2) * (window / (window - 1)), 0.0)
    else:
        var = np.zeros_like(mean)
    statistic = np.sqrt(var).sum(axis=-1)
    return statistic[0] if squeezed else statistic


def top_indices(values: np.ndarray, count: int) -> np.ndarray:
    """``TopIndex`` (Eq. 2): indices of the ``count`` largest entries.

    Works on the trailing axis; returns sorted indices so downstream
    masking is deterministic.  ``count == 0`` yields an empty index set.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return np.zeros(values.shape[:-1] + (0,), dtype=np.int64)
    if count > values.shape[-1]:
        raise ValueError(
            f"cannot select {count} indices from axis of size {values.shape[-1]}"
        )
    part = values.argpartition(-count, axis=-1)[..., -count:]
    part = np.ascontiguousarray(part)
    part.sort(axis=-1)
    return part


@dataclass(frozen=True)
class TemporalMaskResult:
    """Outcome of applying temporal masking to a batch of windows.

    Attributes
    ----------
    masked_indices:
        ``(batch, I_T)`` integer positions of masked observations.
    unmasked_indices:
        ``(batch, T - I_T)`` integer positions kept visible.
    mask:
        ``(batch, T)`` boolean array, ``True`` where masked.
    statistic:
        ``(batch, T)`` the masking statistic used (CoV/std/uniform noise).
    """

    masked_indices: np.ndarray
    unmasked_indices: np.ndarray
    mask: np.ndarray
    statistic: np.ndarray

    @property
    def num_masked(self) -> int:
        return self.masked_indices.shape[-1]


class TemporalMasker:
    """Window-based temporal masking with pluggable statistics.

    Parameters
    ----------
    ratio:
        Masking ratio ``r^(T)`` in percent (0-100).
    window:
        Sliding window length ``W`` for the local statistic (paper: 10).
    strategy:
        ``"cov"`` (paper default), ``"std"`` (SMT ablation), ``"random"``
        (RMT ablation) or ``"none"`` (no masking).
    use_fft:
        Use the FFT-accelerated statistic; disable only for the
        "w/o FFT" efficiency ablation.
    """

    def __init__(
        self,
        ratio: float,
        window: int = 10,
        strategy: TemporalMaskStrategy = "cov",
        use_fft: bool = True,
        rng: np.random.Generator | None = None,
    ):
        if not 0.0 <= ratio <= 100.0:
            raise ValueError(f"ratio must be in [0, 100], got {ratio}")
        if strategy not in ("cov", "std", "random", "none"):
            raise ValueError(f"unknown temporal mask strategy: {strategy}")
        self.ratio = ratio
        self.window = window
        self.strategy = strategy
        self.use_fft = use_fft
        # Interactive fallback; model construction always passes the
        # config-seeded generator.
        self.rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[RNG001]
        # batch -> (batch, 1) arange row index; read-only, a handful of
        # keys ever exist (one per scoring geometry).
        self._row_cache: dict[int, np.ndarray] = {}

    def num_masked(self, length: int) -> int:
        """``I^(T) = floor(r% * |S|)`` (Eq. 2)."""
        if self.strategy == "none":
            return 0
        return int(self.ratio / 100.0 * length)

    def __call__(self, windows: np.ndarray) -> TemporalMaskResult:
        """Mask a batch of windows shaped ``(batch, time, features)``."""
        if windows.ndim != 3:
            raise ValueError(f"expected (batch, time, features), got {windows.shape}")
        batch, time, _ = windows.shape
        count = self.num_masked(time)

        if self.strategy == "random":
            statistic = self.rng.random((batch, time))
        elif self.strategy == "std":
            statistic = rolling_std(windows, self.window)
        elif self.strategy == "none":
            statistic = np.zeros((batch, time))
        elif self.use_fft:
            statistic = coefficient_of_variation_fft(windows, self.window)
        else:
            statistic = coefficient_of_variation_naive(windows, self.window)

        masked = top_indices(statistic, count)
        mask = np.zeros((batch, time), dtype=bool)
        rows = self._row_cache.get(batch)
        if rows is None:
            rows = self._row_cache[batch] = np.arange(batch)[:, None]
        if count:
            mask[rows, masked] = True
        # Stable argsort puts unmasked (False) positions first, in order.
        unmasked = mask.argsort(axis=-1, kind="stable")[:, : time - count]
        return TemporalMaskResult(
            masked_indices=masked,
            unmasked_indices=unmasked,
            mask=mask,
            statistic=statistic,
        )
