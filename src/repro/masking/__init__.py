"""Temporal and frequency masking strategies (the paper's Section IV-A)."""

from .frequency import (
    FrequencyMasker,
    FrequencyMaskResult,
    FrequencyMaskStrategy,
    amplitude_spectrum,
)
from .temporal import (
    TemporalMasker,
    TemporalMaskResult,
    TemporalMaskStrategy,
    coefficient_of_variation_fft,
    coefficient_of_variation_naive,
    rolling_std,
    top_indices,
)

__all__ = [
    "TemporalMasker",
    "TemporalMaskResult",
    "TemporalMaskStrategy",
    "coefficient_of_variation_naive",
    "coefficient_of_variation_fft",
    "rolling_std",
    "top_indices",
    "FrequencyMasker",
    "FrequencyMaskResult",
    "FrequencyMaskStrategy",
    "amplitude_spectrum",
]
