"""Terminal visualisation: ASCII rendering of series, scores and alarms.

matplotlib is not a dependency of this reproduction; operators inspecting
an incident from a shell still need to *see* the signal.  These helpers
render a channel, its anomaly scores and the threshold as fixed-width
text, the same style the Figure 8 bench uses.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sparkline", "render_series", "render_detection"]

_BLOCKS = " .:-=+*#%@"


def sparkline(values: np.ndarray, width: int = 80) -> str:
    """One-line intensity plot of ``values`` resampled to ``width`` chars."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("cannot render an empty series")
    resampled = np.interp(
        np.linspace(0, values.size - 1, width), np.arange(values.size), values
    )
    span = resampled.max() - resampled.min()
    if span == 0:
        return _BLOCKS[0] * width
    normalised = (resampled - resampled.min()) / span
    return "".join(_BLOCKS[int(v * (len(_BLOCKS) - 1))] for v in normalised)


def render_series(series: np.ndarray, height: int = 8, width: int = 80) -> str:
    """Multi-row ASCII line plot of a 1-D series."""
    series = np.asarray(series, dtype=np.float64).reshape(-1)
    if series.size == 0:
        raise ValueError("cannot render an empty series")
    resampled = np.interp(
        np.linspace(0, series.size - 1, width), np.arange(series.size), series
    )
    lo, hi = resampled.min(), resampled.max()
    span = hi - lo or 1.0
    rows = np.full((height, width), " ", dtype="<U1")
    levels = np.clip(((resampled - lo) / span * (height - 1)).round().astype(int), 0, height - 1)
    for column, level in enumerate(levels):
        rows[height - 1 - level, column] = "*"
    lines = ["".join(row) for row in rows]
    lines[0] += f"  {hi:.3g}"
    lines[-1] += f"  {lo:.3g}"
    return "\n".join(lines)


def render_detection(
    channel: np.ndarray,
    scores: np.ndarray,
    threshold: float,
    labels: np.ndarray | None = None,
    width: int = 80,
) -> str:
    """Triage view: signal, score sparkline, alarm row, optional truth row.

    ``!`` marks positions whose score exceeds the threshold; ``#`` marks
    ground-truth anomalies when labels are provided.
    """
    channel = np.asarray(channel, dtype=np.float64).reshape(-1)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if channel.shape != scores.shape:
        raise ValueError("channel and scores must be aligned")
    lines = [
        "signal | " + sparkline(channel, width),
        "score  | " + sparkline(scores, width),
    ]
    grid = np.linspace(0, channel.size - 1, width).astype(int)
    alarm_row = "".join("!" if scores[i] >= threshold else " " for i in grid)
    lines.append("alarms | " + alarm_row)
    if labels is not None:
        labels = np.asarray(labels).reshape(-1)
        truth_row = "".join("#" if labels[i] else " " for i in grid)
        lines.append("truth  | " + truth_row)
    return "\n".join(lines)
