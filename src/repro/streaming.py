"""Online (streaming) anomaly detection on top of any fitted detector.

The observability deployments that motivate the paper (Section I) score
telemetry as it arrives, not in offline batches.  :class:`StreamingDetector`
wraps a fitted :class:`~repro.detector.BaseDetector` with a rolling
context buffer: each incoming observation is scored against the most
recent ``context`` observations, so window-based models (TFMAE and the
deep baselines) see a full window ending at the new point.

Real telemetry arrives corrupted — NaN bursts, stuck sensors, wrong
dimensionality after a fleet config change.  Without a policy the
detector fails loudly (a clear :class:`ValueError`, never a ragged
buffer or a silent NaN score); with a
:class:`~repro.robustness.FaultPolicy` it degrades gracefully instead:
malformed components are imputed/clamped from the buffer, rejected
observations produce flagged events, and an optional fallback detector
takes over when the primary's ``score`` raises, with periodic recovery
probes.  Every intervention is recorded in ``StreamEvent.flags``.

Notes
-----
* The wrapped detector must already be fit and threshold-calibrated.
* Scores for the same observation can differ slightly from offline
  scoring because the window *ends* at the observation instead of being
  aligned to a fixed grid; ordering of anomalies vs. normals is
  preserved, which is what alerting consumes.
* ``update`` is O(one window score); for high-rate streams, batch with
  ``update_many``.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .analysis.lockcheck import named_lock
from .datasets.windows import sliding_windows
from .detector import BaseDetector
from .robustness.faults import FaultPolicy, sanitize_observation

__all__ = ["StreamEvent", "StreamingDetector", "FaultPolicy"]


@dataclass(frozen=True)
class StreamEvent:
    """Outcome of scoring one streamed observation.

    ``score`` is NaN whenever no meaningful score exists (warmup, a
    rejected observation, or a degraded update without a fallback); the
    ``flags`` tuple says why.  Flag vocabulary: ``warmup``, ``imputed``,
    ``clamped``, ``rejected_nonfinite``, ``dim_mismatch``, ``fallback``,
    ``primary_error``, ``nonfinite_score``, ``recovered``.
    """

    index: int
    score: float
    is_anomaly: bool
    flags: tuple[str, ...] = field(default=())

    @property
    def degraded(self) -> bool:
        """True when this event was produced under any fault handling."""
        return bool(self.flags)


class StreamingDetector:
    """Rolling-window online scoring for a fitted detector.

    Parameters
    ----------
    detector:
        A fitted, threshold-calibrated detector.
    context:
        Number of recent observations kept as scoring context.  For
        window-based detectors this should be at least the model's window
        size (e.g. ``config.window_size`` for TFMAE).
    warmup:
        Until this many observations have arrived, events are reported
        with ``is_anomaly=False`` and ``score=nan`` (flag ``warmup``) —
        there is not enough context to score meaningfully.
    policy:
        Optional :class:`~repro.robustness.FaultPolicy` enabling graceful
        degradation on corrupted input.  Without one, malformed
        observations raise :class:`ValueError` with a clear message.
    """

    def __init__(
        self,
        detector: BaseDetector,
        context: int = 100,
        warmup: int | None = None,
        policy: FaultPolicy | None = None,
    ):
        if detector.threshold_ is None:
            raise ValueError("detector must be threshold-calibrated before streaming")
        if context < 2:
            raise ValueError(f"context must be >= 2, got {context}")
        self.detector = detector
        self.context = context
        self.warmup = warmup if warmup is not None else context
        self.policy = policy
        self._buffer: deque[np.ndarray] = deque(maxlen=context)
        self._count = 0
        self._dimension: int | None = None
        self._degraded = False
        self._updates_since_degraded = 0
        # Reentrant: update_many's fault-handling path recurses into
        # update() while already holding the lock.
        self._swap_lock = named_lock("streaming.swap", kind="rlock")

    @property
    def observations_seen(self) -> int:
        return self._count

    @property
    def degraded(self) -> bool:
        """True while the primary detector is out of service (fallback mode)."""
        return self._degraded

    # ------------------------------------------------------------------
    # scoring internals
    # ------------------------------------------------------------------
    def _score_window(self, window: np.ndarray) -> tuple[float, float, list[str]]:
        """Score with primary-or-fallback; returns (score, threshold, flags)."""
        policy = self.policy
        flags: list[str] = []
        use_primary = not self._degraded
        if self._degraded and policy is not None:
            # Periodically probe whether the primary has recovered.
            self._updates_since_degraded += 1
            if self._updates_since_degraded % policy.recovery_every == 0:
                use_primary = True
        if use_primary:
            try:
                score = float(self.detector.score(window)[-1])
                if math.isfinite(score):
                    if self._degraded:
                        flags.append("recovered")
                    self._degraded = False
                    self._updates_since_degraded = 0
                    return score, float(self.detector.threshold_), flags
                flags.append("nonfinite_score")
            except Exception:
                if policy is None:
                    raise
                flags.append("primary_error")
            if policy is None:
                # Non-finite score with no policy: fail loudly rather than
                # silently mis-ranking alerts.
                raise ValueError(
                    f"{self.detector.name}.score returned a non-finite value for "
                    "the current window; enable a FaultPolicy to degrade "
                    "gracefully"
                )
            if not self._degraded:
                self._degraded = True
                self._updates_since_degraded = 0
        if policy is not None and policy.fallback is not None:
            flags.append("fallback")
            score = float(policy.fallback.score(window)[-1])
            return score, float(policy.fallback.threshold_), flags
        return float("nan"), float("inf"), flags

    def swap_detector(self, detector: BaseDetector) -> BaseDetector:
        """Atomically replace the wrapped detector (model refresh).

        Holds the same lock :meth:`update`/:meth:`update_many` hold for
        the duration of a batch, so every in-flight batch is scored
        entirely by one detector — a version swap can never mix weights
        mid-batch (asserted bitwise in ``tests/serve/test_lifecycle.py``).
        The rolling context buffer and counters carry over: the stream
        continues seamlessly under the new model.  Returns the detector
        that was serving.
        """
        if detector.threshold_ is None:
            raise ValueError(
                "replacement detector must be threshold-calibrated before streaming"
            )
        with self._swap_lock:
            previous, self.detector = self.detector, detector
            self._degraded = False
            self._updates_since_degraded = 0
        return previous

    def update(self, observation: np.ndarray) -> StreamEvent:
        """Ingest one observation and return its scored event."""
        with self._swap_lock:
            return self._update(observation)

    def _update(self, observation: np.ndarray) -> StreamEvent:
        observation = np.asarray(observation, dtype=np.float64).reshape(-1)
        index = self._count
        self._count += 1
        flags: list[str] = []

        # Dimensionality contract: fixed by the first accepted observation.
        if self._dimension is not None and observation.size != self._dimension:
            if self.policy is None:
                raise ValueError(
                    f"observation {index} has {observation.size} features but the "
                    f"stream was established with {self._dimension}; a ragged "
                    "buffer cannot be scored"
                )
            return StreamEvent(index=index, score=float("nan"), is_anomaly=False,
                               flags=("dim_mismatch",))

        if self.policy is not None:
            stacked = np.stack(self._buffer) if self._buffer else None
            repaired, repair_flags = sanitize_observation(observation, stacked, self.policy)
            flags.extend(repair_flags)
            if repaired is None:
                return StreamEvent(index=index, score=float("nan"), is_anomaly=False,
                                   flags=tuple(flags))
            observation = repaired
        elif not np.all(np.isfinite(observation)):
            raise ValueError(
                f"observation {index} contains NaN/Inf values; impute upstream "
                "or pass a FaultPolicy to degrade gracefully"
            )

        if self._dimension is None:
            self._dimension = observation.size
        self._buffer.append(observation)

        if self._count < self.warmup:
            return StreamEvent(index=index, score=float("nan"), is_anomaly=False,
                               flags=tuple(flags) + ("warmup",))
        window = np.stack(self._buffer)
        score, threshold, score_flags = self._score_window(window)
        flags.extend(score_flags)
        return StreamEvent(
            index=index,
            score=score,
            is_anomaly=bool(math.isfinite(score) and score >= threshold),
            flags=tuple(flags),
        )

    def update_many(self, observations: np.ndarray) -> list[StreamEvent]:
        """Ingest a batch of observations in arrival order.

        Events are identical to calling :meth:`update` per row — same
        indices, same flags, bitwise-equal scores — but all post-warmup
        windows are scored through the detector's batched
        :meth:`~repro.detector.BaseDetector.score_last` (one vectorized
        forward pass per window length) instead of one ``score`` call per
        observation, which is what makes high-rate streams affordable.
        The same helper backs the ``repro.serve`` micro-batcher, so
        streaming and serving share one batched hot path.

        The serial path is kept for the fault-handling modes whose
        per-observation state machine batching cannot preserve: an active
        :class:`~repro.robustness.FaultPolicy`, an already-degraded
        stream, or a primary detector that errors/returns non-finite
        scores mid-batch (detected and replayed serially, yielding the
        exact sequential events).  Without a policy, malformed input
        raises the same :class:`ValueError` as :meth:`update`, before any
        observation of the batch is ingested.
        """
        with self._swap_lock:
            return self._update_many(observations)

    def _update_many(self, observations: np.ndarray) -> list[StreamEvent]:
        observations = np.atleast_2d(np.asarray(observations, dtype=np.float64))
        if observations.ndim != 2:
            raise ValueError(
                f"observations must be (batch, features), got shape {observations.shape}"
            )
        if len(observations) == 0:
            return []
        # Fault-handling paths keep the exact serial state machine:
        # sanitization depends on the evolving buffer and degradation
        # flips per event.
        if self.policy is not None or self._degraded:
            return [self._update(row) for row in observations]

        # Validate the whole batch up front so the fast path fails before
        # ingesting anything, exactly where the serial loop would.
        dimension = self._dimension if self._dimension is not None else observations.shape[1]
        if observations.shape[1] != dimension:
            raise ValueError(
                f"observation {self._count} has {observations.shape[1]} features but "
                f"the stream was established with {dimension}; a ragged buffer "
                "cannot be scored"
            )
        finite_rows = np.all(np.isfinite(observations), axis=1)
        if not np.all(finite_rows):
            bad = self._count + int(np.argmin(finite_rows))
            raise ValueError(
                f"observation {bad} contains NaN/Inf values; impute upstream "
                "or pass a FaultPolicy to degrade gracefully"
            )

        # Ingest: extend the rolling buffer, then cut every due scoring
        # window as a zero-copy view into one contiguous history array
        # (buffer prefix + this batch) instead of snapshotting the deque
        # once per observation — the snapshots were O(batch * context)
        # copies, the views are O(1).
        first_index = self._count
        if self._dimension is None:
            self._dimension = dimension
        prefix_len = len(self._buffer)
        if prefix_len:
            history = np.concatenate([np.stack(tuple(self._buffer)), observations])
        else:
            history = observations
        for row in observations:
            self._buffer.append(row)
        self._count += len(observations)

        offsets = np.arange(len(observations))
        ends = prefix_len + offsets + 1                    # window end in history
        due = (first_index + offsets + 1) >= self.warmup   # post-warmup positions
        scored_at = [int(offset) for offset in offsets[due]]
        lengths = np.minimum(ends, self.context)           # rolling window length

        # Score everything due, batched per window length (lengths vary
        # only while the buffer is still filling).
        scores = np.full(len(scored_at), np.nan)
        position_of = {offset: position for position, offset in enumerate(scored_at)}
        try:
            # Full-context windows are consecutive, so they form one
            # contiguous slice of the sliding-window view: zero copies.
            full = [offset for offset in scored_at if lengths[offset] == self.context]
            if full:
                view = sliding_windows(history, self.context, stride=1)
                start = int(ends[full[0]]) - self.context
                batch_scores = self.detector.score_last(view[start : start + len(full)])
                for offset, value in zip(full, batch_scores):
                    scores[position_of[offset]] = value
            by_length: dict[int, list[int]] = {}
            for offset in scored_at:
                if lengths[offset] < self.context:
                    by_length.setdefault(int(lengths[offset]), []).append(offset)
            for length, group in by_length.items():
                batch = np.stack(
                    [history[ends[offset] - length : ends[offset]] for offset in group]
                )
                batch_scores = self.detector.score_last(batch)
                for offset, value in zip(group, batch_scores):
                    scores[position_of[offset]] = value
            if scored_at and not np.all(np.isfinite(scores)):
                raise ValueError("non-finite score in batched streaming update")
        except Exception:
            # Primary failed mid-batch.  Replay the scoring serially via
            # the per-window state machine so errors surface (policy is
            # None here) at the exact observation the serial loop would
            # blame.  Ingestion already happened; scores are recomputed
            # from the window views, which is deterministic.
            windows = [
                history[int(ends[offset] - lengths[offset]) : int(ends[offset])]
                for offset in scored_at
            ]
            return self._assemble_serial(first_index, observations, scored_at, windows)

        threshold = float(self.detector.threshold_)
        events: list[StreamEvent] = []
        scored = position_of
        for offset in range(len(observations)):
            index = first_index + offset
            position = scored.get(offset)
            if position is None:
                events.append(StreamEvent(index=index, score=float("nan"),
                                          is_anomaly=False, flags=("warmup",)))
            else:
                score = float(scores[position])
                events.append(StreamEvent(
                    index=index,
                    score=score,
                    is_anomaly=bool(math.isfinite(score) and score >= threshold),
                ))
        return events

    def _assemble_serial(
        self,
        first_index: int,
        observations: np.ndarray,
        scored_at: list[int],
        windows: list[np.ndarray],
    ) -> list[StreamEvent]:
        """Serial-scoring replay for a batch whose fast path failed."""
        events: list[StreamEvent] = []
        scored = {offset: position for position, offset in enumerate(scored_at)}
        for offset in range(len(observations)):
            index = first_index + offset
            position = scored.get(offset)
            if position is None:
                events.append(StreamEvent(index=index, score=float("nan"),
                                          is_anomaly=False, flags=("warmup",)))
                continue
            score, threshold, flags = self._score_window(windows[position])
            events.append(StreamEvent(
                index=index,
                score=score,
                is_anomaly=bool(math.isfinite(score) and score >= threshold),
                flags=tuple(flags),
            ))
        return events
