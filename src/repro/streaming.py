"""Online (streaming) anomaly detection on top of any fitted detector.

The observability deployments that motivate the paper (Section I) score
telemetry as it arrives, not in offline batches.  :class:`StreamingDetector`
wraps a fitted :class:`~repro.detector.BaseDetector` with a rolling
context buffer: each incoming observation is scored against the most
recent ``context`` observations, so window-based models (TFMAE and the
deep baselines) see a full window ending at the new point.

Notes
-----
* The wrapped detector must already be fit and threshold-calibrated.
* Scores for the same observation can differ slightly from offline
  scoring because the window *ends* at the observation instead of being
  aligned to a fixed grid; ordering of anomalies vs. normals is
  preserved, which is what alerting consumes.
* ``update`` is O(one window score); for high-rate streams, batch with
  ``update_many``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .detector import BaseDetector

__all__ = ["StreamEvent", "StreamingDetector"]


@dataclass(frozen=True)
class StreamEvent:
    """Outcome of scoring one streamed observation."""

    index: int
    score: float
    is_anomaly: bool


class StreamingDetector:
    """Rolling-window online scoring for a fitted detector.

    Parameters
    ----------
    detector:
        A fitted, threshold-calibrated detector.
    context:
        Number of recent observations kept as scoring context.  For
        window-based detectors this should be at least the model's window
        size (e.g. ``config.window_size`` for TFMAE).
    warmup:
        Until this many observations have arrived, events are reported
        with ``is_anomaly=False`` and score 0 — there is not enough
        context to score meaningfully.
    """

    def __init__(self, detector: BaseDetector, context: int = 100, warmup: int | None = None):
        if detector.threshold_ is None:
            raise ValueError("detector must be threshold-calibrated before streaming")
        if context < 2:
            raise ValueError(f"context must be >= 2, got {context}")
        self.detector = detector
        self.context = context
        self.warmup = warmup if warmup is not None else context
        self._buffer: deque[np.ndarray] = deque(maxlen=context)
        self._count = 0

    @property
    def observations_seen(self) -> int:
        return self._count

    def update(self, observation: np.ndarray) -> StreamEvent:
        """Ingest one observation and return its scored event."""
        observation = np.asarray(observation, dtype=np.float64).reshape(-1)
        self._buffer.append(observation)
        index = self._count
        self._count += 1
        if self._count < self.warmup:
            return StreamEvent(index=index, score=0.0, is_anomaly=False)
        window = np.stack(self._buffer)
        # Score the buffered context; the last position is the new point.
        score = float(self.detector.score(window)[-1])
        return StreamEvent(
            index=index,
            score=score,
            is_anomaly=bool(score >= self.detector.threshold_),
        )

    def update_many(self, observations: np.ndarray) -> list[StreamEvent]:
        """Ingest a batch of observations in arrival order."""
        observations = np.atleast_2d(np.asarray(observations, dtype=np.float64))
        return [self.update(row) for row in observations]
