"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-datasets``
    Print the registered benchmark datasets with their Table II statistics.
``list-methods``
    Print TFMAE and the 14 baselines with their paper categories.
``run``
    Train one detector on one dataset and print P/R/F1 under the paper's
    protocol, e.g.::

        python -m repro run --method TFMAE --dataset SMD --scale 0.01 --epochs 6
``serve``
    Host a model registry behind the micro-batched JSON-over-HTTP
    inference server (see docs/serving.md), e.g.::

        python -m repro serve --registry ./model-registry --port 8080
        python -m repro serve --demo          # fit + publish + serve a demo model
``analyze``
    Static analysis (see docs/analysis.md): the repo-invariant linter,
    the interprocedural concurrency pass (lock-order cycles, blocking
    calls under locks, thread-local policy discipline), and/or the model
    shape/dtype/grad-flow checker, e.g.::

        python -m repro analyze --all         # every layer, exit 1 on findings
        python -m repro analyze lint --json
        python -m repro analyze concurrency
        python -m repro analyze shapecheck
"""

from __future__ import annotations

import argparse
import sys

from .baselines import BASELINE_REGISTRY
from .core import TFMAE, TFMAEConfig, preset_for
from .datasets import available_datasets, get_dataset
from .eval import evaluate_detector, format_results_table

__all__ = ["main", "build_parser"]

_CATEGORIES = {
    "LOF": "density", "DAGMM": "density", "IForest": "tree",
    "DSVDD": "clustering", "THOC": "clustering",
    "OmniAno": "reconstruction", "TimesNet": "reconstruction", "GPT4TS": "reconstruction",
    "USAD": "adversarial", "BeatGAN": "adversarial", "DAEMON": "adversarial",
    "TranAD": "adversarial",
    "AnoTran": "contrastive", "DCdetector": "contrastive",
    "TFMAE": "this paper",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TFMAE reproduction (ICDE 2024) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets", help="show registered benchmark datasets")
    sub.add_parser("list-methods", help="show TFMAE and the 14 baselines")

    run = sub.add_parser("run", help="evaluate one method on one dataset")
    run.add_argument("--method", default="TFMAE", choices=sorted(_CATEGORIES))
    run.add_argument("--dataset", default="NIPS-TS-Global", choices=available_datasets())
    run.add_argument("--scale", type=float, default=0.01,
                     help="dataset length multiplier vs Table II (default 0.01)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--epochs", type=int, default=6)
    run.add_argument("--anomaly-ratio", type=float, default=None,
                     help="threshold ratio r%% (default: dataset preset)")
    run.add_argument("--no-adjust", action="store_true",
                     help="skip point adjustment when computing metrics")
    run.add_argument("--checkpoint-dir", default=None,
                     help="TFMAE only: write atomic training checkpoints to "
                          "this directory (see docs/robustness.md)")
    run.add_argument("--resume", action="store_true",
                     help="TFMAE only: resume training from --checkpoint-dir "
                          "when a compatible checkpoint exists")

    serve = sub.add_parser("serve", help="serve registered models over HTTP")
    serve.add_argument("--registry", default="./model-registry",
                       help="model registry directory (default ./model-registry)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port; 0 binds an ephemeral port")
    serve.add_argument("--max-batch-size", type=int, default=32,
                       help="most windows coalesced into one forward pass")
    serve.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="longest a request waits for its batch to fill")
    serve.add_argument("--queue-size", type=int, default=256,
                       help="bounded request queue; beyond it requests are "
                            "shed with HTTP 429")
    serve.add_argument("--threads", type=int, default=None,
                       help="scoring worker threads for the in-process tier "
                            "(default 2; ignored when --procs > 0)")
    serve.add_argument("--procs", type=int, default=0,
                       help="scoring worker processes (shards past the GIL "
                            "with shared-memory weights); 0 keeps the "
                            "in-process thread tier")
    serve.add_argument("--max-inflight", type=int, default=64,
                       help="per-model in-flight quota in the process tier; "
                            "beyond it requests are shed with HTTP 429")
    serve.add_argument("--workers", type=int, default=None,
                       help="deprecated alias for --threads")
    serve.add_argument("--load-retries", type=int, default=2,
                       help="transient artifact-load failures retried per "
                            "request (capped exponential backoff)")
    serve.add_argument("--retry-backoff", type=float, default=0.05,
                       help="base backoff delay in seconds between load retries")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive load failures before a model's "
                            "circuit breaker opens")
    serve.add_argument("--breaker-reset", type=float, default=30.0,
                       help="seconds an open circuit breaker waits before "
                            "admitting a half-open probe load")
    serve.add_argument("--demo", action="store_true",
                       help="fit a small TFMAE on synthetic data, publish it "
                            "as 'demo', then serve (no registry required)")

    analyze = sub.add_parser(
        "analyze", help="repo linter, concurrency analyzer, model shape checker")
    analyze.add_argument("what", nargs="?",
                         choices=["lint", "concurrency", "shapecheck"],
                         help="run one layer only (default: all of them)")
    analyze.add_argument("--all", action="store_true", dest="run_all",
                         help="run every analysis layer (the default when no "
                              "positional is given)")
    analyze.add_argument("--json", action="store_true",
                         help="machine-readable lint report")
    analyze.add_argument("--path", action="append", default=None,
                         help="file or tree to lint (repeatable; default: the "
                              "installed repro package)")
    return parser


def _build_detector(args: argparse.Namespace):
    if args.method == "TFMAE":
        base = TFMAEConfig(window_size=100, d_model=32, num_layers=2, num_heads=4,
                           batch_size=16, epochs=args.epochs, learning_rate=1e-3,
                           seed=args.seed)
        overrides = {}
        if args.anomaly_ratio is not None:
            overrides["anomaly_ratio"] = args.anomaly_ratio
        if args.checkpoint_dir is not None:
            overrides["checkpoint_dir"] = args.checkpoint_dir
            overrides["resume"] = args.resume
        elif args.resume:
            raise SystemExit("--resume requires --checkpoint-dir")
        return TFMAE(preset_for(args.dataset, base=base, **overrides))
    if args.checkpoint_dir is not None or args.resume:
        raise SystemExit("--checkpoint-dir/--resume are only supported for --method TFMAE")
    ctor = BASELINE_REGISTRY[args.method]
    ratio = args.anomaly_ratio if args.anomaly_ratio is not None else 1.0
    if args.method in ("LOF", "IForest"):
        return ctor(anomaly_ratio=ratio, seed=args.seed)
    return ctor(window_size=100, epochs=args.epochs, batch_size=16,
                anomaly_ratio=ratio, seed=args.seed)


def _validate_serve_args(args: argparse.Namespace) -> None:
    """Reject nonsensical worker/quota counts before any socket binds."""
    if args.procs < 0:
        raise SystemExit(f"--procs must be >= 0, got {args.procs}")
    for flag, value in (("--threads", args.threads), ("--workers", args.workers)):
        if value is not None and value < 1:
            raise SystemExit(f"{flag} must be >= 1, got {value}")
    if args.max_inflight < 1:
        raise SystemExit(f"--max-inflight must be >= 1, got {args.max_inflight}")


def _resolve_serve_threads(args: argparse.Namespace) -> int:
    """Thread-worker count from --threads, honouring the --workers alias."""
    if args.workers is not None:
        import warnings

        warnings.warn(
            "--workers is deprecated; use --threads (thread tier) or "
            "--procs (process tier) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if args.threads is None:
            return args.workers
    return args.threads if args.threads is not None else 2


def _build_server(args: argparse.Namespace):
    """Construct (but do not start) the inference server for ``serve``."""
    from .serve import InferenceServer, ModelRegistry

    _validate_serve_args(args)
    registry = ModelRegistry(
        args.registry,
        load_retries=args.load_retries,
        retry_backoff=args.retry_backoff,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
    )
    if args.demo:
        print("fitting demo TFMAE on a small NIPS-TS-Global realisation...")
        dataset = get_dataset("NIPS-TS-Global", seed=0, scale=0.02).normalised()
        config = TFMAEConfig(window_size=100, d_model=32, num_layers=2, num_heads=4,
                             anomaly_ratio=2.5, epochs=3, batch_size=16,
                             learning_rate=1e-3)
        detector = TFMAE(config)
        detector.fit(dataset.train, dataset.validation)
        version = registry.publish("demo", detector)
        print(f"published demo:{version} to {args.registry}")
    elif not registry.models():
        raise SystemExit(
            f"registry {args.registry} has no models; publish one with "
            "repro.serve.ModelRegistry.publish() or pass --demo"
        )
    return InferenceServer(
        registry,
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch_size,
        max_delay=args.max_delay_ms / 1000.0,
        max_queue=args.queue_size,
        workers=_resolve_serve_threads(args),
        procs=args.procs,
        max_inflight_per_model=args.max_inflight,
    )


def _run_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import (
        ShapeCheckError,
        analyze_concurrency,
        format_json,
        format_text,
        lint_paths,
        preflight_model,
        stale_suppressions,
    )

    run_lint = args.run_all or args.what in (None, "lint")
    run_concurrency = args.run_all or args.what in (None, "concurrency")
    run_shapecheck = args.run_all or args.what in (None, "shapecheck")
    exit_code = 0

    if run_lint or run_concurrency:
        paths = args.path if args.path else [str(Path(__file__).parent)]
        violations = []
        if run_lint:
            violations.extend(lint_paths(paths))
        if run_concurrency:
            violations.extend(analyze_concurrency(paths))
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        print(format_json(violations) if args.json else format_text(violations))
        if violations:
            exit_code = 1
        if run_lint:
            # Stale ``# repro: noqa[...]`` markers: warnings only — a
            # suppression that no longer suppresses anything would
            # silently swallow a future regression.  Concurrency raw
            # findings feed in so cross-file suppressions stay honest.
            raw = analyze_concurrency(paths, respect_noqa=False)
            stream = sys.stderr if args.json else sys.stdout
            for path, line, code in stale_suppressions(paths, extra_raw=raw):
                print(f"warning: {path}:{line}: stale suppression "
                      f"noqa[{code}] — the rule no longer fires here",
                      file=stream)

    if run_shapecheck:
        from .core.model import TFMAEModel

        # The shipped graphs: full model, both precision policies, and the
        # ablation branches that rewire the architecture.
        variants: dict[str, dict] = {
            "default": {},
            "float32": {"compute_dtype": "float32"},
            "temporal-only": {"use_frequency_branch": False},
            "frequency-only": {"use_temporal_branch": False},
            "non-adversarial": {"adversarial": False},
        }
        for name, overrides in variants.items():
            model = TFMAEModel(n_features=3, config=TFMAEConfig(**overrides))
            try:
                report = preflight_model(model)
                print(f"shapecheck {name}: {report.summary()}")
            except ShapeCheckError as error:
                print(f"shapecheck {name}: FAILED\n{error}")
                exit_code = 1

    return exit_code


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list-datasets":
        print(f"{'dataset':<18} {'dim':>4} {'train':>9} {'val':>9} {'test':>9} {'AR%':>6}")
        for name in available_datasets():
            summary = get_dataset(name, scale=0.01).summary()
            print(f"{name:<18} {summary['dimension']:>4} {summary['train']:>9} "
                  f"{summary['validation']:>9} {summary['test']:>9} "
                  f"{summary['anomaly_ratio_pct']:>6.1f}")
        print("(lengths shown at scale=0.01; multiply by 100 for Table II sizes)")
        return 0

    if args.command == "list-methods":
        for name in sorted(_CATEGORIES):
            print(f"{name:<12} {_CATEGORIES[name]}")
        return 0

    if args.command == "serve":
        _build_server(args).serve_forever()
        return 0

    if args.command == "analyze":
        return _run_analyze(args)

    # run
    dataset = get_dataset(args.dataset, seed=args.seed, scale=args.scale)
    detector = _build_detector(args)
    result = evaluate_detector(detector, dataset, adjust=not args.no_adjust)
    log = getattr(detector, "training_log", None)
    if log is not None and log.resumed:
        print(f"resumed from checkpoint in {args.checkpoint_dir}")
    print(format_results_table([result], title=f"{args.method} on {args.dataset}"))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
