"""Efficiency measurement for the Fig. 10 comparison.

The paper plots F1 vs. training speed vs. GPU memory on SMD.  The CPU
substitute measures wall-clock training throughput and peak Python heap
allocation via ``tracemalloc`` — the *relative* ordering across methods is
what Fig. 10 argues about, and that survives the substitution.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass

from ..datasets.base import TimeSeriesDataset
from ..detector import BaseDetector

__all__ = ["EfficiencyProfile", "profile_detector"]


@dataclass(frozen=True)
class EfficiencyProfile:
    """Training cost measurements for one detector."""

    detector: str
    fit_seconds: float
    peak_memory_mb: float
    throughput_obs_per_s: float

    def row(self) -> dict[str, object]:
        return {
            "detector": self.detector,
            "fit_s": round(self.fit_seconds, 3),
            "peak_MB": round(self.peak_memory_mb, 1),
            "obs_per_s": round(self.throughput_obs_per_s, 1),
        }


def profile_detector(detector: BaseDetector, dataset: TimeSeriesDataset) -> EfficiencyProfile:
    """Measure training wall-clock and peak heap for one detector."""
    data = dataset.normalised()
    tracemalloc.start()
    start = time.perf_counter()
    detector.fit(data.train, data.validation)
    fit_seconds = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return EfficiencyProfile(
        detector=detector.name,
        fit_seconds=fit_seconds,
        peak_memory_mb=peak_bytes / (1024.0 * 1024.0),
        throughput_obs_per_s=data.train.shape[0] / max(fit_seconds, 1e-9),
    )
