"""Evaluation harness: the shared protocol and efficiency profiling."""

from .attribution import channel_attribution, statistic_attribution, top_channels
from .efficiency import EfficiencyProfile, profile_detector
from .protocol import EvaluationResult, evaluate_detector, format_results_table
from .tuning import GridResult, grid_search

__all__ = [
    "EvaluationResult",
    "evaluate_detector",
    "format_results_table",
    "EfficiencyProfile",
    "profile_detector",
    "channel_attribution",
    "statistic_attribution",
    "top_channels",
    "GridResult",
    "grid_search",
]
