"""Hyper-parameter search over TFMAE configurations.

The paper's Figures 6-7 are grid sensitivity studies; this module turns
that machinery into a user-facing tuner: evaluate a grid of
:class:`~repro.core.config.TFMAEConfig` overrides on a dataset and return
the configurations ranked by point-adjusted F1 (or ROC-AUC when
labels are too sparse for a stable F1).

The search trains one model per grid point — at reproduction scale that
is seconds per point, so exhaustive grids stay practical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.config import TFMAEConfig
from ..core.detector import TFMAE
from ..datasets.base import TimeSeriesDataset
from ..metrics.classification import evaluate_detection
from ..metrics.ranking import roc_auc

__all__ = ["GridResult", "grid_search"]


@dataclass(frozen=True)
class GridResult:
    """Outcome of one grid point."""

    overrides: dict
    f1: float
    auc: float

    def __str__(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.overrides.items())
        return f"F1={self.f1 * 100:.2f}% AUC={self.auc:.3f}  ({params})"


def grid_search(
    dataset: TimeSeriesDataset,
    grid: dict[str, list],
    base: TFMAEConfig | None = None,
    objective: str = "f1",
    normalise: bool = True,
) -> list[GridResult]:
    """Exhaustive search over the cartesian product of ``grid``.

    Parameters
    ----------
    dataset:
        Benchmark dataset with labelled test split.
    grid:
        Mapping of :class:`TFMAEConfig` field names to candidate values,
        e.g. ``{"temporal_mask_ratio": [25, 55], "num_layers": [1, 2]}``.
    base:
        Config the overrides are applied to (defaults to ``TFMAEConfig()``).
    objective:
        ``"f1"`` (point-adjusted, via the calibrated threshold) or
        ``"auc"`` (threshold-free).

    Returns
    -------
    list[GridResult]
        All grid points, best first by the chosen objective.
    """
    if objective not in ("f1", "auc"):
        raise ValueError(f"objective must be 'f1' or 'auc', got {objective!r}")
    if not grid:
        raise ValueError("grid must contain at least one parameter")
    base = base if base is not None else TFMAEConfig()
    data = dataset.normalised() if normalise else dataset

    names = list(grid)
    results: list[GridResult] = []
    for values in itertools.product(*(grid[name] for name in names)):
        overrides = dict(zip(names, values))
        detector = TFMAE(base.with_overrides(**overrides))
        detector.fit(data.train, data.validation)
        scores = detector.score(data.test)
        predictions = detector.predict(data.test)
        f1 = evaluate_detection(predictions, data.test_labels).f1
        auc = roc_auc(scores, data.test_labels)
        results.append(GridResult(overrides=overrides, f1=f1, auc=auc))

    key = (lambda r: r.f1) if objective == "f1" else (lambda r: r.auc)
    return sorted(results, key=key, reverse=True)
