"""Channel attribution: which features drove an alarm.

Operators triaging an incident need to know *which* sensors caused the
anomaly score, not just when it fired.  This module provides a
model-agnostic attribution that works with every detector in the library:
for one channel at a time, the investigated positions are replaced with a
linear interpolation through the channel's surrounding (unflagged)
values — "what if this sensor had behaved normally right here" — and the
drop in anomaly score at those positions is the channel's contribution.

The interpolation baseline matters: occluding a whole channel with a
constant is itself a pattern anomaly to pattern-sensitive models (TFMAE's
frequency view flags flatlined channels), which would corrupt the
measurement.  Targeted interpolation only removes the suspect behaviour.

This is an occlusion-style explanation — O(N) extra scoring passes per
investigated window, intended for incident investigation rather than bulk
scoring.
"""

from __future__ import annotations

import numpy as np

from ..detector import BaseDetector
from ..masking.temporal import coefficient_of_variation_fft

__all__ = ["channel_attribution", "statistic_attribution", "top_channels"]


def channel_attribution(
    detector: BaseDetector,
    window: np.ndarray,
    positions: np.ndarray | None = None,
) -> np.ndarray:
    """Per-channel contribution to the anomaly score of ``window``.

    Parameters
    ----------
    detector:
        A fitted detector.
    window:
        ``(time, features)`` slice of the series around the alarm.
    positions:
        Indices within the window whose scores are attributed (default:
        the single highest-scoring position).

    Returns
    -------
    numpy.ndarray
        ``(features,)`` non-negative attribution — the score mass removed
        by occluding each channel, clipped at zero and normalised to sum
        to 1 when any channel matters.
    """
    if window.ndim != 2:
        raise ValueError(f"window must be (time, features), got {window.shape}")
    base_scores = detector.score(window)
    if positions is None:
        positions = np.array([int(np.argmax(base_scores))])
    positions = np.asarray(positions, dtype=np.int64)
    base = base_scores[positions].sum()

    time, n_features = window.shape
    keep = np.setdiff1d(np.arange(time), positions)
    drops = np.zeros(n_features)
    for channel in range(n_features):
        occluded = window.copy()
        if keep.size:
            occluded[positions, channel] = np.interp(positions, keep, window[keep, channel])
        occluded_scores = detector.score(occluded)
        drops[channel] = base - occluded_scores[positions].sum()

    drops = np.clip(drops, 0.0, None)
    total = drops.sum()
    return drops / total if total > 0 else drops


def statistic_attribution(
    window: np.ndarray,
    positions: np.ndarray,
    statistic_window: int = 10,
) -> np.ndarray:
    """Attribute an alarm to channels via the paper's own masking statistic.

    TFMAE's anomaly criterion is a discrepancy between whole-window views,
    and its masking is input-dependent, so occlusion attribution
    (:func:`channel_attribution`) is unreliable for it: editing a channel
    changes *which* positions get masked and the score landscape shifts
    wholesale.  Instead, attribute with the model's own notion of
    suspicion — the per-channel share of the windowed coefficient of
    variation (Eq. 1) at the flagged positions.  Cheap (no extra scoring
    passes), model-free, and consistent with what TFMAE masks.

    Returns a ``(features,)`` attribution normalised to sum to 1.
    """
    if window.ndim != 2:
        raise ValueError(f"window must be (time, features), got {window.shape}")
    positions = np.asarray(positions, dtype=np.int64)
    # Per-channel CoV: run the statistic on each channel independently.
    per_channel = np.stack([
        coefficient_of_variation_fft(window[:, [channel]], statistic_window)
        for channel in range(window.shape[1])
    ], axis=1)  # (time, features)
    contribution = per_channel[positions].sum(axis=0)
    total = contribution.sum()
    return contribution / total if total > 0 else contribution


def top_channels(attribution: np.ndarray, k: int = 3) -> list[tuple[int, float]]:
    """The ``k`` highest-attribution channels as ``(index, share)`` pairs."""
    if k < 1:
        raise ValueError("k must be >= 1")
    order = np.argsort(attribution)[::-1][:k]
    return [(int(index), float(attribution[index])) for index in order]
