"""Unified evaluation protocol (paper Section V-A / Table III).

One function runs the full pipeline for any detector and dataset:
z-score normalisation fit on train, unsupervised training, threshold
calibration on the validation split at the dataset's ``r%``, scoring the
test split, point adjustment, and precision/recall/F1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..datasets.base import TimeSeriesDataset
from ..detector import BaseDetector
from ..metrics.classification import DetectionMetrics, evaluate_detection

__all__ = ["EvaluationResult", "evaluate_detector", "format_results_table"]


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of one (detector, dataset) evaluation."""

    detector: str
    dataset: str
    metrics: DetectionMetrics
    threshold: float
    fit_seconds: float
    score_seconds: float

    def row(self) -> dict[str, object]:
        p, r, f1 = self.metrics.as_percent()
        return {
            "detector": self.detector,
            "dataset": self.dataset,
            "P": round(p, 2),
            "R": round(r, 2),
            "F1": round(f1, 2),
            "fit_s": round(self.fit_seconds, 2),
            "score_s": round(self.score_seconds, 2),
        }


def evaluate_detector(
    detector: BaseDetector,
    dataset: TimeSeriesDataset,
    adjust: bool = True,
    normalise: bool = True,
) -> EvaluationResult:
    """Run the paper's protocol for one detector on one dataset.

    Parameters
    ----------
    adjust:
        Apply point adjustment before computing metrics (paper default).
    normalise:
        Z-score all splits with train statistics first (paper default).
    """
    data = dataset.normalised() if normalise else dataset

    start = time.perf_counter()
    detector.fit(data.train, data.validation)
    fit_seconds = time.perf_counter() - start

    start = time.perf_counter()
    predictions = detector.predict(data.test)
    score_seconds = time.perf_counter() - start

    metrics = evaluate_detection(predictions, data.test_labels, adjust=adjust)
    return EvaluationResult(
        detector=detector.name,
        dataset=dataset.name,
        metrics=metrics,
        threshold=float(detector.threshold_),
        fit_seconds=fit_seconds,
        score_seconds=score_seconds,
    )


def format_results_table(results: list[EvaluationResult], title: str = "") -> str:
    """Render results as a fixed-width text table (P/R/F1 in percent)."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'detector':<12} {'dataset':<18} {'P':>7} {'R':>7} {'F1':>7} {'fit_s':>8} {'score_s':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for result in results:
        row = result.row()
        lines.append(
            f"{row['detector']:<12} {row['dataset']:<18} {row['P']:>7.2f} {row['R']:>7.2f} "
            f"{row['F1']:>7.2f} {row['fit_s']:>8.2f} {row['score_s']:>8.2f}"
        )
    return "\n".join(lines)
