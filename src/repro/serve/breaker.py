"""Circuit breaker and retry policy for artifact loading.

The failure modes these guard against are *load-time*, not score-time: a
model whose artifact reads keep failing (disk fault, corrupt publish,
poisoned cache host) must stop consuming retry budget on every request
and must never take healthy models down with it.  The registry keeps one
:class:`CircuitBreaker` per model name:

* **closed** — loads proceed normally; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures, loads are
  refused outright for ``reset_timeout`` seconds.  The registry then
  serves the last-good resident version when one exists, or raises
  :class:`~repro.serve.errors.CircuitOpen` (HTTP 503 + ``Retry-After``).
* **half-open** — once the timeout elapses, exactly one probe load is
  admitted; success closes the breaker, failure re-opens it for a fresh
  timeout.

:class:`RetryPolicy` is the companion for *transient* failures: capped
exponential backoff (``base_delay * 2**attempt``, capped at
``max_delay``), applied before a failure ever reaches the breaker.

Both take injectable clocks/sleepers so tests and the chaos harness can
run them at simulated time.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator

from ..analysis.lockcheck import named_lock

__all__ = ["CircuitBreaker", "RetryPolicy"]


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be > 0, got {reset_timeout}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = named_lock("serve.breaker")
        self._failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"``."""
        with self._lock:
            return self._state_unlocked()

    def _state_unlocked(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.reset_timeout:
            return "half_open"
        return "open"

    @property
    def retry_after(self) -> float:
        """Seconds until the breaker half-opens (0 when not open)."""
        with self._lock:
            if self._opened_at is None:
                return 0.0
            return max(0.0, self.reset_timeout - (self._clock() - self._opened_at))

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a load attempt may proceed right now.

        Closed always allows; open refuses; half-open admits exactly one
        probe at a time (concurrent callers are refused until the probe
        reports success or failure).
        """
        with self._lock:
            state = self._state_unlocked()
            if state == "closed":
                return True
            if state == "half_open" and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        """A load succeeded: close the breaker and reset the count."""
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probe_in_flight = False

    def record_failure(self) -> bool:
        """A load failed (after retries); returns True when now open."""
        with self._lock:
            self._probe_in_flight = False
            if self._opened_at is not None:
                # Half-open probe failed (or a straggler while open):
                # restart the timeout from now.
                self._opened_at = self._clock()
                return True
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
                return True
            return False

    def force_open(self) -> None:
        """Open immediately (operator action / chaos harness / tests)."""
        with self._lock:
            self._failures = self.failure_threshold
            self._opened_at = self._clock()
            self._probe_in_flight = False


class RetryPolicy:
    """Capped exponential backoff for transient load failures."""

    def __init__(
        self,
        retries: int = 2,
        base_delay: float = 0.05,
        max_delay: float = 1.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if base_delay < 0 or max_delay < base_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay, got {base_delay}/{max_delay}"
            )
        self.retries = retries
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._sleep = sleep

    def delays(self) -> Iterator[float]:
        """The backoff schedule: one capped-exponential delay per retry."""
        for attempt in range(self.retries):
            yield min(self.max_delay, self.base_delay * (2.0 ** attempt))

    def sleep(self, delay: float) -> None:
        self._sleep(delay)
