"""Model lifecycle guardrails: drift → refit → shadow → publish → watchdog.

The paper's serving story (Section I: score live telemetry, alert on
threshold crossings) implicitly assumes the model stays valid forever.
Real telemetry drifts — the score distribution the threshold was
calibrated against (Fig. 9) walks away from the validation split — and
refreshed models can be *worse* than what they replace.  This module
closes the loop with four stages, each independently testable:

1. :class:`DriftMonitor` — consumes live scores (or
   :class:`~repro.streaming.StreamEvent` streams) and compares their
   rolling distribution against the calibration reference with the same
   KS/CDF-gap measures :mod:`repro.metrics.distribution` uses for the
   Fig. 9 analysis.  ``patience`` consecutive breaches raise the drift
   flag — a single anomalous burst (which is *signal*, not drift) does
   not.
2. :func:`shadow_compare` — scores the candidate and the live model on
   the **same** windows and only agrees when the score distributions are
   close (KS within budget) and the threshold-crossing decisions match
   on at least ``min_agreement`` of windows.  A candidate that would
   re-alert the fleet never reaches the live pointer.
3. :meth:`LifecycleManager.publish_guarded` — publishes the candidate,
   records the prior live version in the registry's atomic LIVE pointer,
   and snapshots the prior model's probe scores so the watchdog has a
   baseline to diff against.
4. :meth:`LifecycleManager.watchdog_check` — post-publish regression
   gate: non-finite probe scores (attributed to the culpable op via
   :class:`repro.analysis.detect_anomaly` when configured), score
   divergence vs. the prior snapshot, server error rate, and latency
   p99 from :class:`~repro.serve.metrics.MetricsRegistry`.  Any breach
   triggers :meth:`LifecycleManager.rollback` — one atomic
   ``demote_live`` that restores the prior version for every subsequent
   request.

Candidates are always built from :meth:`ModelRegistry.load_fresh`
instances, never the cached live object — an incremental refit must not
mutate weights under in-flight batches (the swap-safety contract
asserted in ``tests/serve/test_lifecycle.py``).
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from ..detector import BaseDetector
from ..metrics.distribution import cdf_gap, ks_distance
from .errors import ModelNotFound, RegistryError
from .metrics import MetricsRegistry
from .registry import ModelRegistry

__all__ = [
    "DriftMonitor",
    "DriftReport",
    "ShadowReport",
    "shadow_compare",
    "LifecycleManager",
    "RefreshReport",
    "WatchdogReport",
    "RollbackRecord",
]


# ----------------------------------------------------------------------
# stage 1: drift detection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DriftReport:
    """Outcome of one drift check against the calibration reference."""

    drifted: bool
    ks: float
    gap: float
    samples: int
    breaches: int

    def __str__(self) -> str:
        verdict = "DRIFTED" if self.drifted else "stable"
        return (
            f"{verdict}: ks={self.ks:.3f} gap={self.gap:.3f} "
            f"over {self.samples} live scores ({self.breaches} consecutive breaches)"
        )


class DriftMonitor:
    """Rolling score-distribution drift detector for one served model.

    Parameters
    ----------
    reference_scores:
        Scores of the *calibration* split (what the threshold was fit
        against) — the distribution live scores are expected to match.
    ks_threshold:
        KS distance above which a check counts as a breach.
    window:
        Number of most-recent live scores compared against the reference.
    min_samples:
        Checks before this many live scores are collected report
        ``drifted=False`` — a distribution of five points is noise.
    patience:
        Consecutive breaching checks required before ``drifted=True``.
        Anomalous bursts breach once and recover; real drift persists.
    """

    def __init__(
        self,
        reference_scores: np.ndarray,
        ks_threshold: float = 0.25,
        window: int = 512,
        min_samples: int = 64,
        patience: int = 2,
    ):
        reference = np.asarray(reference_scores, dtype=np.float64).reshape(-1)
        reference = reference[np.isfinite(reference)]
        if reference.size < 2:
            raise ValueError(
                f"need at least 2 finite reference scores, got {reference.size}"
            )
        if not 0.0 < ks_threshold <= 1.0:
            raise ValueError(f"ks_threshold must be in (0, 1], got {ks_threshold}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.reference = reference
        self.ks_threshold = ks_threshold
        self.min_samples = max(2, min_samples)
        self.patience = patience
        self._live: deque[float] = deque(maxlen=window)
        self._breaches = 0

    @property
    def samples(self) -> int:
        return len(self._live)

    def observe(self, scores: float | np.ndarray | Iterable[float]) -> None:
        """Feed live anomaly scores (non-finite values are dropped)."""
        values = np.asarray(scores, dtype=np.float64).reshape(-1)
        for value in values[np.isfinite(values)]:
            self._live.append(float(value))

    def observe_events(self, events: Iterable) -> None:
        """Feed :class:`~repro.streaming.StreamEvent` objects directly.

        Warmup/degraded events carry NaN scores and are skipped — only
        genuine scores inform the drift decision.
        """
        self.observe([event.score for event in events])

    def check(self) -> DriftReport:
        """Compare the live window against the reference; update patience."""
        if len(self._live) < self.min_samples:
            return DriftReport(drifted=False, ks=0.0, gap=0.0,
                               samples=len(self._live), breaches=self._breaches)
        live = np.fromiter(self._live, dtype=np.float64)
        ks = ks_distance(self.reference, live)
        gap = cdf_gap(self.reference, live)
        if ks > self.ks_threshold:
            self._breaches += 1
        else:
            self._breaches = 0
        return DriftReport(
            drifted=self._breaches >= self.patience,
            ks=ks,
            gap=gap,
            samples=live.size,
            breaches=self._breaches,
        )

    def rebase(self, reference_scores: np.ndarray) -> None:
        """Swap the reference (after a refresh) and clear live state."""
        reference = np.asarray(reference_scores, dtype=np.float64).reshape(-1)
        reference = reference[np.isfinite(reference)]
        if reference.size < 2:
            raise ValueError(
                f"need at least 2 finite reference scores, got {reference.size}"
            )
        self.reference = reference
        self._live.clear()
        self._breaches = 0


# ----------------------------------------------------------------------
# stage 2: shadow scoring
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShadowReport:
    """Live-vs-candidate comparison on identical windows."""

    agreed: bool
    ks: float
    gap: float
    agreement: float
    live_crossings: int
    candidate_crossings: int
    windows: int
    reasons: tuple[str, ...] = field(default=())


def shadow_compare(
    live: BaseDetector,
    candidate: BaseDetector,
    windows: np.ndarray,
    max_ks: float = 0.25,
    min_agreement: float = 0.9,
) -> ShadowReport:
    """Run candidate and live on the same windows; agree only within budget.

    Both detectors score through their batched
    :meth:`~repro.detector.BaseDetector.score_last` (the serving hot
    path, so the shadow run measures exactly what production would see).
    Agreement requires **both**: score distributions within ``max_ks``
    KS distance, and matching threshold-crossing decisions on at least
    ``min_agreement`` of the windows.
    """
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim != 3 or windows.shape[0] < 1:
        raise ValueError(
            f"windows must be (batch, time, features), got shape {windows.shape}"
        )
    if live.threshold_ is None or candidate.threshold_ is None:
        raise ValueError("both detectors must be threshold-calibrated for shadowing")
    live_scores = np.asarray(live.score_last(windows), dtype=np.float64)
    candidate_scores = np.asarray(candidate.score_last(windows), dtype=np.float64)
    reasons: list[str] = []
    if not np.all(np.isfinite(candidate_scores)):
        bad = int(np.sum(~np.isfinite(candidate_scores)))
        return ShadowReport(
            agreed=False, ks=float("inf"), gap=float("inf"), agreement=0.0,
            live_crossings=int(np.sum(live_scores >= live.threshold_)),
            candidate_crossings=0, windows=len(windows),
            reasons=(f"candidate produced {bad} non-finite scores",),
        )
    ks = ks_distance(live_scores, candidate_scores)
    gap = cdf_gap(live_scores, candidate_scores)
    live_hits = live_scores >= float(live.threshold_)
    candidate_hits = candidate_scores >= float(candidate.threshold_)
    agreement = float(np.mean(live_hits == candidate_hits))
    if ks > max_ks:
        reasons.append(f"score distributions diverge: ks={ks:.3f} > {max_ks:.3f}")
    if agreement < min_agreement:
        reasons.append(
            f"threshold decisions agree on {agreement:.1%} of windows "
            f"(< {min_agreement:.1%})"
        )
    return ShadowReport(
        agreed=not reasons,
        ks=ks,
        gap=gap,
        agreement=agreement,
        live_crossings=int(np.sum(live_hits)),
        candidate_crossings=int(np.sum(candidate_hits)),
        windows=len(windows),
        reasons=tuple(reasons),
    )


# ----------------------------------------------------------------------
# stages 3-4: guarded publish, watchdog, rollback
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RefreshReport:
    """Outcome of one drift-triggered refresh attempt."""

    refreshed: bool
    reason: str
    drift: DriftReport | None = None
    shadow: ShadowReport | None = None
    version: str | None = None
    #: Wall-clock seconds the candidate refit took (None when the drift
    #: gate stopped the attempt before training).  The compiled train
    #: step (repro.nn.jit_train) drives this number; the lifecycle bench
    #: tracks it across refreshes.
    refit_seconds: float | None = None


@dataclass(frozen=True)
class WatchdogReport:
    """Outcome of one post-publish regression check."""

    healthy: bool
    reasons: tuple[str, ...]
    checks: dict
    rolled_back: bool = False
    restored: str | None = None


@dataclass(frozen=True)
class RollbackRecord:
    """One rollback event: what was demoted, what serves now, and why."""

    name: str
    demoted: str
    restored: str
    reason: str
    latency: float  # seconds from publish to rollback


class LifecycleManager:
    """Orchestrates the refresh loop for one registered model.

    Parameters
    ----------
    registry / name:
        The model's home registry and its registered name.
    drift:
        A :class:`DriftMonitor` fed by the caller (``observe`` /
        ``observe_events``).  Optional — ``refresh(force=True)`` works
        without one.
    refit:
        ``refit(candidate, recent, validation)`` trains the fresh
        candidate instance in place.  Defaults to calling the
        detector's own ``refit`` method (TFMAE has one).
    shadow_max_ks / shadow_min_agreement:
        Budgets for :func:`shadow_compare` at refresh time.
    watchdog_max_ks:
        Post-publish divergence budget between the live model's probe
        scores and the prior version's snapshot.
    max_error_rate:
        Fraction of 5xx responses (per this model, from ``metrics``)
        above which the watchdog rolls back.
    max_latency_p99:
        Seconds; ``/score`` latency p99 budget (``None`` disables).
    metrics:
        The serving :class:`MetricsRegistry` (error rate and latency
        checks are skipped when absent).
    detect_anomaly:
        When True, a non-finite probe score is re-run through
        :class:`repro.analysis.detect_anomaly` (JIT off, so op dispatch
        is observable) and the rollback reason names the culpable op.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        name: str,
        drift: DriftMonitor | None = None,
        refit: Callable[[BaseDetector, np.ndarray, np.ndarray | None], None] | None = None,
        shadow_max_ks: float = 0.25,
        shadow_min_agreement: float = 0.9,
        watchdog_max_ks: float = 0.35,
        max_error_rate: float = 0.1,
        max_latency_p99: float | None = None,
        metrics: MetricsRegistry | None = None,
        detect_anomaly: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.registry = registry
        self.name = name
        self.drift = drift
        self._refit = refit
        self.shadow_max_ks = shadow_max_ks
        self.shadow_min_agreement = shadow_min_agreement
        self.watchdog_max_ks = watchdog_max_ks
        self.max_error_rate = max_error_rate
        self.max_latency_p99 = max_latency_p99
        self.metrics = metrics
        self.detect_anomaly = detect_anomaly
        self._clock = clock
        self._probe_windows: np.ndarray | None = None
        self._prior_scores: np.ndarray | None = None
        self._prior_version: str | None = None
        self._published_at: float | None = None
        #: Publish/rollback history, oldest first (RollbackRecord and
        #: ``("publish", version)`` tuples) — the audit trail tests read.
        self.history: list = []

    # ------------------------------------------------------------------
    # publish / rollback
    # ------------------------------------------------------------------
    def publish_guarded(
        self,
        candidate: BaseDetector,
        probe_windows: np.ndarray,
        version: str | None = None,
    ) -> str:
        """Publish ``candidate``, promote it, and arm the watchdog.

        Before the pointer moves, the **prior** live model's scores on
        ``probe_windows`` are snapshotted — the baseline
        :meth:`watchdog_check` diffs against, and what a rollback must
        restore bitwise (versions are immutable, so it does).
        """
        probe_windows = np.asarray(probe_windows, dtype=np.float64)
        if probe_windows.ndim != 3 or probe_windows.shape[0] < 1:
            raise ValueError(
                f"probe_windows must be (batch, time, features), "
                f"got shape {probe_windows.shape}"
            )
        prior_scores = None
        try:
            prior_detector, _ = self.registry.load(self.name)
            prior_scores = np.asarray(
                prior_detector.score_last(probe_windows), dtype=np.float64
            )
        except (ModelNotFound, RegistryError):
            pass  # first publish of this name: no baseline yet
        published = self.registry.publish(self.name, candidate, version=version)
        prior = self.registry.set_live(self.name, published)
        self._probe_windows = probe_windows
        self._prior_scores = prior_scores
        self._prior_version = prior
        self._published_at = self._clock()
        self.history.append(("publish", published))
        return published

    def rollback(self, reason: str) -> RollbackRecord:
        """Demote the live version to its recorded prior, atomically."""
        demoted = self.registry.live_version(self.name)
        restored = self.registry.demote_live(self.name)
        latency = (
            self._clock() - self._published_at
            if self._published_at is not None
            else float("nan")
        )
        record = RollbackRecord(
            name=self.name, demoted=demoted, restored=restored,
            reason=reason, latency=latency,
        )
        self.history.append(record)
        self._published_at = None
        if self.metrics is not None:
            self.metrics.counter("serve_rollbacks_total", model=self.name).inc()
        return record

    # ------------------------------------------------------------------
    # drift-triggered refresh
    # ------------------------------------------------------------------
    def refresh(
        self,
        recent: np.ndarray,
        validation: np.ndarray | None = None,
        probe_windows: np.ndarray | None = None,
        force: bool = False,
    ) -> RefreshReport:
        """The full loop: drift gate → fresh refit → shadow gate → publish.

        ``recent`` is the (time, features) slice of live telemetry to
        refit on; ``probe_windows`` default to sliding windows over it.
        ``force=True`` skips the drift gate (operator-initiated refresh).
        """
        drift_report = None
        if not force:
            if self.drift is None:
                raise ValueError(
                    "refresh() without force=True needs a DriftMonitor"
                )
            drift_report = self.drift.check()
            if not drift_report.drifted:
                return RefreshReport(
                    refreshed=False, reason="no drift detected", drift=drift_report
                )
        live, live_version = self.registry.load(self.name)
        # Fresh instance: the live (cached, shared) object must never be
        # refit in place — in-flight batches are scoring through it.
        candidate, _ = self.registry.load_fresh(self.name, live_version)
        refit_start = self._clock()
        if self._refit is not None:
            self._refit(candidate, recent, validation)
        else:
            refit = getattr(candidate, "refit", None)
            if refit is None:
                raise ValueError(
                    f"{type(candidate).__name__} has no refit(); pass refit= to "
                    "LifecycleManager"
                )
            refit(recent, validation)
        refit_seconds = self._clock() - refit_start
        if probe_windows is None:
            probe_windows = _probe_windows_from(recent, live)
        shadow = shadow_compare(
            live, candidate, probe_windows,
            max_ks=self.shadow_max_ks, min_agreement=self.shadow_min_agreement,
        )
        if not shadow.agreed:
            return RefreshReport(
                refreshed=False,
                reason="shadow disagreement: " + "; ".join(shadow.reasons),
                drift=drift_report, shadow=shadow,
                refit_seconds=refit_seconds,
            )
        version = self.publish_guarded(candidate, probe_windows)
        if self.drift is not None:
            self.drift.rebase(candidate.score_last(probe_windows))
        return RefreshReport(
            refreshed=True, reason="published", drift=drift_report,
            shadow=shadow, version=version, refit_seconds=refit_seconds,
        )

    # ------------------------------------------------------------------
    # post-publish watchdog
    # ------------------------------------------------------------------
    def watchdog_check(self, auto_rollback: bool = True) -> WatchdogReport:
        """Regression-check the live version; demote it on any breach.

        Checks, in order of severity: non-finite probe scores, probe
        scoring errors, score divergence vs. the prior snapshot, 5xx
        error rate, and ``/score`` latency p99 (the last two only with a
        metrics registry attached).
        """
        reasons: list[str] = []
        checks: dict = {}
        probe_scores = None
        if self._probe_windows is not None:
            try:
                live, _ = self.registry.load(self.name)
                probe_scores = np.asarray(
                    live.score_last(self._probe_windows), dtype=np.float64
                )
            except Exception as error:  # noqa: BLE001 — any probe failure is a regression
                reasons.append(f"probe scoring failed: {error}")
                checks["probe_error"] = str(error)
            if probe_scores is not None:
                finite = np.isfinite(probe_scores)
                checks["nonfinite_probe_scores"] = int(np.sum(~finite))
                if not np.all(finite):
                    detail = f"{int(np.sum(~finite))}/{probe_scores.size} probe scores non-finite"
                    culprit = self._attribute_nonfinite(live)
                    if culprit:
                        detail += f" ({culprit})"
                    reasons.append(detail)
                elif self._prior_scores is not None:
                    divergence = ks_distance(self._prior_scores, probe_scores)
                    checks["probe_ks"] = divergence
                    if divergence > self.watchdog_max_ks:
                        reasons.append(
                            f"probe scores diverge from prior version: "
                            f"ks={divergence:.3f} > {self.watchdog_max_ks:.3f}"
                        )
        if self.metrics is not None:
            error_rate = _model_error_rate(self.metrics, self.name)
            checks["error_rate"] = error_rate
            if error_rate > self.max_error_rate:
                reasons.append(
                    f"error rate {error_rate:.1%} > {self.max_error_rate:.1%}"
                )
            if self.max_latency_p99 is not None:
                p99 = _score_latency_p99(self.metrics)
                checks["latency_p99"] = p99
                if math.isfinite(p99) and p99 > self.max_latency_p99:
                    reasons.append(
                        f"latency p99 {p99 * 1e3:.1f}ms > "
                        f"{self.max_latency_p99 * 1e3:.1f}ms"
                    )
        healthy = not reasons
        rolled_back = False
        restored = None
        if not healthy and auto_rollback and self._prior_version is not None:
            record = self.rollback("; ".join(reasons))
            rolled_back = True
            restored = record.restored
        return WatchdogReport(
            healthy=healthy, reasons=tuple(reasons), checks=checks,
            rolled_back=rolled_back, restored=restored,
        )

    def _attribute_nonfinite(self, live: BaseDetector) -> str | None:
        """Name the op that births the NaN, when configured to.

        The tape-replay JIT skips per-op dispatch, so the probe re-runs
        with JIT off under :class:`repro.analysis.detect_anomaly` — the
        rollback reason then points at the culpable op instead of just
        "scores went NaN".
        """
        if not self.detect_anomaly or self._probe_windows is None:
            return None
        from ..analysis import AnomalyError, detect_anomaly
        from ..nn import jit as nn_jit

        try:
            with nn_jit.use_jit(False), detect_anomaly():
                live.score_last(self._probe_windows[:1])
        except AnomalyError as error:
            return str(error).splitlines()[0]
        except Exception:  # noqa: BLE001 — attribution is best-effort
            return None
        return None


def _probe_windows_from(recent: np.ndarray, detector: BaseDetector) -> np.ndarray:
    """Default probe set: sliding windows over the refit slice."""
    from ..datasets.windows import sliding_windows

    recent = np.asarray(recent, dtype=np.float64)
    size = getattr(getattr(detector, "config", None), "window_size", None)
    if size is None or recent.shape[0] < size:
        size = max(2, min(recent.shape[0], 100))
    stride = max(1, (recent.shape[0] - size) // 64 or 1)
    return sliding_windows(recent, size, stride=stride)


def _model_error_rate(metrics: MetricsRegistry, name: str) -> float:
    """Fraction of this model's HTTP responses that were 5xx."""
    snapshot = metrics.snapshot()["counters"]
    total = 0.0
    errors = 0.0
    needle = f"model={name}"
    for key, value in snapshot.items():
        if not key.startswith("serve_http_requests_total{"):
            continue
        labels = key[key.index("{") + 1 : -1].split(",")
        if needle not in labels:
            continue
        total += value
        if any(label.startswith("status=5") for label in labels):
            errors += value
    return errors / total if total else 0.0


def _score_latency_p99(metrics: MetricsRegistry) -> float:
    """p99 of ``/score`` request latency (NaN before any request)."""
    return metrics.histogram("serve_http_latency_seconds", endpoint="/score").quantile(0.99)
