"""Stdlib JSON-over-HTTP front end for the serving subsystem.

Zero third-party dependencies: :class:`http.server.ThreadingHTTPServer`
accepts connections (one handler thread per in-flight request) and
handlers hand windows to the scoring tier.  Two tiers are available:
the in-process :class:`~repro.serve.scheduler.MicroBatcher` thread pool
(default), or — with ``procs > 0`` — the
:class:`~repro.serve.pool.ProcessPool`, which shards scoring across
worker processes (past the GIL) with shared-memory weights and
consistent-hash routing.

Endpoints
---------
``POST /score``
    ``{"model": str, "version"?: str, "window": [[...], ...]}`` →
    ``{"model", "version", "score", "threshold", "anomaly"}``.  The
    window is ``(time, features)``; a flat list is treated as univariate.
    Scored through the micro-batcher.
``POST /predict``
    Same request; answers only ``{"model", "version", "anomaly"}`` —
    the thresholded label (Eq. 17) for callers that alert without
    inspecting scores.
``GET /healthz``
    Liveness plus per-model serving state: live version, circuit-breaker
    state, quarantined artifacts, degraded flag, queue depth.
``GET /metrics``
    JSON snapshot of the :class:`~repro.serve.metrics.MetricsRegistry`
    (counters, gauges, latency histograms with p50/p95/p99).
``GET /models``
    Registry listing: every model name with its versions.

Error mapping: malformed request → 400, unknown model/version → 404,
shed load (:class:`Overloaded`) → 429 with ``Retry-After``, open circuit
breaker / exhausted transient retries → 503 with ``Retry-After``,
anything else → 500.  All error bodies are ``{"error": ..., "detail": ...}``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..analysis.lockcheck import named_lock
from .errors import (
    CircuitOpen,
    ModelNotFound,
    Overloaded,
    RegistryError,
    ServeError,
    TransientFault,
)
from .metrics import MetricsRegistry
from .pool import ProcessPool
from .registry import ModelRegistry
from .scheduler import MicroBatcher

__all__ = ["InferenceServer"]

#: Request bodies above this size are rejected before parsing (1 window of
#: a few thousand observations fits comfortably; this is an 8 MiB guard
#: against accidental bulk uploads, not a tuning knob).
_MAX_BODY_BYTES = 8 * 1024 * 1024


def _jsonable(value):
    """Replace non-finite floats (invalid JSON) with None, recursively."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


class _BadRequest(ServeError):
    """Client-side payload problem (HTTP 400)."""


def _parse_window(payload: dict) -> np.ndarray:
    if "window" not in payload:
        raise _BadRequest('request body must contain "window"')
    try:
        window = np.asarray(payload["window"], dtype=np.float64)
    except (TypeError, ValueError) as error:
        raise _BadRequest(f"window is not numeric: {error}") from None
    if window.ndim == 1:
        window = window[:, None]
    if window.ndim != 2 or window.shape[0] < 1:
        raise _BadRequest(
            f"window must be (time, features) or a flat univariate list, "
            f"got shape {tuple(window.shape)}"
        )
    if not np.all(np.isfinite(window)):
        raise _BadRequest("window contains NaN/Inf values; impute upstream")
    return window


class _Handler(BaseHTTPRequestHandler):
    # Keep client connections snappy; scoring time dominates.
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> "InferenceServer":
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Per-request lines go to metrics, not stderr."""

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        with self.app._track_request():
            self._get()

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        with self.app._track_request():
            self._post()

    def _get(self) -> None:
        started = time.monotonic()
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._finish("/healthz", started, 200, self.app.health())
        elif path == "/metrics":
            self._finish("/metrics", started, 200, self.app.metrics.snapshot())
        elif path == "/models":
            self._finish("/models", started, 200, self.app.list_models())
        else:
            self._finish(path, started, 404,
                         {"error": "not_found", "detail": f"no route {path}"})

    def _post(self) -> None:
        started = time.monotonic()
        path = self.path.split("?", 1)[0]
        if path not in ("/score", "/predict"):
            self._finish(path, started, 404,
                         {"error": "not_found", "detail": f"no route {path}"})
            return
        model = "unknown"
        try:
            payload = self._read_json()
            model = str(payload.get("model", "")) or "unknown"
            body = self.app.score_request(payload, want_score=(path == "/score"))
            self._finish(path, started, 200, body, model=model)
        except _BadRequest as error:
            self._finish(path, started, 400,
                         {"error": "bad_request", "detail": str(error)}, model=model)
        except ModelNotFound as error:
            self._finish(path, started, 404,
                         {"error": "model_not_found", "detail": str(error)}, model=model)
        except Overloaded as error:
            self._finish(path, started, 429,
                         {"error": "overloaded", "detail": str(error)},
                         model=model, headers={"Retry-After": "1"})
        except CircuitOpen as error:
            # Per-model outage, not a service outage: this model's breaker
            # is open and nothing last-good is resident.  503 + Retry-After
            # tells clients when the half-open probe will be admitted.
            self._finish(path, started, 503,
                         {"error": "circuit_open", "detail": str(error)},
                         model=model,
                         headers={"Retry-After": str(max(1, math.ceil(error.retry_after)))})
        except TransientFault as error:
            self._finish(path, started, 503,
                         {"error": "transient", "detail": str(error)},
                         model=model, headers={"Retry-After": "1"})
        except (RegistryError, ServeError, ValueError, RuntimeError) as error:
            self._finish(path, started, 500,
                         {"error": "internal", "detail": str(error)}, model=model)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _BadRequest("request body required (JSON)")
        if length > _MAX_BODY_BYTES:
            raise _BadRequest(f"request body exceeds {_MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(f"body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("body must be a JSON object")
        return payload

    def _finish(self, endpoint: str, started: float, status: int, body: dict,
                model: str | None = None, headers: dict[str, str] | None = None) -> None:
        data = json.dumps(_jsonable(body)).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)
        metrics = self.app.metrics
        labels = {"endpoint": endpoint, "status": str(status)}
        if model is not None:
            labels["model"] = model
        metrics.counter("serve_http_requests_total", **labels).inc()
        metrics.histogram("serve_http_latency_seconds", endpoint=endpoint).observe(
            time.monotonic() - started
        )


class _BurstTolerantHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # The stdlib accept backlog of 5 makes the kernel drop handshakes when
    # tens of clients connect in the same instant — the client sees a
    # connection reset mid-request.  Simultaneous bursts are exactly the
    # traffic micro-batching exists for, so hold a deeper accept queue.
    request_queue_size = 128


class _InflightTracker:
    """Counts one HTTP handler in/out of the server's in-flight set."""

    __slots__ = ("_app",)

    def __init__(self, app: "InferenceServer"):
        self._app = app

    def __enter__(self) -> None:
        with self._app._inflight_cond:
            self._app._inflight_http += 1

    def __exit__(self, *exc_info) -> None:
        with self._app._inflight_cond:
            self._app._inflight_http -= 1
            self._app._inflight_cond.notify_all()


class InferenceServer:
    """Registry + micro-batcher + HTTP front end, wired and lifecycled.

    >>> server = InferenceServer(registry, port=0)     # doctest: +SKIP
    >>> host, port = server.start()                    # doctest: +SKIP
    >>> ...                                            # doctest: +SKIP
    >>> server.stop()                                  # doctest: +SKIP

    ``port=0`` binds an ephemeral port (tests, demos); :attr:`url` gives
    the resolved address after :meth:`start`.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_batch_size: int = 32,
        max_delay: float = 0.002,
        max_queue: int = 256,
        workers: int = 1,
        procs: int = 0,
        max_inflight_per_model: int = 64,
        metrics: MetricsRegistry | None = None,
    ):
        self.registry = registry
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.batcher = MicroBatcher(
            detector_for=self._detector_for,
            max_batch_size=max_batch_size,
            max_delay=max_delay,
            max_queue=max_queue,
            workers=workers,
            metrics=self.metrics,
        )
        #: ``procs > 0`` swaps the scoring tier: windows route to the
        #: process pool (sharded past the GIL) instead of the in-process
        #: thread scheduler; ``procs=0`` keeps the thread fallback.
        self.pool: ProcessPool | None = None
        if procs > 0:
            self.pool = ProcessPool(
                procs=procs,
                max_inflight_per_model=max_inflight_per_model,
                metrics=self.metrics,
            )
        self._httpd = _BurstTolerantHTTPServer((host, port), _Handler)
        self._httpd.app = self  # type: ignore[attr-defined]
        self._serve_thread: threading.Thread | None = None
        #: In-flight HTTP handler count: stop() drains these to zero
        #: before the scoring tier goes away, so accepted requests
        #: always complete (graceful shutdown).
        self._inflight_http = 0
        self._inflight_cond = named_lock("serve.http.inflight", kind="condition")

    # ------------------------------------------------------------------
    # request handling (called from handler threads)
    # ------------------------------------------------------------------
    def _detector_for(self, model_key: str):
        name, _, version = model_key.partition(":")
        detector, _ = self.registry.load(name, version or None)
        return detector

    def score_request(self, payload: dict, want_score: bool) -> dict:
        name = payload.get("model")
        if not name or not isinstance(name, str):
            raise _BadRequest('request body must name a "model"')
        version = payload.get("version")
        if version is not None and not isinstance(version, str):
            raise _BadRequest('"version" must be a string when given')
        window = _parse_window(payload)
        # Resolve "latest" to a concrete version *before* batching so the
        # batcher groups requests by the version they will actually hit.
        # The registry load also keeps the parent-side degradation ladder
        # (retries, quarantine fallback, circuit breakers) in front of
        # both scoring tiers.
        detector, resolved = self.registry.load(name, version)
        if self.pool is not None:
            score = self.pool.score(name, resolved, detector, window)
        else:
            score = self.batcher.score(f"{name}:{resolved}", window)
        threshold = float(detector.threshold_)
        body = {
            "model": name,
            "version": resolved,
            "anomaly": bool(math.isfinite(score) and score >= threshold),
        }
        if want_score:
            body["score"] = score
            body["threshold"] = threshold
        return body

    def health(self) -> dict:
        """Liveness plus per-model serving state.

        ``models`` maps each registered name to its
        :meth:`~repro.serve.registry.ModelRegistry.status` — live
        version, circuit-breaker state, quarantined artifacts, degraded
        flag — so one poll answers "which models are sick", not just "is
        the process up".  The top-level ``status`` turns ``"degraded"``
        when any model is (the process still serves healthy models).
        """
        models = {name: self.registry.status(name) for name in self.registry.models()}
        degraded = any(status["degraded"] for status in models.values())
        body = {
            "status": "degraded" if degraded else "ok",
            "models": models,
            "queue_depth": self.batcher.queue_depth,
            "workers": len(self.batcher._workers),
        }
        if self.pool is not None:
            pool = self.pool.status()
            body["pool"] = pool
            # Dead worker shards are degraded service (requests re-route
            # or fail retryable) even while every model's registry state
            # is healthy.
            if pool["alive"] < pool["procs"]:
                body["status"] = "degraded"
        return body

    def list_models(self) -> dict:
        return {
            "models": {name: self.registry.versions(name) for name in self.registry.models()}
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def _track_request(self):
        """Context manager counting in-flight HTTP handlers (for the drain)."""
        return _InflightTracker(self)

    def _start_scoring_tier(self) -> None:
        if self.pool is not None:
            self.pool.start()
        else:
            self.batcher.start()

    def _stop_scoring_tier(self) -> None:
        if self.pool is not None:
            self.pool.stop()
        self.batcher.stop()

    def _drain_http(self, timeout: float = 10.0) -> None:
        """Wait for accepted HTTP requests to finish before teardown."""
        with self._inflight_cond:
            self._inflight_cond.wait_for(
                lambda: self._inflight_http == 0, timeout=timeout
            )

    def start(self) -> tuple[str, int]:
        """Start the scoring tier and the HTTP accept loop (background)."""
        self._start_scoring_tier()
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever, name="repro-serve-http", daemon=True,
                kwargs={"poll_interval": 0.05},
            )
            self._serve_thread.start()
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def stop(self) -> None:
        """Graceful shutdown: accept no more, drain in-flight, then teardown.

        Order matters: ``shutdown()`` only stops *new* connections;
        handler threads already inside ``/score`` still need the scoring
        tier, so the batcher/pool stops only after the in-flight count
        drains to zero.
        """
        self._httpd.shutdown()
        self._drain_http()
        self._stop_scoring_tier()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None

    def __enter__(self) -> "InferenceServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def serve_forever(self) -> None:
        """Foreground serve (the CLI path); Ctrl-C stops gracefully."""
        self._start_scoring_tier()
        host, port = self._httpd.server_address[:2]
        tier = (f"{self.pool.procs} worker processes" if self.pool is not None
                else f"{len(self.batcher._workers)} worker threads")
        print(f"repro.serve listening on http://{host}:{port} "
              f"({tier}; models: {', '.join(self.registry.models()) or 'none'})")
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            print("\nshutting down (draining in-flight requests)...")
        finally:
            self._drain_http()
            self._stop_scoring_tier()
            self._httpd.server_close()
