"""Consistent-hash ring: stable model→worker routing.

The process pool routes every model name to one worker so that worker's
registry cache and JIT tapes stay hot for it (cache locality) — round-
robin would spread each model's weights and tapes across every worker.
A consistent-hash ring keeps that assignment *stable under membership
change*: when a worker dies, only the models that hashed to it move
(roughly ``1/N`` of them), everything else keeps its warm shard; when
the worker respawns, exactly those models route back.

Classic construction: each node is hashed at ``replicas`` virtual points
onto a 64-bit circle (SHA-1, stable across processes and runs — never
``hash()``, which is salted per process); a key routes to the first
virtual point clockwise from its own hash.  Virtual points smooth the
load split: with 64 replicas per node the largest shard is typically
within ~20% of the mean.

>>> ring = HashRing(["w0", "w1", "w2"])
>>> owner = ring.node_for("tfmae")
>>> ring.remove_node(owner)
>>> ring.node_for("tfmae") != owner      # re-routed...
True
>>> ring.add_node(owner)
>>> ring.node_for("tfmae") == owner      # ...and back after respawn
True
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

from ..analysis.lockcheck import named_lock

__all__ = ["HashRing"]


def _stable_hash(value: str) -> int:
    """First 8 bytes of SHA-1 as an int: stable across processes/runs."""
    return int.from_bytes(hashlib.sha1(value.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Thread-safe consistent-hash ring over named nodes.

    Membership changes (worker death/respawn) come from the supervisor
    thread while request threads route; both paths take the ring lock,
    and lookups are a binary search over a sorted point list, so the
    critical section is microseconds.
    """

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._lock = named_lock("serve.hashring")
        self._points: list[int] = []        # sorted virtual-point hashes
        self._owners: dict[int, str] = {}   # point hash -> node name
        self._nodes: set[str] = set()
        for node in nodes:
            self.add_node(node)

    def _point_hashes(self, node: str) -> list[int]:
        return [_stable_hash(f"{node}#{i}") for i in range(self.replicas)]

    def add_node(self, node: str) -> None:
        """Insert a node (idempotent)."""
        with self._lock:
            if node in self._nodes:
                return
            self._nodes.add(node)
            for point in self._point_hashes(node):
                # SHA-1 collisions across distinct vnode labels are not a
                # practical concern; last writer would win deterministically.
                self._owners[point] = node
                bisect.insort(self._points, point)

    def remove_node(self, node: str) -> None:
        """Remove a node (idempotent); its keys re-route to the survivors."""
        with self._lock:
            if node not in self._nodes:
                return
            self._nodes.discard(node)
            for point in self._point_hashes(node):
                if self._owners.get(point) == node:
                    del self._owners[point]
                    index = bisect.bisect_left(self._points, point)
                    if index < len(self._points) and self._points[index] == point:
                        del self._points[index]

    def node_for(self, key: str) -> str:
        """The node owning ``key``: first virtual point clockwise.

        Raises
        ------
        LookupError
            When the ring is empty (every worker down) — the caller maps
            this to its own degraded-service error.
        """
        with self._lock:
            if not self._points:
                raise LookupError("hash ring is empty: no nodes available")
            index = bisect.bisect(self._points, _stable_hash(key))
            if index == len(self._points):
                index = 0
            return self._owners[self._points[index]]

    @property
    def nodes(self) -> set[str]:
        with self._lock:
            return set(self._nodes)

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        with self._lock:
            return node in self._nodes
