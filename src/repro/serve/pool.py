"""Process-pool worker tier: shard scoring across cores, past the GIL.

The thread scheduler (:mod:`repro.serve.scheduler`) batches well but
every forward pass still shares one interpreter — CPU-bound scoring
serializes on the GIL and worker count barely moves throughput.  This
module shards the scoring work across **worker processes**:

* **One weight copy.**  The front-end exports each served model's
  weights once into a ``multiprocessing.shared_memory`` segment
  (:mod:`repro.serve.shm`); every worker attaches the segment and binds
  read-only views as its parameters, so N workers map the same physical
  pages instead of holding N private copies.
* **Consistent-hash routing.**  Model name → worker via
  :class:`~repro.serve.hashring.HashRing`, so one worker's rebuilt
  detector and JIT tapes stay hot for each model (cache locality).  A
  worker death re-routes only its shard; respawn routes it back.
* **Admission control.**  A bounded per-model in-flight quota sheds
  excess load with :class:`~repro.serve.errors.Overloaded` (HTTP 429)
  *before* it crosses the process boundary, layered on the thread
  scheduler's queue shedding.
* **Supervision.**  A supervisor thread heartbeats every worker,
  detects crashes (EOF on the result pipe or ``is_alive`` going false),
  fails that worker's in-flight requests with
  :class:`~repro.serve.errors.TransientFault` (clients retry), removes
  it from the ring, and respawns through a per-slot
  :class:`~repro.serve.breaker.CircuitBreaker` so a crash-looping
  worker backs off instead of thrashing — one shard degrades, never the
  server.

Equivalence: workers score through the same
:meth:`~repro.detector.BaseDetector.score_last` chunked path as the
thread scheduler, on bit-identical weights (the shared segment holds
the exact ``state_dict`` bytes), so pool scores are **bitwise
identical** to the in-process path — asserted by
``benchmarks/bench_multiproc_serving.py`` and the pool tests.

Protocol (pickle tuples over one duplex pipe per worker, FIFO)::

    parent -> worker                      worker -> parent
    ("load",  key, spec)                  ("loaded", key, pid) | ("load_err", key, kind, msg)
    ("score", req_id, key, window)        ("score_ok", req_id, score) | ("score_err", req_id, kind, msg)
    ("ping",  token)                      ("pong", token, pid)
    ("rss",   req_id)                     ("rss_ok", req_id, {"RssAnon": kB, ...})
    ("stop",)                             ("bye", pid)

FIFO ordering is load-bearing: a ``load`` is enqueued before the first
``score`` for its key, so the parent marks the key resident
optimistically and never waits for the ack.  Workers drain their pipe
opportunistically and group consecutive score requests by
``(key, shape)`` into one vectorized ``score_last`` call — the same
micro-batching the thread scheduler does, now per shard.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time
from collections import defaultdict
from concurrent.futures import Future
from typing import Callable

import numpy as np

from ..analysis.lockcheck import named_lock
from ..detector import BaseDetector
from .breaker import CircuitBreaker
from .errors import (
    ModelNotFound,
    Overloaded,
    RegistryError,
    ServeError,
    TransientFault,
)
from .hashring import HashRing
from .metrics import MetricsRegistry
from .registry import _lookup_codec
from .shm import WeightSegment, attach_segment

__all__ = ["ProcessPool"]

#: Most queued score messages a worker folds into one vectorized call.
_WORKER_MAX_BATCH = 64

#: Typed-error transport: workers classify exceptions to one of these
#: kinds; the parent rebuilds the matching type so the HTTP error
#: mapping (404/429/503/500) keeps working across the process boundary.
_ERROR_TYPES = (
    ("model_not_found", ModelNotFound),
    ("overloaded", Overloaded),
    ("transient", TransientFault),
    ("registry", RegistryError),
    ("serve", ServeError),
    ("value", ValueError),
)


def _classify(error: BaseException) -> str:
    for kind, exc_type in _ERROR_TYPES:
        if isinstance(error, exc_type):
            return kind
    return "runtime"


def _rebuild_error(kind: str, message: str) -> Exception:
    if kind == "overloaded":
        # Overloaded has a structured constructor; transport keeps the text.
        return TransientFault(message)
    for known, exc_type in _ERROR_TYPES:
        if kind == known:
            return exc_type(message)
    return RuntimeError(message)


def _spawn_guard(context: str) -> None:
    """Record a lockcheck violation if this thread holds locks right now.

    A lock held across process creation is inherited in an arbitrary
    state by the child under fork-like start methods — a classic child
    deadlock.  No-op unless the runtime lockcheck is installed.
    """
    from ..analysis import lockcheck

    if lockcheck.installed():
        lockcheck.check_spawn(context)


def _read_proc_rss() -> dict[str, int]:
    """RSS breakdown of this process in kB, from ``/proc/self/status``.

    ``RssAnon`` is private memory, ``RssShmem`` the shared mappings —
    the split the single-copy-weights bench asserts on.  Missing fields
    (non-Linux) report as 0.
    """
    fields = {"VmRSS": 0, "RssAnon": 0, "RssFile": 0, "RssShmem": 0}
    try:
        with open("/proc/self/status", encoding="ascii", errors="replace") as handle:
            for line in handle:
                name, _, rest = line.partition(":")
                if name in fields:
                    fields[name] = int(rest.split()[0])
    except OSError:
        pass
    return fields


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _worker_score(conn, models: dict, batch: list, jit: bool | None) -> None:
    """Score a run of ("score", req_id, key, window) messages, grouped."""
    from ..nn import jit as nn_jit

    groups: dict[tuple[str, tuple[int, ...]], list] = defaultdict(list)
    for _op, req_id, key, window in batch:
        groups[(key, window.shape)].append((req_id, window))
    for (key, _shape), items in groups.items():
        detector = models.get(key)
        if detector is None:
            for req_id, _window in items:
                conn.send(("score_err", req_id, "transient",
                           f"model {key} is not resident in this worker"))
            continue
        try:
            # Mirror the thread scheduler exactly (bitwise equivalence):
            # a batch of one rides a zero-copy view, larger ones stack.
            if len(items) == 1:
                windows = items[0][1][None]
            else:
                windows = np.stack([window for _req_id, window in items])
            if jit is None:
                scores = detector.score_last(windows)
            else:
                with nn_jit.use_jit(jit):
                    scores = detector.score_last(windows)
        except BaseException as error:  # noqa: BLE001 — forwarded to the parent
            kind, message = _classify(error), str(error)
            for req_id, _window in items:
                conn.send(("score_err", req_id, kind, message))
            continue
        for (req_id, _window), score in zip(items, scores):
            conn.send(("score_ok", req_id, float(score)))


def _worker_load(conn, models: dict, segments: dict, key: str, spec: dict) -> None:
    """Rebuild a detector from its codec and bind shared-memory weights."""
    try:
        codec = _lookup_codec(spec["detector"])
        if codec is None:
            raise RegistryError(
                f"no codec registered for detector type {spec['detector']!r} "
                "in worker process"
            )
        detector, module = codec.build(spec["hyperparams"])
        segment = attach_segment(spec["segment"], spec["manifest"])
        module.load_state_dict(segment.state(), copy=False)
        models[key] = detector
        segments[key] = segment
        conn.send(("loaded", key, os.getpid()))
    except BaseException as error:  # noqa: BLE001 — forwarded to the parent
        conn.send(("load_err", key, _classify(error), str(error)))


def _worker_main(slot: str, conn, jit: bool | None) -> None:
    """Entry point of one worker process (module-level for spawn pickling)."""
    # Ctrl-C goes to the whole foreground process group; shutdown is the
    # parent's job (it sends "stop"), so workers ignore the signal.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    models: dict[str, BaseDetector] = {}
    segments: dict[str, WeightSegment] = {}
    stopping = False
    while not stopping:
        try:
            inbox = [conn.recv()]
            while len(inbox) < _WORKER_MAX_BATCH and conn.poll(0):
                inbox.append(conn.recv())
        except (EOFError, OSError):
            break
        index = 0
        while index < len(inbox):
            message = inbox[index]
            op = message[0]
            if op == "score":
                run_end = index
                while run_end < len(inbox) and inbox[run_end][0] == "score":
                    run_end += 1
                _worker_score(conn, models, inbox[index:run_end], jit)
                index = run_end
                continue
            if op == "load":
                _worker_load(conn, models, segments, message[1], message[2])
            elif op == "ping":
                conn.send(("pong", message[1], os.getpid()))
            elif op == "rss":
                conn.send(("rss_ok", message[1], _read_proc_rss()))
            elif op == "stop":
                stopping = True
                break
            index += 1
    models.clear()
    for segment in segments.values():
        segment.close()
    try:
        conn.send(("bye", os.getpid()))
        conn.close()
    except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
        pass


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class _Inflight:
    """One routed request awaiting its worker's reply."""

    __slots__ = ("future", "model", "slot", "started")

    def __init__(self, model: str, slot: str):
        self.future: Future = Future()
        self.model = model
        self.slot = slot
        self.started = time.monotonic()


class _WorkerHandle:
    """Parent-side state of one worker slot (survives respawns via pool)."""

    __slots__ = ("slot", "process", "conn", "send_lock", "loaded", "last_seen",
                 "receiver", "state", "scored")

    def __init__(self, slot: str, process, conn):
        self.slot = slot
        self.process = process
        self.conn = conn
        #: Serialises sends so a load+score pair is never interleaved.
        #: blocking_ok: this leaf lock EXISTS to serialise the (blocking)
        #: pipe write; nothing else is ever acquired under it.
        self.send_lock = named_lock("serve.pool.send", blocking_ok=True)
        #: Keys optimistically resident (FIFO: load precedes first score).
        self.loaded: set[str] = set()
        self.last_seen = time.monotonic()
        self.receiver: threading.Thread | None = None
        self.state = "live"  # live | dead
        self.scored = 0


class ProcessPool:
    """Supervised worker processes scoring behind consistent-hash routing.

    Parameters
    ----------
    procs:
        Worker process count (>= 1; ``--procs 0`` at the CLI keeps the
        thread scheduler and never constructs a pool).
    max_inflight_per_model:
        Admission quota: in-flight requests allowed per model before
        :class:`Overloaded` sheds new ones (HTTP 429).
    heartbeat_interval:
        Supervisor tick: liveness check + ping per worker, and the
        cadence at which dead slots are considered for respawn.
    breaker_threshold / respawn_backoff:
        Consecutive deaths before a slot's circuit breaker opens, and
        how long it pauses before the next respawn probe — crash-loop
        protection composing with the registry's per-model breakers.
    metrics:
        Shared :class:`MetricsRegistry`; the pool records request
        counts, latency, sheds, deaths and respawns parent-side (no
        cross-process scrape on the ``/metrics`` path).
    jit:
        Worker-side tape-replay policy, mirroring
        :class:`~repro.serve.scheduler.MicroBatcher`'s ``jit`` knob:
        ``None`` inherits the worker-process default (on).
    clock:
        Injectable time source for the slot breakers (chaos tests run
        at simulated time).
    """

    def __init__(
        self,
        procs: int = 2,
        max_inflight_per_model: int = 64,
        heartbeat_interval: float = 0.5,
        breaker_threshold: int = 3,
        respawn_backoff: float = 5.0,
        metrics: MetricsRegistry | None = None,
        jit: bool | None = None,
        ring_replicas: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ):
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        if max_inflight_per_model < 1:
            raise ValueError(
                f"max_inflight_per_model must be >= 1, got {max_inflight_per_model}"
            )
        self.procs = procs
        self.max_inflight_per_model = max_inflight_per_model
        self.heartbeat_interval = heartbeat_interval
        self.jit = None if jit is None else bool(jit)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._ctx = mp.get_context("spawn")
        self._ring = HashRing(replicas=ring_replicas)
        # Guards parent-side bookkeeping only (workers/inflight/specs
        # maps); all blocking work — spawn, pipe sends, shared-memory
        # publish — happens outside it.  Order: never taken while
        # holding send_lock or the ring lock.
        self._lock = named_lock("serve.pool", kind="rlock")
        self._workers: dict[str, _WorkerHandle] = {}
        self._breakers: dict[str, CircuitBreaker] = {
            self._slot_name(i): CircuitBreaker(
                failure_threshold=breaker_threshold,
                reset_timeout=respawn_backoff,
                clock=clock,
            )
            for i in range(procs)
        }
        self._respawns: dict[str, int] = {self._slot_name(i): 0 for i in range(procs)}
        self._inflight: dict[int, _Inflight] = {}
        self._inflight_by_model: dict[str, int] = defaultdict(int)
        self._next_id = 0
        self._control: dict[int, Future] = {}
        self._segments: dict[str, WeightSegment] = {}
        self._specs: dict[str, dict] = {}
        self._started = False
        self._closed = False
        self._stop_event = threading.Event()
        self._supervisor: threading.Thread | None = None

    @staticmethod
    def _slot_name(index: int) -> str:
        return f"proc-{index}"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ProcessPool":
        with self._lock:
            if self._closed:
                raise ServeError("pool was stopped; create a new one")
            if self._started:
                return self
            self._started = True
        # Spawning happens outside the pool lock: Process.start() is
        # blocking, and a lock held across spawn is inherited mid-state
        # by fork-like start methods (lockcheck.check_spawn guards this).
        for index in range(self.procs):
            self._spawn(self._slot_name(index))
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-pool-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Reject new work, drain in-flight scores, stop every worker.

        FIFO pipes make the drain exact: the ``stop`` sentinel lands
        behind every accepted score, so workers answer all routed work
        before exiting — mirroring the thread scheduler's guarantee.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._workers.values())
        self._stop_event.set()
        for handle in handles:
            if handle.state == "live":
                with handle.send_lock:
                    try:
                        handle.conn.send(("stop",))
                    except (BrokenPipeError, OSError):
                        pass
        deadline = time.monotonic() + timeout
        while self._inflight and time.monotonic() < deadline:
            time.sleep(0.005)
        for handle in handles:
            remaining = max(0.1, deadline - time.monotonic())
            handle.process.join(timeout=remaining)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
                if handle.process.is_alive():  # pragma: no cover - last resort
                    handle.process.kill()
                    handle.process.join(timeout=1.0)
        with self._lock:
            leftovers = list(self._inflight)
        for req_id in leftovers:  # pragma: no cover - drain normally empties this
            self._resolve(req_id, error=ServeError("pool stopped before reply"))
        if self._supervisor is not None:
            self._supervisor.join(timeout=2.0)
            self._supervisor = None
        with self._lock:
            for segment in self._segments.values():
                segment.close()
            self._segments.clear()
            self._specs.clear()
        self.metrics.gauge("serve_pool_workers_alive").set(0)

    def __enter__(self) -> "ProcessPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # spawning / supervision
    # ------------------------------------------------------------------
    def _spawn(self, slot: str) -> None:
        """Start one worker for ``slot`` and route its shard to it.

        Called with NO pool lock held — the spawn itself blocks, and the
        runtime lockcheck records any lock held across it as a hazard.
        """
        _spawn_guard(f"ProcessPool._spawn({slot})")
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(slot, child_conn, self.jit),
            name=f"repro-serve-{slot}", daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(slot, process, parent_conn)
        handle.receiver = threading.Thread(
            target=self._receive, args=(handle,),
            name=f"repro-pool-recv-{slot}", daemon=True,
        )
        with self._lock:
            aborted = self._closed
            if not aborted:
                self._workers[slot] = handle
        if aborted:
            # stop() won the race while we were spawning: tear down the
            # orphan worker instead of registering it.
            try:
                parent_conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
            process.terminate()
            process.join(timeout=1.0)
            return
        handle.receiver.start()
        self._ring.add_node(slot)
        self.metrics.gauge("serve_pool_workers_alive").set(self._alive_count())

    def _alive_count(self) -> int:
        with self._lock:
            return sum(1 for h in self._workers.values() if h.state == "live")

    def _receive(self, handle: _WorkerHandle) -> None:
        """Drain one worker's replies; EOF means the worker is gone."""
        conn = handle.conn
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            tag = message[0]
            handle.last_seen = time.monotonic()
            if tag == "score_ok":
                handle.scored += 1
                self._resolve(message[1], result=message[2])
            elif tag == "score_err":
                self._resolve(message[1], error=_rebuild_error(message[2], message[3]))
            elif tag == "load_err":
                with handle.send_lock:
                    handle.loaded.discard(message[1])
            elif tag == "pong":
                self._breakers[handle.slot].record_success()
            elif tag == "rss_ok":
                self._resolve_control(message[1], message[2])
            elif tag == "bye":
                break
        self._on_worker_exit(handle)

    def _on_worker_exit(self, handle: _WorkerHandle) -> None:
        """A worker's pipe closed: crash or clean exit, decided by state."""
        with self._lock:
            if handle.state == "dead" or self._workers.get(handle.slot) is not handle:
                return
            handle.state = "dead"
            self._ring.remove_node(handle.slot)
            orphans = [req_id for req_id, entry in self._inflight.items()
                       if entry.slot == handle.slot]
            closed = self._closed
        self.metrics.gauge("serve_pool_workers_alive").set(self._alive_count())
        if not closed:
            self._breakers[handle.slot].record_failure()
            self.metrics.counter("serve_pool_worker_deaths_total").inc()
        for req_id in orphans:
            self._resolve(req_id, error=TransientFault(
                f"worker {handle.slot} died mid-request; its shard is "
                "re-routing — retry"
            ))

    def _supervise(self) -> None:
        """Heartbeat live workers; respawn dead slots through their breaker."""
        token = 0
        while not self._stop_event.wait(self.heartbeat_interval):
            with self._lock:
                if self._closed:
                    return
                handles = list(self._workers.values())
            for handle in handles:
                if handle.state == "live" and not handle.process.is_alive():
                    # Crash noticed before the pipe EOF propagated.
                    self._on_worker_exit(handle)
            with self._lock:
                if self._closed:
                    return
                dead = [h.slot for h in self._workers.values() if h.state == "dead"]
                respawn = [slot for slot in dead if self._breakers[slot].allow()]
                for slot in respawn:
                    self._respawns[slot] += 1
            # Spawn outside the pool lock (see _spawn); routing keeps
            # shedding to the remaining workers meanwhile.
            for slot in respawn:
                self.metrics.counter("serve_pool_respawns_total").inc()
                self._spawn(slot)
            with self._lock:
                if self._closed:
                    return
                live = [h for h in self._workers.values() if h.state == "live"]
            token += 1
            for handle in live:
                with handle.send_lock:
                    try:
                        handle.conn.send(("ping", token))
                    except (BrokenPipeError, OSError):
                        pass

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(self, name: str, version: str, detector: BaseDetector,
               window: np.ndarray) -> Future:
        """Route one window to ``name``'s worker; future resolves to a score.

        ``detector`` is the parent-side registry instance — used only to
        export weights into the shared segment the first time a
        ``name:version`` is routed, never to score.

        Raises
        ------
        Overloaded
            When the model's in-flight quota is exhausted (shed, 429).
        TransientFault
            When every worker is down (clients retry; the supervisor is
            respawning).
        """
        key = f"{name}:{version}"
        window = np.asarray(window, dtype=np.float64)
        with self._lock:
            if self._closed:
                raise ServeError("pool is stopped and no longer accepts requests")
            if not self._started:
                raise ServeError("pool not started; call start() first")
            if self._inflight_by_model[name] >= self.max_inflight_per_model:
                self.metrics.counter("serve_pool_shed_total", model=name).inc()
                raise Overloaded(depth=self.max_inflight_per_model,
                                 capacity=self.max_inflight_per_model)
            try:
                slot = self._ring.node_for(name)
            except LookupError:
                raise TransientFault(
                    "no scoring workers alive; supervisor is respawning — retry"
                ) from None
            handle = self._workers[slot]
            # Reserve the quota slot before dropping the lock so a burst
            # of concurrent submits cannot overshoot while publishing.
            self._inflight_by_model[name] += 1
        # First routing of a key publishes its weights into shared
        # memory — megabytes of memcpy plus a SharedMemory create, so it
        # must not run under the pool lock (it would convoy every
        # concurrent submit and worker_rss/status call behind disk-speed
        # work).
        try:
            spec = self._spec_for(key, detector)
        except BaseException:
            with self._lock:
                self._inflight_by_model[name] -= 1
                if self._inflight_by_model[name] <= 0:
                    del self._inflight_by_model[name]
            raise
        with self._lock:
            self._next_id += 1
            req_id = self._next_id
            entry = _Inflight(name, slot)
            self._inflight[req_id] = entry
            self.metrics.gauge("serve_pool_inflight").set(len(self._inflight))
        try:
            with handle.send_lock:
                if key not in handle.loaded:
                    handle.conn.send(("load", key, spec))
                    handle.loaded.add(key)
                handle.conn.send(("score", req_id, key, window))
        except (BrokenPipeError, OSError):
            # Died between routing and send; receiver/supervisor handle
            # the slot, this request fails fast as retryable.
            self._resolve(req_id, error=TransientFault(
                f"worker {slot} died before accepting the request; retry"
            ))
        return entry.future

    def score(self, name: str, version: str, detector: BaseDetector,
              window: np.ndarray, timeout: float | None = 30.0) -> float:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(name, version, detector, window).result(timeout=timeout)

    def _spec_for(self, key: str, detector: BaseDetector) -> dict:
        """The (cached) load spec for ``key``: publish weights once.

        The weight export + shared-memory publish runs outside the pool
        lock; two concurrent first-routings of one key may both publish,
        and the loser's segment is discarded (rare, bounded, harmless —
        as opposed to serialising every submit behind the copy).
        """
        with self._lock:
            spec = self._specs.get(key)
        if spec is not None:
            return spec
        codec = _lookup_codec(type(detector).__name__)
        if codec is None:
            raise RegistryError(
                f"no codec registered for detector type "
                f"{type(detector).__name__!r}; the pool cannot ship it "
                "to workers"
            )
        module, hyperparams = codec.export(detector)
        segment = WeightSegment.publish(module)
        spec = {
            "detector": type(detector).__name__,
            "hyperparams": hyperparams,
            "segment": segment.name,
            "manifest": segment.manifest,
        }
        stale = None
        with self._lock:
            existing = self._specs.get(key)
            if existing is not None:
                stale, spec = segment, existing
            else:
                self._segments[key] = segment
                self._specs[key] = spec
                self.metrics.gauge("serve_pool_shared_segments").set(
                    len(self._segments))
                self.metrics.gauge("serve_pool_shared_bytes").set(
                    sum(seg.nbytes for seg in self._segments.values())
                )
        if stale is not None:
            stale.close()
        return spec

    def _resolve(self, req_id: int, result: float | None = None,
                 error: BaseException | None = None) -> None:
        with self._lock:
            entry = self._inflight.pop(req_id, None)
            if entry is None:
                return
            self._inflight_by_model[entry.model] -= 1
            if self._inflight_by_model[entry.model] <= 0:
                del self._inflight_by_model[entry.model]
            self.metrics.gauge("serve_pool_inflight").set(len(self._inflight))
        self.metrics.histogram("serve_pool_latency_seconds").observe(
            time.monotonic() - entry.started
        )
        if not entry.future.set_running_or_notify_cancel():
            return
        if error is not None:
            self.metrics.counter("serve_pool_errors_total", model=entry.model).inc()
            entry.future.set_exception(error)
        else:
            self.metrics.counter("serve_pool_scored_total", model=entry.model).inc()
            entry.future.set_result(result)

    def _resolve_control(self, req_id: int, payload) -> None:
        with self._lock:
            future = self._control.pop(req_id, None)
        if future is not None and future.set_running_or_notify_cancel():
            future.set_result(payload)

    # ------------------------------------------------------------------
    # introspection / chaos seams
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def worker_for(self, name: str) -> str:
        """The slot currently owning ``name`` on the ring."""
        return self._ring.node_for(name)

    def worker_pid(self, slot: str) -> int | None:
        with self._lock:
            handle = self._workers.get(slot)
        return handle.process.pid if handle is not None else None

    def kill_worker(self, slot: str) -> int:
        """SIGKILL one worker (chaos seam); returns the killed pid.

        The supervisor is expected to notice (EOF / ``is_alive``),
        re-route the shard, and respawn through the slot breaker —
        exactly the sequence the chaos harness asserts.
        """
        with self._lock:
            handle = self._workers.get(slot)
            if handle is None or handle.state != "live":
                raise ServeError(f"no live worker in slot {slot!r}")
            pid = handle.process.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    def worker_rss(self, timeout: float = 5.0) -> dict[str, dict[str, int]]:
        """Per-worker RSS breakdown (kB), fetched live from ``/proc``.

        The single-copy bench asserts each worker's private ``RssAnon``
        stays small while the shared segment shows up under
        ``RssShmem``.
        """
        pending: list[tuple[str, Future]] = []
        with self._lock:
            handles = [h for h in self._workers.values() if h.state == "live"]
        # Sends run with only the per-worker send_lock held — never the
        # pool lock, which submit() takes before its own sends; nesting
        # them here in the opposite order was a lock-order inversion.
        for handle in handles:
            with self._lock:
                self._next_id += 1
                req_id = self._next_id
                future: Future = Future()
                self._control[req_id] = future
            delivered = True
            with handle.send_lock:
                try:
                    handle.conn.send(("rss", req_id))
                except (BrokenPipeError, OSError):
                    delivered = False
            if delivered:
                pending.append((handle.slot, future))
            else:
                with self._lock:
                    self._control.pop(req_id, None)
        report: dict[str, dict[str, int]] = {}
        deadline = time.monotonic() + timeout
        for slot, future in pending:
            remaining = max(0.05, deadline - time.monotonic())
            try:
                report[slot] = future.result(timeout=remaining)
            except TimeoutError:  # pragma: no cover - worker wedged
                continue
        return report

    def status(self) -> dict:
        """Pool-health view consumed by ``/healthz``."""
        with self._lock:
            workers = {
                handle.slot: {
                    "pid": handle.process.pid,
                    "alive": handle.state == "live" and handle.process.is_alive(),
                    "breaker": self._breakers[handle.slot].state,
                    "respawns": self._respawns[handle.slot],
                    "resident_models": sorted(handle.loaded),
                    "scored": handle.scored,
                    "last_seen_age": round(time.monotonic() - handle.last_seen, 3),
                }
                for handle in self._workers.values()
            }
            segments = {
                key: segment.nbytes for key, segment in self._segments.items()
            }
            inflight = len(self._inflight)
        return {
            "procs": self.procs,
            "alive": sum(1 for w in workers.values() if w["alive"]),
            "inflight": inflight,
            "workers": workers,
            "shared_segments": segments,
            "routing": {
                name: slot
                for name, slot in self._routing_snapshot(workers)
            },
        }

    def _routing_snapshot(self, workers: dict) -> list[tuple[str, str]]:
        """Current model→slot assignment for every resident model."""
        names = sorted({
            key.partition(":")[0]
            for worker in workers.values()
            for key in worker["resident_models"]
        })
        snapshot = []
        for name in names:
            try:
                snapshot.append((name, self._ring.node_for(name)))
            except LookupError:
                snapshot.append((name, "unrouted"))
        return snapshot
