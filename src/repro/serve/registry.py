"""Model registry: persist fitted detectors as named, versioned artifacts.

Layout — one self-contained ``.npz`` per version (weights *and* metadata
in a single atomically-written file, so a version can never be half
published)::

    <root>/
        <model-name>/
            v1.npz
            v2.npz
            LIVE            # optional JSON live pointer {"version", "prior"}
            ...
        quarantine/
            <model-name>__<version>.npz   # corrupt artifacts, moved aside

Each artifact is written with
:func:`repro.nn.serialization.save_training_state`: the module's weights
under ``model.*`` plus a JSON metadata record carrying everything needed
to rebuild the detector **without refitting** — the full config, the
feature count, the calibrated threshold, and a SHA-256 config
fingerprint.  :meth:`ModelRegistry.load` verifies the fingerprint before
trusting the metadata, rebuilds the detector through its codec, loads
the weights (shape-validated by ``load_model`` semantics), and caches
the result so repeated requests for the same version hit memory.

Lifecycle guardrails (see ``docs/serving.md``, "Model lifecycle & chaos
testing"):

* **Live pointer** — ``set_live``/``demote_live`` maintain an atomic
  per-model pointer recording the serving version *and the version it
  replaced*, so a bad publish rolls back with one ``os.replace``.
  ``load(name)`` resolves the pointer when present, latest otherwise.
* **Quarantine** — a corrupt/truncated artifact raises a typed error
  (never a raw zip traceback), is moved to ``<root>/quarantine/`` so it
  cannot poison future loads, and the load falls back to the previous
  version when one exists.
* **Retries + circuit breaker** — transient load faults retry with
  capped exponential backoff; repeated failures open a per-model
  :class:`~repro.serve.breaker.CircuitBreaker` that serves the
  last-good resident version, or raises
  :class:`~repro.serve.errors.CircuitOpen` (HTTP 503) when none is.

Detector types plug in through a small codec protocol
(:func:`register_codec`): ``export`` turns a fitted detector into
``(module, hyperparams)``, ``build`` turns hyperparams back into an
unfitted-but-configured detector whose module the weights are loaded
into.  TFMAE ships registered; baselines with a single ``Module`` can
register theirs in one call.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import Callable, NamedTuple

from ..analysis.lockcheck import named_lock
from ..detector import BaseDetector
from ..nn.module import Module
from ..nn.serialization import (
    CheckpointError,
    load_metadata,
    load_training_state,
    save_training_state,
)
from .breaker import CircuitBreaker, RetryPolicy
from .errors import CircuitOpen, ModelNotFound, RegistryError, TransientFault

__all__ = ["ModelRegistry", "DetectorCodec", "register_codec", "config_fingerprint"]

#: Registry schema version embedded in every artifact.
_SCHEMA = 1

#: Safe path components: no separators, no traversal, no hidden files.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Live-pointer file name inside a model directory (not ``.npz``, so the
#: version listing never mistakes it for an artifact).
_LIVE_FILE = "LIVE"

#: Directory (under the registry root) holding quarantined artifacts.
_QUARANTINE_DIR = "quarantine"


class DetectorCodec(NamedTuple):
    """How to take one detector type apart and put it back together.

    ``export(detector) -> (module, hyperparams)`` — the module whose
    ``state_dict`` is persisted and a JSON-serialisable hyperparameter
    dict; ``build(hyperparams) -> (detector, module)`` — a configured
    detector marked fitted/calibrated plus the module to load weights
    into.
    """

    export: Callable[[BaseDetector], tuple[Module, dict]]
    build: Callable[[dict], tuple[BaseDetector, Module]]


_CODECS: dict[str, DetectorCodec] = {}
#: Guards _CODECS: registration normally happens at import time, but a
#: serving process may register a codec while worker threads resolve types.
_CODECS_LOCK = named_lock("serve.registry.codecs")


def register_codec(detector_type: str, codec: DetectorCodec) -> None:
    """Register persistence support for a detector type (by class name)."""
    with _CODECS_LOCK:
        _CODECS[detector_type] = codec


def _lookup_codec(detector_type: str) -> DetectorCodec | None:
    with _CODECS_LOCK:
        return _CODECS.get(detector_type)


def _preflight_module(module: Module) -> None:
    """Shape/dtype/grad-flow check a model before it becomes an artifact.

    Duck-typed: runs only for modules following the detector-model
    contract (``config.window_size``, ``n_features``, ``loss``) whose
    config opts in via ``preflight=True`` — a broken graph is caught at
    publish time instead of on the first serving request.  Raises
    :class:`repro.analysis.ShapeCheckError`.
    """
    config = getattr(module, "config", None)
    if config is None or not getattr(config, "preflight", False):
        return
    if not (hasattr(module, "loss") and hasattr(module, "n_features")
            and hasattr(config, "window_size")):
        return
    from ..analysis.shapecheck import preflight_model

    preflight_model(module)


def config_fingerprint(payload: dict) -> str:
    """SHA-256 over the canonical JSON form of a config/hyperparam dict."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class _CorruptArtifact(RegistryError):
    """Internal: the archive itself is damaged/tampered — quarantine it.

    Subclasses :class:`RegistryError`, so an escape is still the public
    type; the distinct class is what separates "move this file aside and
    fall back" from "this process lacks a codec" (not the file's fault).
    """


# ----------------------------------------------------------------------
# TFMAE codec
# ----------------------------------------------------------------------
def _tfmae_export(detector: BaseDetector) -> tuple[Module, dict]:
    from ..core import TFMAE

    assert isinstance(detector, TFMAE)
    if detector.model is None:
        raise RegistryError("TFMAE detector has no trained model; fit it first")
    hyperparams = {
        "config": asdict(detector.config),
        "n_features": detector.model.n_features,
        "threshold": float(detector.threshold_),
        "anomaly_ratio": detector.anomaly_ratio,
    }
    return detector.model, hyperparams


def _tfmae_build(hyperparams: dict) -> tuple[BaseDetector, Module]:
    from ..core import TFMAE, TFMAEConfig
    from ..core.model import TFMAEModel

    config = TFMAEConfig(**hyperparams["config"])
    detector = TFMAE(config)
    detector.model = TFMAEModel(n_features=int(hyperparams["n_features"]), config=config)
    detector._fitted = True
    detector.threshold_ = float(hyperparams["threshold"])
    return detector, detector.model


register_codec("TFMAE", DetectorCodec(export=_tfmae_export, build=_tfmae_build))


def _validate_component(value: str, what: str) -> str:
    if not _NAME_RE.match(value):
        raise RegistryError(
            f"invalid {what} {value!r}: use letters, digits, '.', '_', '-' "
            "(must not start with a separator)"
        )
    return value


class ModelRegistry:
    """Filesystem-backed store of fitted detectors with an in-memory cache.

    Parameters
    ----------
    root:
        Directory holding the registry (created on first publish).
    cache_size:
        Number of loaded detectors kept in memory (LRU). Serving hot
        models never re-reads the artifact; cold versions load on demand.
    load_retries / retry_backoff:
        Transient load failures (I/O hiccups, injected chaos faults)
        retry up to ``load_retries`` times with capped exponential
        backoff starting at ``retry_backoff`` seconds.
    breaker_threshold / breaker_reset:
        Consecutive (post-retry) load failures before a model's circuit
        breaker opens, and how long it stays open before a half-open
        probe is admitted.
    clock / sleep:
        Injectable time sources for the breaker and the backoff —
        deterministic tests and the chaos harness run at simulated time.
    """

    def __init__(
        self,
        root: str | Path,
        cache_size: int = 4,
        load_retries: int = 2,
        retry_backoff: float = 0.05,
        breaker_threshold: int = 3,
        breaker_reset: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self.root = Path(root)
        self._cache_size = cache_size
        self._cache: OrderedDict[tuple[str, str], BaseDetector] = OrderedDict()
        #: Memory-only state lock: cache, name-lock table, breakers,
        #: last-good entries.  Never held across disk I/O — every
        #: filesystem touch (artifact read/write, live pointer, version
        #: glob) happens under the per-model lock instead.  Lock order:
        #: per-model lock -> state lock, never the reverse.
        self._lock = named_lock("serve.registry.state")
        #: Per-model locks serialising that model's disk traffic so a
        #: slow/faulty artifact read of one model never blocks loads (or
        #: cache hits) of another.  ``blocking_ok``: serialising blocking
        #: I/O is this lock's entire purpose.
        self._name_locks: dict[str, threading.Lock] = {}
        self._breaker_threshold = breaker_threshold
        self._breaker_reset = breaker_reset
        self._breakers: dict[str, CircuitBreaker] = {}
        #: Most recent successfully-loaded (detector, version) per model —
        #: what an open breaker serves instead of touching the disk.
        self._last_good: dict[str, tuple[BaseDetector, str]] = {}
        self._retry = RetryPolicy(retries=load_retries, base_delay=retry_backoff,
                                  sleep=sleep)
        self._clock = clock
        #: Chaos seam: when set, called as ``hook(name, version)`` at the
        #: top of every artifact read attempt.  The hook may sleep (slow
        #: load) or raise :class:`TransientFault` / corrupt the file —
        #: see :mod:`repro.robustness.chaos`.
        self.load_fault_hook: Callable[[str, str], None] | None = None

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(self, name: str, detector: BaseDetector, version: str | None = None) -> str:
        """Persist a fitted, threshold-calibrated detector; returns the version.

        ``version`` defaults to the next ``v<n>``.  Publishing an existing
        version is refused — versions are immutable; publish a new one.
        Publishing does **not** move the live pointer when one exists;
        pair with :meth:`set_live` (or use
        :meth:`repro.serve.lifecycle.LifecycleManager.publish_guarded`)
        to promote the new version.
        """
        _validate_component(name, "model name")
        detector_type = type(detector).__name__
        codec = _lookup_codec(detector_type)
        if codec is None:
            raise RegistryError(
                f"no codec registered for detector type {detector_type!r}; "
                "see repro.serve.registry.register_codec"
            )
        if detector.threshold_ is None:
            raise RegistryError(
                f"detector {detector_type!r} has no calibrated threshold; serving "
                "needs one — fit with a validation split or call calibrate_threshold()"
            )
        module, hyperparams = codec.export(detector)
        _preflight_module(module)

        with self._name_lock(name):
            if version is None:
                version = f"v{len(self._versions_on_disk(name)) + 1}"
            _validate_component(version, "version")
            path = self._artifact_path(name, version)
            if path.exists():
                raise RegistryError(
                    f"{name}:{version} already exists; registry versions are immutable"
                )
            metadata = {
                "schema": _SCHEMA,
                "name": name,
                "version": version,
                "detector": detector_type,
                "hyperparams": hyperparams,
                "fingerprint": config_fingerprint(hyperparams),
            }
            save_training_state(path, module, metadata=metadata)
        return version

    # ------------------------------------------------------------------
    # live pointer
    # ------------------------------------------------------------------
    def set_live(self, name: str, version: str) -> str | None:
        """Atomically point the live pointer at ``version``.

        Records the previously-live version as ``prior`` (what
        :meth:`demote_live` rolls back to) and returns it (``None`` on
        the first promotion of a single-version model).
        """
        _validate_component(name, "model name")
        _validate_component(version, "version")
        with self._name_lock(name):
            versions = self._versions_on_disk(name)
            if version not in versions:
                raise ModelNotFound(f"model {name}:{version} not found in {self.root}")
            pointer = self._read_live_pointer(name)
            if pointer is not None:
                prior = pointer["version"]
            else:
                remaining = [v for v in versions if v != version]
                prior = remaining[-1] if remaining else None
            if prior == version:
                prior = pointer.get("prior") if pointer else None
            self._write_live_pointer(name, {"version": version, "prior": prior})
        return prior

    def demote_live(self, name: str) -> str:
        """Roll the live pointer back to the recorded prior version.

        One atomic pointer swap — the demoted version's artifact stays on
        disk (immutable, inspectable) but stops serving immediately.
        Returns the version now live.
        """
        _validate_component(name, "model name")
        with self._name_lock(name):
            pointer = self._read_live_pointer(name)
            if pointer is None or not pointer.get("prior"):
                raise RegistryError(
                    f"model {name!r} has no recorded prior version to roll back to"
                )
            prior = pointer["prior"]
            if prior not in self._versions_on_disk(name):
                raise RegistryError(
                    f"model {name!r} prior version {prior!r} is no longer in the "
                    "registry; cannot roll back"
                )
            self._write_live_pointer(
                name, {"version": prior, "prior": None, "demoted": pointer["version"]}
            )
        return prior

    def live_version(self, name: str) -> str:
        """The version ``load(name)`` resolves to: live pointer or latest."""
        _validate_component(name, "model name")
        with self._name_lock(name):
            versions = self._versions_on_disk(name)
            if not versions:
                raise ModelNotFound(f"no versions of model {name!r} in {self.root}")
            pointer = self._read_live_pointer(name)
            if pointer is not None and pointer["version"] in versions:
                return pointer["version"]
            return versions[-1]

    def _read_live_pointer(self, name: str) -> dict | None:
        """Parse the live pointer; call with the model's name lock held."""
        path = self.root / name / _LIVE_FILE
        try:
            pointer = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # A damaged pointer must not take the model down: fall back to
            # "no pointer" (latest serves).
            return None
        if not isinstance(pointer, dict) or "version" not in pointer:
            return None
        return pointer

    def _write_live_pointer(self, name: str, pointer: dict) -> None:
        """Atomically replace the pointer; call with the name lock held."""
        directory = self.root / name
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".live.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(pointer, handle)
            os.replace(tmp_name, directory / _LIVE_FILE)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self, name: str, version: str | None = None) -> tuple[BaseDetector, str]:
        """Return ``(detector, version)``; ``version=None`` means live/latest.

        Cached: the same ``(name, version)`` returns the same instance, so
        concurrent scoring shares one model's memory.  Degradation ladder
        on failure: transient faults retry with backoff; a corrupt
        artifact is quarantined and the previous version served; repeated
        failures open the circuit breaker, which serves the last-good
        resident version or raises :class:`CircuitOpen`.
        """
        _validate_component(name, "model name")
        if version is not None:
            _validate_component(version, "version")
        candidates = self._candidate_versions(name, version)
        primary = candidates[0]
        cached = self._cache_get(name, primary)
        if cached is not None:
            return cached, primary

        breaker = self.breaker_for(name)
        if not breaker.allow():
            return self._degraded_serve(name, breaker)
        corrupt_error: RegistryError | None = None
        for resolved in candidates:
            cached = self._cache_get(name, resolved)
            if cached is not None:
                breaker.record_success()
                return cached, resolved
            with self._name_lock(name):
                cached = self._cache_get(name, resolved)
                if cached is not None:
                    breaker.record_success()
                    return cached, resolved
                try:
                    detector = self._read_with_retries(name, resolved)
                except _CorruptArtifact as error:
                    self._quarantine(name, resolved, error)
                    corrupt_error = error
                    continue
                except TransientFault:
                    breaker.record_failure()
                    with self._lock:
                        fallback = self._last_good.get(name)
                    if fallback is not None:
                        return fallback
                    raise
                self._cache_put(name, resolved, detector)
            breaker.record_success()
            return detector, resolved
        breaker.record_failure()
        raise RegistryError(
            f"model {name!r} has no loadable version left "
            f"(corrupt artifacts quarantined to {self.root / _QUARANTINE_DIR}): "
            f"{corrupt_error}"
        ) from corrupt_error

    def load_fresh(self, name: str, version: str | None = None) -> tuple[BaseDetector, str]:
        """Load a **new, uncached** detector instance.

        The serving cache hands every caller the *same* object; mutating
        it (e.g. an incremental refit) would swap weights under in-flight
        batches.  Lifecycle refresh therefore builds its candidate from a
        fresh instance — the live model is never touched in place.
        """
        _validate_component(name, "model name")
        if version is None:
            version = self.live_version(name)
        else:
            _validate_component(version, "version")
        return self._read_with_retries(name, version), version

    def _candidate_versions(self, name: str, version: str | None) -> list[str]:
        """The requested/live version first, then older fallbacks."""
        with self._name_lock(name):
            versions = self._versions_on_disk(name)
            if not versions:
                raise ModelNotFound(f"no versions of model {name!r} in {self.root}")
            if version is None:
                pointer = self._read_live_pointer(name)
                if pointer is not None and pointer["version"] in versions:
                    version = pointer["version"]
                else:
                    version = versions[-1]
            elif version not in versions:
                raise ModelNotFound(f"model {name}:{version} not found in {self.root}")
            index = versions.index(version)
        return [version] + list(reversed(versions[:index]))

    def _degraded_serve(
        self, name: str, breaker: CircuitBreaker
    ) -> tuple[BaseDetector, str]:
        with self._lock:
            entry = self._last_good.get(name)
        if entry is not None:
            return entry
        raise CircuitOpen(name, max(breaker.retry_after, 0.1))

    def _read_with_retries(self, name: str, version: str) -> BaseDetector:
        """One artifact read, retrying transient faults with backoff."""
        delays = list(self._retry.delays())
        attempt = 0
        while True:
            try:
                return self._load_artifact(name, version)
            except (TransientFault, OSError) as error:
                if attempt >= len(delays):
                    if isinstance(error, TransientFault):
                        raise
                    raise TransientFault(
                        f"artifact {name}:{version} read failed after "
                        f"{len(delays)} retries: {error}"
                    ) from error
                self._retry.sleep(delays[attempt])
                attempt += 1

    def _load_artifact(self, name: str, version: str) -> BaseDetector:
        if self.load_fault_hook is not None:
            self.load_fault_hook(name, version)
        path = self._artifact_path(name, version)
        if not path.exists():
            raise ModelNotFound(f"model {name}:{version} not found in {self.root}")
        try:
            metadata = load_metadata(path)
        except CheckpointError as error:
            raise _CorruptArtifact(f"artifact {path} is unreadable: {error}") from error
        for field in ("detector", "hyperparams", "fingerprint"):
            if field not in metadata:
                raise _CorruptArtifact(f"artifact {path} metadata is missing {field!r}")
        expected = config_fingerprint(metadata["hyperparams"])
        if metadata["fingerprint"] != expected:
            raise _CorruptArtifact(
                f"artifact {path} fingerprint mismatch (recorded "
                f"{metadata['fingerprint'][:12]}…, recomputed {expected[:12]}…); "
                "the metadata was altered after publishing"
            )
        codec = _lookup_codec(metadata["detector"])
        if codec is None:
            # Not the file's fault — quarantining would destroy a good
            # artifact over a process-side registration gap.
            raise RegistryError(
                f"artifact {path} needs codec {metadata['detector']!r}, which is "
                "not registered in this process"
            )
        try:
            detector, module = codec.build(metadata["hyperparams"])
        except (TypeError, ValueError, KeyError) as error:
            raise RegistryError(f"artifact {path} failed to load: {error}") from error
        try:
            load_training_state(path, module)
        except CheckpointError as error:
            raise _CorruptArtifact(f"artifact {path} failed to load: {error}") from error
        return detector

    # ------------------------------------------------------------------
    # quarantine
    # ------------------------------------------------------------------
    def _quarantine(self, name: str, version: str, error: RegistryError) -> None:
        """Move a corrupt artifact aside and heal the live pointer.

        Called with the model's name lock held (the disk side); the state
        lock is taken only for the in-memory evictions.
        """
        source = self._artifact_path(name, version)
        quarantine = self.root / _QUARANTINE_DIR
        quarantine.mkdir(parents=True, exist_ok=True)
        target = quarantine / f"{name}__{version}.npz"
        suffix = 1
        while target.exists():
            target = quarantine / f"{name}__{version}.{suffix}.npz"
            suffix += 1
        try:
            os.replace(source, target)
        except OSError:
            # Already moved by a racing loader, or the file vanished —
            # either way the artifact no longer serves, which is the point.
            pass
        with self._lock:
            self._cache.pop((name, version), None)
            entry = self._last_good.get(name)
            if entry is not None and entry[1] == version:
                del self._last_good[name]
        pointer = self._read_live_pointer(name)
        if pointer is not None and pointer["version"] == version:
            remaining = self._versions_on_disk(name)
            fallback = pointer.get("prior")
            if fallback not in remaining:
                fallback = remaining[-1] if remaining else None
            if fallback is not None:
                self._write_live_pointer(
                    name,
                    {"version": fallback, "prior": None, "quarantined": version},
                )
            else:
                try:
                    (self.root / name / _LIVE_FILE).unlink()
                except OSError:
                    pass

    def quarantined(self, name: str | None = None) -> list[str]:
        """Quarantined artifact file names (optionally for one model)."""
        quarantine = self.root / _QUARANTINE_DIR
        if not quarantine.is_dir():
            return []
        entries = sorted(entry.name for entry in quarantine.glob("*.npz"))
        if name is None:
            return entries
        return [entry for entry in entries if entry.startswith(f"{name}__")]

    # ------------------------------------------------------------------
    # breaker / health
    # ------------------------------------------------------------------
    def breaker_for(self, name: str) -> CircuitBreaker:
        """The per-model circuit breaker (created on first use)."""
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self._breaker_threshold,
                    reset_timeout=self._breaker_reset,
                    clock=self._clock,
                )
                self._breakers[name] = breaker
            return breaker

    def status(self, name: str) -> dict:
        """Serving-health view of one model (consumed by ``/healthz``)."""
        _validate_component(name, "model name")
        with self._name_lock(name):
            versions = self._versions_on_disk(name)
            pointer = self._read_live_pointer(name)
        with self._lock:
            breaker = self._breakers.get(name)
            entry = self._last_good.get(name)
        live = None
        if versions:
            live = pointer["version"] if (
                pointer is not None and pointer["version"] in versions
            ) else versions[-1]
        quarantined = self.quarantined(name)
        breaker_state = breaker.state if breaker is not None else "closed"
        return {
            "live": live,
            "versions": versions,
            "prior": pointer.get("prior") if pointer else None,
            "breaker": breaker_state,
            "retry_after": breaker.retry_after if breaker is not None else 0.0,
            "last_good": entry[1] if entry is not None else None,
            "quarantined": quarantined,
            "degraded": breaker_state != "closed" or bool(quarantined),
        }

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    def _cache_get(self, name: str, version: str) -> BaseDetector | None:
        key = (name, version)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
            return cached

    def _cache_put(self, name: str, version: str, detector: BaseDetector) -> None:
        with self._lock:
            self._cache[(name, version)] = detector
            self._cache.move_to_end((name, version))
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
            self._last_good[name] = (detector, version)

    def _name_lock(self, name: str) -> threading.Lock:
        with self._lock:
            lock = self._name_locks.get(name)
            if lock is None:
                lock = named_lock("serve.registry.per-model", blocking_ok=True)
                self._name_locks[name] = lock
            return lock

    # ------------------------------------------------------------------
    # listing / inspection
    # ------------------------------------------------------------------
    def models(self) -> list[str]:
        """Registered model names, sorted.

        A model whose every artifact has been quarantined still lists —
        hiding it from ``/healthz`` would hide exactly the sickest model.
        """
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and entry.name != _QUARANTINE_DIR
            and _NAME_RE.match(entry.name)
            and (any(entry.glob("*.npz")) or self.quarantined(entry.name))
        )

    def versions(self, name: str) -> list[str]:
        """Versions of a model, oldest first (numeric-aware for ``v<n>``)."""
        with self._name_lock(name):
            return self._versions_on_disk(name)

    def latest(self, name: str) -> str:
        versions = self.versions(name)
        if not versions:
            raise ModelNotFound(f"no versions of model {name!r} in {self.root}")
        return versions[-1]

    def describe(self, name: str, version: str | None = None) -> dict:
        """The stored metadata record for one version (latest by default)."""
        _validate_component(name, "model name")
        if version is None:
            version = self.latest(name)
        path = self._artifact_path(name, version)
        if not path.exists():
            raise ModelNotFound(f"model {name}:{version} not found in {self.root}")
        try:
            return load_metadata(path)
        except CheckpointError as error:
            raise RegistryError(f"artifact {path} is unreadable: {error}") from error

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _artifact_path(self, name: str, version: str) -> Path:
        return self.root / name / f"{version}.npz"

    def _versions_on_disk(self, name: str) -> list[str]:
        """Glob the version listing; call with the name lock held."""
        directory = self.root / name
        if not directory.is_dir():
            return []

        def sort_key(version: str) -> tuple:
            match = re.fullmatch(r"v(\d+)", version)
            return (0, int(match.group(1))) if match else (1, version)

        return sorted((p.stem for p in directory.glob("*.npz")), key=sort_key)
