"""Model registry: persist fitted detectors as named, versioned artifacts.

Layout — one self-contained ``.npz`` per version (weights *and* metadata
in a single atomically-written file, so a version can never be half
published)::

    <root>/
        <model-name>/
            v1.npz
            v2.npz
            ...

Each artifact is written with
:func:`repro.nn.serialization.save_training_state`: the module's weights
under ``model.*`` plus a JSON metadata record carrying everything needed
to rebuild the detector **without refitting** — the full config, the
feature count, the calibrated threshold, and a SHA-256 config
fingerprint.  :meth:`ModelRegistry.load` verifies the fingerprint before
trusting the metadata, rebuilds the detector through its codec, loads
the weights (shape-validated by ``load_model`` semantics), and caches
the result so repeated requests for the same version hit memory.

Detector types plug in through a small codec protocol
(:func:`register_codec`): ``export`` turns a fitted detector into
``(module, hyperparams)``, ``build`` turns hyperparams back into an
unfitted-but-configured detector whose module the weights are loaded
into.  TFMAE ships registered; baselines with a single ``Module`` can
register theirs in one call.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import Callable, NamedTuple

from ..detector import BaseDetector
from ..nn.module import Module
from ..nn.serialization import (
    CheckpointError,
    load_metadata,
    load_training_state,
    save_training_state,
)
from .errors import ModelNotFound, RegistryError

__all__ = ["ModelRegistry", "DetectorCodec", "register_codec", "config_fingerprint"]

#: Registry schema version embedded in every artifact.
_SCHEMA = 1

#: Safe path components: no separators, no traversal, no hidden files.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class DetectorCodec(NamedTuple):
    """How to take one detector type apart and put it back together.

    ``export(detector) -> (module, hyperparams)`` — the module whose
    ``state_dict`` is persisted and a JSON-serialisable hyperparameter
    dict; ``build(hyperparams) -> (detector, module)`` — a configured
    detector marked fitted/calibrated plus the module to load weights
    into.
    """

    export: Callable[[BaseDetector], tuple[Module, dict]]
    build: Callable[[dict], tuple[BaseDetector, Module]]


_CODECS: dict[str, DetectorCodec] = {}
#: Guards _CODECS: registration normally happens at import time, but a
#: serving process may register a codec while worker threads resolve types.
_CODECS_LOCK = threading.Lock()


def register_codec(detector_type: str, codec: DetectorCodec) -> None:
    """Register persistence support for a detector type (by class name)."""
    with _CODECS_LOCK:
        _CODECS[detector_type] = codec


def _lookup_codec(detector_type: str) -> DetectorCodec | None:
    with _CODECS_LOCK:
        return _CODECS.get(detector_type)


def _preflight_module(module: Module) -> None:
    """Shape/dtype/grad-flow check a model before it becomes an artifact.

    Duck-typed: runs only for modules following the detector-model
    contract (``config.window_size``, ``n_features``, ``loss``) whose
    config opts in via ``preflight=True`` — a broken graph is caught at
    publish time instead of on the first serving request.  Raises
    :class:`repro.analysis.ShapeCheckError`.
    """
    config = getattr(module, "config", None)
    if config is None or not getattr(config, "preflight", False):
        return
    if not (hasattr(module, "loss") and hasattr(module, "n_features")
            and hasattr(config, "window_size")):
        return
    from ..analysis.shapecheck import preflight_model

    preflight_model(module)


def config_fingerprint(payload: dict) -> str:
    """SHA-256 over the canonical JSON form of a config/hyperparam dict."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# TFMAE codec
# ----------------------------------------------------------------------
def _tfmae_export(detector: BaseDetector) -> tuple[Module, dict]:
    from ..core import TFMAE

    assert isinstance(detector, TFMAE)
    if detector.model is None:
        raise RegistryError("TFMAE detector has no trained model; fit it first")
    hyperparams = {
        "config": asdict(detector.config),
        "n_features": detector.model.n_features,
        "threshold": float(detector.threshold_),
        "anomaly_ratio": detector.anomaly_ratio,
    }
    return detector.model, hyperparams


def _tfmae_build(hyperparams: dict) -> tuple[BaseDetector, Module]:
    from ..core import TFMAE, TFMAEConfig
    from ..core.model import TFMAEModel

    config = TFMAEConfig(**hyperparams["config"])
    detector = TFMAE(config)
    detector.model = TFMAEModel(n_features=int(hyperparams["n_features"]), config=config)
    detector._fitted = True
    detector.threshold_ = float(hyperparams["threshold"])
    return detector, detector.model


register_codec("TFMAE", DetectorCodec(export=_tfmae_export, build=_tfmae_build))


def _validate_component(value: str, what: str) -> str:
    if not _NAME_RE.match(value):
        raise RegistryError(
            f"invalid {what} {value!r}: use letters, digits, '.', '_', '-' "
            "(must not start with a separator)"
        )
    return value


class ModelRegistry:
    """Filesystem-backed store of fitted detectors with an in-memory cache.

    Parameters
    ----------
    root:
        Directory holding the registry (created on first publish).
    cache_size:
        Number of loaded detectors kept in memory (LRU). Serving hot
        models never re-reads the artifact; cold versions load on demand.
    """

    def __init__(self, root: str | Path, cache_size: int = 4):
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self.root = Path(root)
        self._cache_size = cache_size
        self._cache: OrderedDict[tuple[str, str], BaseDetector] = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(self, name: str, detector: BaseDetector, version: str | None = None) -> str:
        """Persist a fitted, threshold-calibrated detector; returns the version.

        ``version`` defaults to the next ``v<n>``.  Publishing an existing
        version is refused — versions are immutable; publish a new one.
        """
        _validate_component(name, "model name")
        detector_type = type(detector).__name__
        codec = _lookup_codec(detector_type)
        if codec is None:
            raise RegistryError(
                f"no codec registered for detector type {detector_type!r}; "
                "see repro.serve.registry.register_codec"
            )
        if detector.threshold_ is None:
            raise RegistryError(
                f"detector {detector_type!r} has no calibrated threshold; serving "
                "needs one — fit with a validation split or call calibrate_threshold()"
            )
        module, hyperparams = codec.export(detector)
        _preflight_module(module)

        with self._lock:
            if version is None:
                version = f"v{len(self._versions_unlocked(name)) + 1}"
            _validate_component(version, "version")
            path = self._artifact_path(name, version)
            if path.exists():
                raise RegistryError(
                    f"{name}:{version} already exists; registry versions are immutable"
                )
            metadata = {
                "schema": _SCHEMA,
                "name": name,
                "version": version,
                "detector": detector_type,
                "hyperparams": hyperparams,
                "fingerprint": config_fingerprint(hyperparams),
            }
            save_training_state(path, module, metadata=metadata)
        return version

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self, name: str, version: str | None = None) -> tuple[BaseDetector, str]:
        """Return ``(detector, version)``; ``version=None`` means latest.

        Cached: the same ``(name, version)`` returns the same instance, so
        concurrent scoring shares one model's memory.
        """
        _validate_component(name, "model name")
        with self._lock:
            if version is None:
                versions = self._versions_unlocked(name)
                if not versions:
                    raise ModelNotFound(f"no versions of model {name!r} in {self.root}")
                version = versions[-1]
            else:
                _validate_component(version, "version")
            key = (name, version)
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                return cached, version
            detector = self._load_artifact(name, version)
            self._cache[key] = detector
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return detector, version

    def _load_artifact(self, name: str, version: str) -> BaseDetector:
        path = self._artifact_path(name, version)
        if not path.exists():
            raise ModelNotFound(f"model {name}:{version} not found in {self.root}")
        try:
            metadata = load_metadata(path)
        except CheckpointError as error:
            raise RegistryError(f"artifact {path} is unreadable: {error}") from error
        for field in ("detector", "hyperparams", "fingerprint"):
            if field not in metadata:
                raise RegistryError(f"artifact {path} metadata is missing {field!r}")
        expected = config_fingerprint(metadata["hyperparams"])
        if metadata["fingerprint"] != expected:
            raise RegistryError(
                f"artifact {path} fingerprint mismatch (recorded "
                f"{metadata['fingerprint'][:12]}…, recomputed {expected[:12]}…); "
                "the metadata was altered after publishing"
            )
        codec = _lookup_codec(metadata["detector"])
        if codec is None:
            raise RegistryError(
                f"artifact {path} needs codec {metadata['detector']!r}, which is "
                "not registered in this process"
            )
        try:
            detector, module = codec.build(metadata["hyperparams"])
            load_training_state(path, module)
        except (CheckpointError, TypeError, ValueError, KeyError) as error:
            raise RegistryError(f"artifact {path} failed to load: {error}") from error
        return detector

    # ------------------------------------------------------------------
    # listing / inspection
    # ------------------------------------------------------------------
    def models(self) -> list[str]:
        """Registered model names, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and _NAME_RE.match(entry.name) and any(entry.glob("*.npz"))
        )

    def versions(self, name: str) -> list[str]:
        """Versions of a model, oldest first (numeric-aware for ``v<n>``)."""
        with self._lock:
            return self._versions_unlocked(name)

    def latest(self, name: str) -> str:
        versions = self.versions(name)
        if not versions:
            raise ModelNotFound(f"no versions of model {name!r} in {self.root}")
        return versions[-1]

    def describe(self, name: str, version: str | None = None) -> dict:
        """The stored metadata record for one version (latest by default)."""
        _validate_component(name, "model name")
        if version is None:
            version = self.latest(name)
        path = self._artifact_path(name, version)
        if not path.exists():
            raise ModelNotFound(f"model {name}:{version} not found in {self.root}")
        try:
            return load_metadata(path)
        except CheckpointError as error:
            raise RegistryError(f"artifact {path} is unreadable: {error}") from error

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _artifact_path(self, name: str, version: str) -> Path:
        return self.root / name / f"{version}.npz"

    def _versions_unlocked(self, name: str) -> list[str]:
        directory = self.root / name
        if not directory.is_dir():
            return []

        def sort_key(version: str) -> tuple:
            match = re.fullmatch(r"v(\d+)", version)
            return (0, int(match.group(1))) if match else (1, version)

        return sorted((p.stem for p in directory.glob("*.npz")), key=sort_key)
