"""Typed errors for the serving subsystem.

Every failure a client can trigger has its own class so the HTTP front
end can map it to a status code without string matching, and embedded
callers (the bench harness, tests) can catch precisely what they expect.
"""

from __future__ import annotations

__all__ = [
    "ServeError",
    "Overloaded",
    "ModelNotFound",
    "RegistryError",
    "TransientFault",
    "CircuitOpen",
]


class ServeError(RuntimeError):
    """Base class for all serving-layer failures."""


class Overloaded(ServeError):
    """The micro-batcher's bounded queue is full and the request was shed.

    Raised *immediately* at submit time (load shedding), never after
    queueing: a client that sees this error knows its request consumed no
    scoring capacity and can retry with backoff.  Maps to HTTP 429.
    """

    def __init__(self, depth: int, capacity: int):
        super().__init__(
            f"scoring queue is full ({depth}/{capacity} requests); retry with backoff"
        )
        self.depth = depth
        self.capacity = capacity


class ModelNotFound(ServeError):
    """The requested model name/version is not in the registry (HTTP 404)."""


class RegistryError(ServeError):
    """A registry artifact is missing, corrupt, or unpublishable."""


class TransientFault(ServeError):
    """A load failure expected to clear on retry (I/O hiccup, injected
    chaos fault).  The registry retries these with capped exponential
    backoff before counting a circuit-breaker failure; everything else
    (corrupt artifact, missing version) fails without retrying."""


class CircuitOpen(ServeError):
    """The per-model circuit breaker is open and no last-good version is
    resident to serve instead.

    Carries ``retry_after`` (seconds until the breaker half-opens) so the
    HTTP layer can answer 503 with a ``Retry-After`` header — the client
    contract for "this model is sick, the service is not".
    """

    def __init__(self, model: str, retry_after: float):
        super().__init__(
            f"model {model!r} circuit breaker is open (repeated load failures); "
            f"retry in {retry_after:.1f}s"
        )
        self.model = model
        self.retry_after = retry_after
