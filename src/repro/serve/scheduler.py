"""Micro-batching scheduler: coalesce concurrent score requests.

Concurrent clients each want the anomaly score of one window, but the
numpy substrate is fastest when it sees many windows at once — a single
``(B, T, N)`` forward pass through :meth:`BaseDetector.score_last`
amortises Python/BLAS overhead across the batch (the same helper the
vectorized :meth:`StreamingDetector.update_many` uses, so serving and
streaming share one batched hot path).

Flow::

    submit() ──> bounded FIFO queue ──> worker pool (threads)
                     │                      each worker:
                     │ full? shed load        1. block on first request
                     ▼ (Overloaded)           2. drain more until
                                                 max_batch_size or
                                                 max_delay elapses
                                              3. group by (model, shape)
                                              4. one score_last per group
                                              5. resolve futures

Guarantees:

* **Equivalence** — scores are bitwise identical to sequential
  ``detector.score(window)[-1]`` calls (``score_last`` is batch-size
  invariant; tests assert this under concurrency).
* **Bounded memory** — the queue holds at most ``max_queue`` requests;
  beyond that ``submit`` raises :class:`Overloaded` immediately
  (load-shedding, never unbounded latency).
* **Bounded latency** — a lone request waits at most ``max_delay``
  before being scored in a batch of one.
* **Graceful shutdown** — ``stop()`` rejects new work, drains everything
  already accepted, and joins the workers.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import defaultdict
from concurrent.futures import Future
from typing import Callable

import numpy as np

from ..analysis.lockcheck import named_lock
from ..detector import BaseDetector
from ..nn import jit as nn_jit
from .errors import Overloaded, ServeError
from .metrics import MetricsRegistry

__all__ = ["MicroBatcher", "ScoreRequest"]

#: Queue sentinel telling one worker to exit after the drain.
_STOP = object()


class ScoreRequest:
    """One queued window plus the future its score resolves."""

    __slots__ = ("model_key", "window", "future", "enqueued_at")

    def __init__(self, model_key: str, window: np.ndarray):
        self.model_key = model_key
        self.window = window
        self.future: Future = Future()
        self.enqueued_at = time.monotonic()


class MicroBatcher:
    """Batch concurrent single-window score requests into vector calls.

    Parameters
    ----------
    detector_for:
        Maps a model key (any string the caller chooses, e.g.
        ``"name:version"``) to a fitted detector.  Called once per batch
        group on the worker thread; pair it with
        :class:`~repro.serve.registry.ModelRegistry` for cached loading.
    max_batch_size:
        Most windows scored in one ``score_last`` call.
    max_delay:
        Seconds a worker waits for the batch to fill once it holds the
        first request — the latency price paid for throughput.
    max_queue:
        Bounded queue capacity; beyond it ``submit`` sheds load.
    workers:
        Scoring threads.  Each owns its batch end to end, so batches are
        scored in parallel while numpy releases the GIL.
    metrics:
        Optional :class:`MetricsRegistry`; the batcher records queue
        depth, batch sizes, shed counts, and per-model scored counts.
    jit:
        Tape-replay scoring policy for the worker threads: ``True`` /
        ``False`` pin it on or off per batch via a thread-local
        :class:`repro.nn.jit.use_jit` override; ``None`` (default)
        inherits the ambient :func:`repro.nn.jit.set_jit` process
        default (on).
    """

    def __init__(
        self,
        detector_for: Callable[[str], BaseDetector],
        max_batch_size: int = 32,
        max_delay: float = 0.002,
        max_queue: int = 256,
        workers: int = 1,
        metrics: MetricsRegistry | None = None,
        jit: bool | None = None,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.detector_for = detector_for
        self.jit = None if jit is None else bool(jit)
        self.max_batch_size = max_batch_size
        self.max_delay = max_delay
        self.max_queue = max_queue
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"repro-serve-worker-{i}",
                             daemon=True)
            for i in range(workers)
        ]
        self._state_lock = named_lock("serve.scheduler.state")
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MicroBatcher":
        with self._state_lock:
            if self._closed:
                raise ServeError("batcher was stopped; create a new one")
            if not self._started:
                for worker in self._workers:
                    worker.start()
                self._started = True
                self.metrics.gauge("serve_workers").set(len(self._workers))
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        """Reject new work, drain accepted requests, join the workers.

        FIFO ordering makes the drain exact: the stop sentinels are
        enqueued after every accepted request, so each worker processes
        all real work it encounters before its sentinel.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
            # Sentinels go in under the same lock submit() holds for its
            # put, so no request can slip in behind them and starve.  A
            # full queue is fine: workers keep draining it without the
            # lock, so these puts always make progress.
            for _ in self._workers:
                # The sentinel MUST be enqueued while holding the same
                # lock submit() uses, or a racing submit slips a request
                # behind it that no worker will ever drain.  The put
                # cannot stall: workers consume without the lock, so the
                # queue always makes room.
                self._queue.put(_STOP)  # repro: noqa[BLK001]
        if started:
            for worker in self._workers:
                worker.join(timeout=timeout)
        self.metrics.gauge("serve_workers").set(0)

    def __enter__(self) -> "MicroBatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting in the bounded queue."""
        return self._queue.qsize()

    def submit(self, model_key: str, window: np.ndarray) -> Future:
        """Enqueue one window; the returned future resolves to its score.

        Raises
        ------
        Overloaded
            Immediately, when the queue is full (the request was shed and
            consumed no capacity).
        ServeError
            When the batcher is stopped or not started.
        """
        request = ScoreRequest(model_key, np.asarray(window, dtype=np.float64))
        with self._state_lock:
            if self._closed:
                raise ServeError("batcher is stopped and no longer accepts requests")
            if not self._started:
                raise ServeError("batcher not started; call start() first")
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                self.metrics.counter("serve_requests_shed_total").inc()
                raise Overloaded(depth=self.max_queue, capacity=self.max_queue) from None
        self.metrics.gauge("serve_queue_depth").set(self._queue.qsize())
        return request.future

    def score(self, model_key: str, window: np.ndarray, timeout: float | None = 30.0) -> float:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(model_key, window).result(timeout=timeout)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _collect_batch(self) -> tuple[list[ScoreRequest], bool]:
        """Block for the first request, then drain until size/deadline.

        Returns ``(batch, saw_stop)``.
        """
        first = self._queue.get()
        if first is _STOP:
            return [], True
        batch = [first]
        deadline = time.monotonic() + self.max_delay
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # One last non-blocking sweep: under sustained load the
                # queue already holds work and waiting again only adds
                # latency.
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
            else:
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
            if item is _STOP:
                return batch, True
            batch.append(item)
        return batch, False

    def _score_batch(self, batch: list[ScoreRequest]) -> None:
        self.metrics.gauge("serve_queue_depth").set(self._queue.qsize())
        self.metrics.histogram("serve_batch_size").observe(len(batch))
        self.metrics.counter("serve_batches_total").inc()
        # Group by model and window shape: one vectorized call per group.
        groups: dict[tuple[str, tuple[int, ...]], list[ScoreRequest]] = defaultdict(list)
        for request in batch:
            groups[(request.model_key, request.window.shape)].append(request)
        for (model_key, _shape), requests in groups.items():
            now = time.monotonic()
            for request in requests:
                self.metrics.histogram("serve_queue_wait_seconds").observe(
                    now - request.enqueued_at
                )
            try:
                detector = self.detector_for(model_key)
                # score_last is the shared chunked scorer (see
                # repro.datasets.windows.batched_window_scores); a batch
                # of one rides a zero-copy view instead of a stack.
                if len(requests) == 1:
                    windows = requests[0].window[None]
                else:
                    windows = np.stack([r.window for r in requests])
                if self.jit is None:
                    scores = detector.score_last(windows)
                else:
                    with nn_jit.use_jit(self.jit):
                        scores = detector.score_last(windows)
            except BaseException as error:  # noqa: BLE001 — forwarded to clients
                for request in requests:
                    if not request.future.set_running_or_notify_cancel():
                        continue
                    request.future.set_exception(error)
                continue
            self.metrics.counter("serve_windows_scored_total", model=model_key).inc(
                len(requests)
            )
            for request, score in zip(requests, scores):
                if not request.future.set_running_or_notify_cancel():
                    continue
                request.future.set_result(float(score))

    def _worker_loop(self) -> None:
        while True:
            batch, saw_stop = self._collect_batch()
            if batch:
                self._score_batch(batch)
            if saw_stop:
                return
