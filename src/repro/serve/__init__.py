"""``repro.serve`` — micro-batched inference serving for fitted detectors.

The online path beyond :class:`~repro.streaming.StreamingDetector`: host
a fitted, threshold-calibrated detector behind a versioned registry and
a JSON-over-HTTP interface, with concurrent requests coalesced into
vectorized forward passes.

Pieces (each usable standalone):

* :class:`ModelRegistry` — persist/load fitted detectors as named,
  versioned, fingerprinted ``.npz`` artifacts (built on
  ``repro.nn.serialization``), with load-on-demand LRU caching.
* :class:`MicroBatcher` — bounded-queue micro-batching scheduler with a
  worker-thread pool, max-batch/max-delay flush policy, and explicit
  load-shedding (:class:`Overloaded`).
* :class:`ProcessPool` — the multi-process scoring tier: supervised
  worker processes sharded past the GIL, one shared-memory weight copy
  per model (:class:`~repro.serve.shm.WeightSegment`), consistent-hash
  model→worker routing (:class:`~repro.serve.hashring.HashRing`),
  per-model admission quotas, and crash detection → re-route → respawn.
* :class:`InferenceServer` — stdlib ``http.server`` front end exposing
  ``/score``, ``/predict``, ``/healthz``, ``/metrics``, ``/models``.
* :class:`MetricsRegistry` — counters, gauges, and latency histograms
  (p50/p95/p99) recorded per endpoint and per model; also used by the
  serving throughput bench.
* :mod:`~repro.serve.lifecycle` — the model lifecycle loop:
  :class:`DriftMonitor` (live score-distribution drift),
  :func:`shadow_compare` (candidate vs. live on identical windows), and
  :class:`LifecycleManager` (guarded publish, post-publish watchdog,
  atomic rollback via the registry's live pointer).
* :class:`~repro.serve.breaker.CircuitBreaker` /
  :class:`~repro.serve.breaker.RetryPolicy` — per-model load-failure
  isolation: capped-backoff retries, then open-circuit degradation
  (last-good version or 503 + ``Retry-After``).

Quickstart (in-process)::

    from repro.serve import InferenceServer, ModelRegistry

    registry = ModelRegistry("./model-registry")
    registry.publish("tfmae-smd", fitted_detector)     # -> "v1"
    with InferenceServer(registry, port=0) as server:
        ...                                            # POST {url}/score

See ``docs/serving.md`` for the architecture and API reference.
"""

from .breaker import CircuitBreaker, RetryPolicy
from .errors import (
    CircuitOpen,
    ModelNotFound,
    Overloaded,
    RegistryError,
    ServeError,
    TransientFault,
)
from .lifecycle import (
    DriftMonitor,
    DriftReport,
    LifecycleManager,
    RefreshReport,
    RollbackRecord,
    ShadowReport,
    WatchdogReport,
    shadow_compare,
)
from .hashring import HashRing
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .pool import ProcessPool
from .registry import DetectorCodec, ModelRegistry, config_fingerprint, register_codec
from .scheduler import MicroBatcher, ScoreRequest
from .server import InferenceServer
from .shm import WeightSegment, attach_segment

__all__ = [
    "ServeError",
    "Overloaded",
    "ModelNotFound",
    "RegistryError",
    "TransientFault",
    "CircuitOpen",
    "CircuitBreaker",
    "RetryPolicy",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ModelRegistry",
    "DetectorCodec",
    "register_codec",
    "config_fingerprint",
    "MicroBatcher",
    "ScoreRequest",
    "ProcessPool",
    "HashRing",
    "WeightSegment",
    "attach_segment",
    "InferenceServer",
    "DriftMonitor",
    "DriftReport",
    "ShadowReport",
    "shadow_compare",
    "LifecycleManager",
    "RefreshReport",
    "WatchdogReport",
    "RollbackRecord",
]
