"""Shared-memory weight segments: one physical copy for N worker processes.

The process-pool tier (:mod:`repro.serve.pool`) must not pay N private
copies of every model's weights.  The front-end therefore packs a
module's state dict into **one** ``multiprocessing.shared_memory``
segment (:class:`WeightSegment`, via the flat-buffer layout in
:mod:`repro.nn.serialization`) and ships workers only the segment name
plus the layout manifest.  Each worker attaches the segment and binds
zero-copy, read-only numpy views as its parameters
(``Module.load_state_dict(state, copy=False)``) — the kernel maps the
same physical pages into every worker, so weight memory is O(1) in the
worker count and shows up as ``RssShmem``, not ``RssAnon``, in each
worker (asserted by ``benchmarks/bench_multiproc_serving.py``).

Lifecycle: the **publisher** (front-end) owns the segment and unlinks it
on close; **attachers** (workers) only close their mapping.  CPython's
``SharedMemory`` registers every mapping — attach included — with the
process tree's shared ``resource_tracker``, whose bookkeeping is a set:
an attacher's registration aliases the publisher's, so any attacher
exit would prompt the tracker to unlink a segment the rest of the pool
is still serving from (the long-standing tracking bug fixed upstream
only by 3.13's ``track=False``).  :func:`attach_segment` therefore
suppresses registration for the duration of the attach — the publisher
stays the segment's only registered owner.
"""

from __future__ import annotations

from multiprocessing import shared_memory

from ..analysis.lockcheck import named_lock
from ..nn.module import Module
from ..nn.serialization import pack_state_into, state_layout, unpack_state

__all__ = ["WeightSegment", "attach_segment"]

#: Serialises the brief resource-tracker patch inside attach_segment.
#: ``blocking_ok``: the attach syscall is the critical section.
_ATTACH_LOCK = named_lock("serve.shm.attach", blocking_ok=True)


class WeightSegment:
    """A published model's weights in one named shared-memory segment.

    Construct with :meth:`publish` (front-end, owner) or
    :func:`attach_segment` (worker, reader).  ``manifest`` is the
    JSON-serialisable layout to ship alongside the segment ``name``.
    """

    def __init__(self, shm: shared_memory.SharedMemory, manifest: list[dict],
                 nbytes: int, owner: bool):
        self._shm = shm
        self.manifest = manifest
        self.nbytes = nbytes
        self.owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, module: Module, name: str | None = None) -> "WeightSegment":
        """Pack ``module``'s state into a fresh segment (the one copy)."""
        state = module.state_dict()
        nbytes, manifest = state_layout(state)
        shm = shared_memory.SharedMemory(create=True, name=name,
                                         size=max(1, nbytes))
        try:
            pack_state_into(shm.buf, state, manifest)
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, manifest, nbytes, owner=True)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    def state(self, writeable: bool = False):
        """Zero-copy state-dict views into the segment (read-only default)."""
        return unpack_state(self._shm.buf, self.manifest, writeable=writeable)

    def bind_into(self, module: Module) -> Module:
        """Bind the segment's arrays as ``module``'s parameters (no copy)."""
        module.load_state_dict(self.state(), copy=False)
        return module

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this mapping; the owner also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:
            # numpy views bound as parameters (or cached in JIT tapes)
            # still reference the mapping.  Disarm the underlying object
            # so its __del__ does not retry and spray tracebacks at
            # interpreter shutdown; the kernel reclaims the mapping with
            # the process.  POSIX happily unlinks a mapped segment — the
            # pages go away with the last mapping.
            self._disarm()
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def _disarm(self) -> None:
        """Neutralise SharedMemory.__del__ after an un-closeable mapping."""
        import os

        try:
            fd = self._shm._fd
            if fd >= 0:
                os.close(fd)
            self._shm._fd = -1
            self._shm._buf = None
            self._shm._mmap = None
        except (AttributeError, OSError):  # pragma: no cover - stdlib drift
            pass

    def __enter__(self) -> "WeightSegment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def attach_segment(name: str, manifest: list[dict]) -> WeightSegment:
    """Attach an existing segment by name (worker side, never unlinks).

    The attach runs with resource-tracker registration suppressed: the
    tracker's per-type bookkeeping is a *set*, so letting an attacher
    register would alias the publisher's entry and the first attacher
    exit — clean or killed — would unlink a segment its siblings still
    serve from.
    """
    from multiprocessing import resource_tracker

    with _ATTACH_LOCK:
        original = resource_tracker.register

        def _skip_shm(res_name, rtype):
            if rtype != "shared_memory":
                original(res_name, rtype)

        resource_tracker.register = _skip_shm
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    return WeightSegment(shm, manifest, shm.size, owner=False)
