"""Observability core: counters, gauges, and latency histograms.

The serving layer records every request — per endpoint and per model —
into a :class:`MetricsRegistry`, which the ``/metrics`` endpoint and the
throughput bench both read.  Stdlib-only and thread-safe: every metric
carries its own lock, and the registry locks only on metric creation, so
the hot path (``Counter.inc`` under concurrent handler threads) never
contends on a global lock.

Histograms keep exact ``count``/``sum``/``min``/``max`` over the full
lifetime plus a fixed-capacity ring buffer of recent observations from
which quantiles (p50/p95/p99) are computed.  Bounded memory, exact
percentiles over the most recent ``capacity`` samples — the right
trade-off for latency monitoring, where recent behaviour is what matters.

>>> registry = MetricsRegistry()
>>> registry.counter("requests_total", endpoint="/score").inc()
>>> registry.histogram("latency_seconds", endpoint="/score").observe(0.004)
>>> registry.snapshot()["histograms"]["latency_seconds{endpoint=/score}"]["count"]
1
"""

from __future__ import annotations

import threading
from typing import Iterator

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "metric_key"]

#: Quantiles reported for every histogram, as (label, fraction).
QUANTILES: tuple[tuple[str, float], ...] = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def metric_key(name: str, labels: dict[str, str]) -> str:
    """Canonical flat key: ``name{k1=v1,k2=v2}`` with sorted label names."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count (requests, errors, shed load)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time value (queue depth, loaded models, worker count)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Latency/size distribution with bounded memory.

    ``count``/``sum``/``min``/``max`` are exact over all observations;
    quantiles are computed over the most recent ``capacity`` samples kept
    in a ring buffer.
    """

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._lock = threading.Lock()
        self._ring = np.empty(capacity, dtype=np.float64)
        self._capacity = capacity
        self._next = 0
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._ring[self._next] = value
            self._next = (self._next + 1) % self._capacity
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Quantile over the retained window; NaN before any observation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            filled = min(self._count, self._capacity)
            if filled == 0:
                return float("nan")
            return float(np.quantile(self._ring[:filled], q))

    def summary(self) -> dict[str, float]:
        """Count, sum, mean, min/max and the standard quantiles."""
        with self._lock:
            filled = min(self._count, self._capacity)
            window = self._ring[:filled].copy()
            count, total = self._count, self._sum
            low, high = self._min, self._max
        result: dict[str, float] = {
            "count": count,
            "sum": total,
            "mean": total / count if count else float("nan"),
            "min": low if count else float("nan"),
            "max": high if count else float("nan"),
        }
        for label, q in QUANTILES:
            result[label] = float(np.quantile(window, q)) if filled else float("nan")
        return result


class MetricsRegistry:
    """Named, labelled metric store shared by the server and the bench.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling twice
    with the same name and labels returns the same instance, so callers
    never need to pre-register anything.  A name must keep one metric
    type across all label sets.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, key: str, factory, kind: type):
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {key!r} already registered as {type(metric).__name__}, "
                    f"not {kind.__name__}"
                )
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(metric_key(name, labels), Counter, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(metric_key(name, labels), Gauge, Gauge)

    def histogram(self, name: str, capacity: int = 2048, **labels: str) -> Histogram:
        return self._get_or_create(
            metric_key(name, labels), lambda: Histogram(capacity), Histogram
        )

    def _items(self) -> Iterator[tuple[str, Counter | Gauge | Histogram]]:
        with self._lock:
            return iter(sorted(self._metrics.items()))

    def snapshot(self) -> dict:
        """JSON-serialisable view: what ``/metrics`` returns.

        ``{"counters": {key: value}, "gauges": {key: value},
        "histograms": {key: {count, sum, mean, min, max, p50, p95, p99}}}``
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        for key, metric in self._items():
            if isinstance(metric, Counter):
                counters[key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[key] = metric.value
            else:
                histograms[key] = metric.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def render_text(self) -> str:
        """Flat ``key value`` lines — greppable, one metric per line."""
        lines: list[str] = []
        snapshot = self.snapshot()
        for key, value in snapshot["counters"].items():
            lines.append(f"{key} {value:g}")
        for key, value in snapshot["gauges"].items():
            lines.append(f"{key} {value:g}")
        for key, summary in snapshot["histograms"].items():
            for field, value in summary.items():
                lines.append(f"{key}.{field} {value:g}")
        return "\n".join(lines)
