"""Future-work extensions named in the paper's conclusion: forecasting
and classification on the TFMAE machinery."""

from .classification import SoftmaxProbe, TFMAEClassifier
from .forecasting import (
    ForecastConfig,
    TFMAEForecaster,
    persistence_forecast,
    seasonal_naive_forecast,
)

__all__ = [
    "ForecastConfig",
    "TFMAEForecaster",
    "persistence_forecast",
    "seasonal_naive_forecast",
    "SoftmaxProbe",
    "TFMAEClassifier",
]
