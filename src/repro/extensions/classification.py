"""Window classification on frozen TFMAE representations — the paper's
second stated future-work direction.

A fitted TFMAE model is a self-supervised representation learner: its two
branch outputs summarise a window from complementary temporal and
frequency views.  This module freezes those representations and trains a
lightweight softmax (multinomial logistic regression) head on labelled
windows — the standard linear-probe protocol for evaluating
self-supervised encoders.
"""

from __future__ import annotations

import numpy as np

from ..core.model import TFMAEModel
from ..nn import no_grad

__all__ = ["SoftmaxProbe", "TFMAEClassifier"]


class SoftmaxProbe:
    """Multinomial logistic regression trained with full-batch gradient
    descent on numpy (no autograd needed for a linear model)."""

    def __init__(self, n_classes: int, learning_rate: float = 0.5,
                 iterations: int = 300, l2: float = 1e-4, seed: int = 0):
        if n_classes < 2:
            raise ValueError("need at least two classes")
        self.n_classes = n_classes
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.l2 = l2
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.bias_: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "SoftmaxProbe":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got {features.shape}")
        if labels.min() < 0 or labels.max() >= self.n_classes:
            raise ValueError("labels out of range for configured n_classes")
        n, d = features.shape
        rng = np.random.default_rng(self.seed)
        self.weights_ = rng.normal(0, 0.01, size=(d, self.n_classes))
        self.bias_ = np.zeros(self.n_classes)
        one_hot = np.eye(self.n_classes)[labels]
        for _ in range(self.iterations):
            probabilities = self.predict_proba(features)
            gradient_logits = (probabilities - one_hot) / n
            grad_w = features.T @ gradient_logits + self.l2 * self.weights_
            grad_b = gradient_logits.sum(axis=0)
            self.weights_ -= self.learning_rate * grad_w
            self.bias_ -= self.learning_rate * grad_b
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("probe must be fit first")
        logits = features @ self.weights_ + self.bias_
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)


class TFMAEClassifier:
    """Linear probe over frozen TFMAE window representations.

    Parameters
    ----------
    model:
        A (typically fitted) :class:`~repro.core.model.TFMAEModel`; its
        parameters are never updated here.
    n_classes:
        Number of window classes.
    """

    def __init__(self, model: TFMAEModel, n_classes: int, **probe_kwargs):
        self.model = model
        self.probe = SoftmaxProbe(n_classes, **probe_kwargs)

    def representations(self, windows: np.ndarray) -> np.ndarray:
        """Frozen features: time-averaged branch outputs, concatenated."""
        if windows.ndim != 3:
            raise ValueError(f"expected (batch, time, features), got {windows.shape}")
        with no_grad():
            temporal, frequency = self.model(windows)
        parts = []
        if temporal is not None:
            parts.append(temporal.data.mean(axis=1))
        if frequency is not None:
            parts.append(frequency.data.mean(axis=1))
        return np.concatenate(parts, axis=1)

    def fit(self, windows: np.ndarray, labels: np.ndarray) -> "TFMAEClassifier":
        self.probe.fit(self.representations(windows), labels)
        return self

    def predict(self, windows: np.ndarray) -> np.ndarray:
        return self.probe.predict(self.representations(windows))

    def accuracy(self, windows: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(windows) == np.asarray(labels)).mean())
