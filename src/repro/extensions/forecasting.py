"""Masked-autoencoder forecasting — the paper's stated future work.

The conclusion of the paper proposes extending TFMAE to time series
*prediction*.  The temporal masked autoencoder already contains the
machinery: forecasting is masking with a **fixed** mask over the horizon
instead of the CoV-driven mask over suspected anomalies.  The encoder
digests the context, the decoder fills learnable mask tokens placed at
the future positions (with their positional encodings), and an output
head maps the decoded representations back to values.

Also provides the two standard naive references (persistence and seasonal
naive) so forecast quality is measured against meaningful floors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..datasets.windows import sliding_windows
from ..nn import Module, Parameter, Tensor, no_grad
from ..nn import functional as F
from ..nn import init
from ..nn.optim import Adam
from ..nn.transformer import TransformerStack, sinusoidal_positional_encoding

__all__ = ["ForecastConfig", "TFMAEForecaster", "persistence_forecast", "seasonal_naive_forecast"]


@dataclass(frozen=True)
class ForecastConfig:
    """Hyper-parameters for the masked-autoencoder forecaster."""

    context_length: int = 96
    horizon: int = 24
    d_model: int = 32
    num_layers: int = 2
    num_heads: int = 4
    epochs: int = 5
    batch_size: int = 16
    learning_rate: float = 1e-3
    stride: int = 8            # training-window hop
    seed: int = 0

    def __post_init__(self) -> None:
        if self.context_length < 1 or self.horizon < 1:
            raise ValueError("context_length and horizon must be positive")
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")

    @property
    def window_size(self) -> int:
        return self.context_length + self.horizon


class _ForecastModel(Module):
    def __init__(self, n_features: int, config: ForecastConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.projection = nn.Linear(n_features, config.d_model, rng)
        self.mask_token = Parameter(init.normal((config.d_model,), rng), name="m_T")
        self.encoder = TransformerStack(config.d_model, config.num_layers,
                                        config.num_heads, rng)
        self.decoder = TransformerStack(config.d_model, config.num_layers,
                                        config.num_heads, rng)
        self.head = nn.Linear(config.d_model, n_features, rng)
        self._pe = sinusoidal_positional_encoding(config.window_size, config.d_model)

    def forecast(self, context: np.ndarray) -> Tensor:
        """Predict the horizon from a ``(batch, context, features)`` array."""
        config = self.config
        batch = context.shape[0]
        encoded = self.encoder(
            self.projection(Tensor(context)) + Tensor(self._pe[: config.context_length])
        )
        future = self.mask_token + Tensor(self._pe[config.context_length :])
        future = future.reshape(1, config.horizon, config.d_model) * Tensor(
            np.ones((batch, 1, 1))
        )
        decoded = self.decoder(Tensor.concat([encoded, future], axis=1))
        return self.head(decoded[:, config.context_length :, :])

    def loss(self, windows: np.ndarray) -> Tensor:
        config = self.config
        context = windows[:, : config.context_length, :]
        target = windows[:, config.context_length :, :]
        return F.mse_loss(self.forecast(context), Tensor(target))


class TFMAEForecaster:
    """Fixed-mask temporal autoencoder forecaster.

    >>> forecaster = TFMAEForecaster(ForecastConfig(context_length=48, horizon=12))
    >>> forecaster.fit(train_series)              # doctest: +SKIP
    >>> future = forecaster.predict(recent_context)   # doctest: +SKIP
    """

    def __init__(self, config: ForecastConfig | None = None):
        self.config = config if config is not None else ForecastConfig()
        self.model: _ForecastModel | None = None
        self.loss_history: list[float] = []

    def fit(self, series: np.ndarray) -> "TFMAEForecaster":
        """Train on a ``(time, features)`` series."""
        if series.ndim != 2:
            raise ValueError(f"series must be (time, features), got {series.shape}")
        config = self.config
        windows = sliding_windows(series, config.window_size, config.stride)
        if windows.shape[0] == 0:
            raise ValueError(
                f"series of length {series.shape[0]} is shorter than "
                f"context + horizon = {config.window_size}"
            )
        rng = np.random.default_rng(config.seed)
        self.model = _ForecastModel(series.shape[1], config, rng)
        optimizer = Adam(self.model.parameters(), lr=config.learning_rate, grad_clip=5.0)
        self.model.train()
        for _ in range(config.epochs):
            order = rng.permutation(windows.shape[0])
            for start in range(0, len(order), config.batch_size):
                batch = windows[order[start : start + config.batch_size]]
                loss = self.model.loss(batch)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                self.loss_history.append(loss.item())
        self.model.eval()
        return self

    def predict(self, context: np.ndarray) -> np.ndarray:
        """Forecast ``horizon`` steps from a ``(context_length, features)``
        (or batched) context."""
        if self.model is None:
            raise RuntimeError("forecaster must be fit before predict")
        single = context.ndim == 2
        batch = context[None] if single else context
        if batch.shape[1] != self.config.context_length:
            raise ValueError(
                f"context length {batch.shape[1]} != configured "
                f"{self.config.context_length}"
            )
        with no_grad():
            forecast = self.model.forecast(batch).data
        return forecast[0] if single else forecast


def persistence_forecast(context: np.ndarray, horizon: int) -> np.ndarray:
    """Repeat the last observed value over the horizon."""
    return np.repeat(context[-1:], horizon, axis=0)


def seasonal_naive_forecast(context: np.ndarray, horizon: int, period: int) -> np.ndarray:
    """Repeat the last full season over the horizon."""
    if period < 1 or period > context.shape[0]:
        raise ValueError(f"period must be in [1, len(context)], got {period}")
    season = context[-period:]
    repeats = int(np.ceil(horizon / period))
    return np.tile(season, (repeats, 1))[:horizon]
