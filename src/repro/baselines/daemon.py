"""DAEMON baseline (Chen et al., ICDE 2021).

Adversarial autoencoder with **two** discriminators: one constrains the
latent code to match a standard-normal prior (making the code space
well-behaved), the other constrains reconstructions to match the data
distribution.  The anomaly score is the per-observation reconstruction
error of the adversarially trained autoencoder.
"""

from __future__ import annotations

import numpy as np

from ..nn import Conv1d, GELU, Linear, Module, Sequential, Tensor, no_grad
from ..nn import functional as F
from ..nn.module import frozen
from .common import WindowModelDetector

__all__ = ["DAEMON"]


class _MLPDiscriminator(Module):
    """Probability that a (pooled) vector comes from the real population."""

    def __init__(self, in_dim: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.net = Sequential(
            Linear(in_dim, hidden, rng), GELU(), Linear(hidden, 1, rng)
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x).sigmoid()


class _DAEMONModel(Module):
    def __init__(self, n_features: int, dim: int, latent: int,
                 rng: np.random.Generator, adversarial_weight: float = 0.1):
        super().__init__()
        self.latent = latent
        self.adversarial_weight = adversarial_weight
        self.rng = rng
        self.encoder = Sequential(
            Conv1d(n_features, dim, 5, rng, padding="same"), GELU(),
            Conv1d(dim, latent, 5, rng, padding="same"),
        )
        self.decoder = Sequential(
            Conv1d(latent, dim, 5, rng, padding="same"), GELU(),
            Conv1d(dim, n_features, 5, rng, padding="same"),
        )
        self.latent_disc = _MLPDiscriminator(latent, dim, rng)
        self.recon_disc = _MLPDiscriminator(n_features, dim, rng)

    def loss(self, windows: np.ndarray) -> Tensor:
        x = Tensor(windows)
        z = self.encoder(x)                      # (B, T, latent)
        reconstruction = self.decoder(z)

        recon_loss = F.mse_loss(reconstruction, x)

        # Generator terms through frozen discriminators: the code should
        # look like the prior; the reconstruction should look real.
        ones_z = Tensor(np.ones((z.shape[0], 1)))
        with frozen(self.latent_disc):
            z_fool = F.binary_cross_entropy(self.latent_disc(z.mean(axis=1)), ones_z)
        with frozen(self.recon_disc):
            r_fool = F.binary_cross_entropy(self.recon_disc(reconstruction.mean(axis=1)), ones_z)
        g_loss = recon_loss + self.adversarial_weight * (z_fool + r_fool)

        # Discriminator terms on detached samples.
        prior = Tensor(self.rng.standard_normal((z.shape[0], self.latent)))
        zeros = Tensor(np.zeros((z.shape[0], 1)))
        ones = Tensor(np.ones((z.shape[0], 1)))
        d_latent = (
            F.binary_cross_entropy(self.latent_disc(prior), ones)
            + F.binary_cross_entropy(self.latent_disc(z.detach().mean(axis=1)), zeros)
        )
        d_recon = (
            F.binary_cross_entropy(self.recon_disc(x.mean(axis=1)), ones)
            + F.binary_cross_entropy(self.recon_disc(reconstruction.detach().mean(axis=1)), zeros)
        )
        return g_loss + d_latent + d_recon

    def score_windows(self, windows: np.ndarray) -> np.ndarray:
        with no_grad():
            x = Tensor(windows)
            error = (self.decoder(self.encoder(x)) - x) ** 2
        return error.data.mean(axis=-1)


class DAEMON(WindowModelDetector):
    """Adversarial autoencoder with latent and reconstruction critics."""

    name = "DAEMON"

    def __init__(self, dim: int = 32, latent: int = 8, adversarial_weight: float = 0.1,
                 epochs: int = 2, learning_rate: float = 1e-3, **kwargs):
        super().__init__(epochs=epochs, learning_rate=learning_rate, **kwargs)
        self.dim = dim
        self.latent = latent
        self.adversarial_weight = adversarial_weight

    def build_model(self, n_features: int) -> _DAEMONModel:
        rng = np.random.default_rng(self.seed)
        return _DAEMONModel(n_features, self.dim, self.latent, rng, self.adversarial_weight)
