"""Classical baselines: LOF (Breunig et al., 2000) and Isolation Forest
(Liu et al., 2008), implemented from scratch on numpy/scipy.

Both operate on raw observation vectors — the density/isolation structure
of individual points — which is exactly why the paper uses them as the
"no temporal modelling" reference class in Table III.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ..detector import BaseDetector, check_finite_series

__all__ = ["LOF", "IsolationForest"]


class LOF(BaseDetector):
    """Local Outlier Factor.

    Scores each observation by the ratio of its neighbours' local
    reachability density to its own, using the training split as the
    reference population.

    Parameters
    ----------
    n_neighbors:
        Neighbourhood size ``k``.
    max_reference:
        Training observations are subsampled to this many reference points
        to bound the k-NN index size on long series.
    """

    name = "LOF"

    def __init__(self, n_neighbors: int = 20, max_reference: int = 5000,
                 anomaly_ratio: float = 0.9, seed: int = 0):
        super().__init__(anomaly_ratio=anomaly_ratio)
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self.max_reference = max_reference
        self.seed = seed
        self._tree: cKDTree | None = None
        self._reference_lrd: np.ndarray | None = None
        self._k_distance: np.ndarray | None = None

    def _fit(self, train: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        reference = train
        if train.shape[0] > self.max_reference:
            idx = rng.choice(train.shape[0], size=self.max_reference, replace=False)
            reference = train[idx]
        self._tree = cKDTree(reference)
        k = min(self.n_neighbors + 1, reference.shape[0])
        # Neighbours of reference points among themselves (first hit is the
        # point itself, hence k+1 and dropping column 0).
        distances, neighbors = self._tree.query(reference, k=k)
        distances, neighbors = distances[:, 1:], neighbors[:, 1:]
        self._k_distance = distances[:, -1]
        reach = np.maximum(distances, self._k_distance[neighbors])
        self._reference_lrd = 1.0 / (reach.mean(axis=1) + 1e-12)

    def score(self, series: np.ndarray) -> np.ndarray:
        self._require_fitted()
        assert self._tree is not None
        series = check_finite_series(series, name="LOF scoring input")
        k = min(self.n_neighbors, self._tree.n)
        distances, neighbors = self._tree.query(series, k=k)
        if k == 1:
            distances = distances[:, None]
            neighbors = neighbors[:, None]
        reach = np.maximum(distances, self._k_distance[neighbors])
        lrd = 1.0 / (reach.mean(axis=1) + 1e-12)
        return self._reference_lrd[neighbors].mean(axis=1) / (lrd + 1e-12)


class _IsolationTree:
    """One randomised isolation tree, stored as flat arrays."""

    __slots__ = ("feature", "threshold", "left", "right", "size", "_next")

    def __init__(self, data: np.ndarray, height_limit: int, rng: np.random.Generator):
        # Pre-allocate generously; an isolation tree on n points has < 2n nodes.
        capacity = 2 * data.shape[0] + 1
        self.feature = np.full(capacity, -1, dtype=np.int64)
        self.threshold = np.zeros(capacity)
        self.left = np.full(capacity, -1, dtype=np.int64)
        self.right = np.full(capacity, -1, dtype=np.int64)
        self.size = np.zeros(capacity, dtype=np.int64)
        self._next = 0
        self._build(data, 0, height_limit, rng)

    def _new_node(self) -> int:
        node = self._next
        self._next += 1
        return node

    def _build(self, data: np.ndarray, depth: int, limit: int, rng: np.random.Generator) -> int:
        node = self._new_node()
        self.size[node] = data.shape[0]
        if depth >= limit or data.shape[0] <= 1:
            return node
        spans = data.max(axis=0) - data.min(axis=0)
        valid = np.flatnonzero(spans > 0)
        if valid.size == 0:
            return node
        feature = int(rng.choice(valid))
        lo, hi = data[:, feature].min(), data[:, feature].max()
        threshold = float(rng.uniform(lo, hi))
        mask = data[:, feature] < threshold
        self.feature[node] = feature
        self.threshold[node] = threshold
        self.left[node] = self._build(data[mask], depth + 1, limit, rng)
        self.right[node] = self._build(data[~mask], depth + 1, limit, rng)
        return node

    def path_length(self, points: np.ndarray) -> np.ndarray:
        """Vectorised root-to-leaf depth plus the c(size) leaf adjustment."""
        n = points.shape[0]
        node = np.zeros(n, dtype=np.int64)
        depth = np.zeros(n)
        active = np.ones(n, dtype=bool)
        while active.any():
            current = node[active]
            internal = self.feature[current] >= 0
            done_idx = np.flatnonzero(active)[~internal]
            if done_idx.size:
                leaf = node[done_idx]
                depth[done_idx] += _average_path_length(self.size[leaf])
                active[done_idx] = False
            go_idx = np.flatnonzero(active)
            if go_idx.size == 0:
                break
            cur = node[go_idx]
            feat = self.feature[cur]
            goes_left = points[go_idx, feat] < self.threshold[cur]
            node[go_idx] = np.where(goes_left, self.left[cur], self.right[cur])
            depth[go_idx] += 1.0
        return depth


def _average_path_length(size: np.ndarray | int) -> np.ndarray:
    """Expected path length c(n) of an unsuccessful BST search."""
    size = np.asarray(size, dtype=np.float64)
    out = np.zeros_like(size)
    big = size > 2
    out[big] = 2.0 * (np.log(size[big] - 1.0) + np.euler_gamma) - 2.0 * (size[big] - 1.0) / size[big]
    out[size == 2] = 1.0
    return out


class IsolationForest(BaseDetector):
    """Isolation Forest: anomalies are isolated in few random splits."""

    name = "IForest"

    def __init__(self, n_trees: int = 100, subsample: int = 256,
                 anomaly_ratio: float = 0.9, seed: int = 0):
        super().__init__(anomaly_ratio=anomaly_ratio)
        self.n_trees = n_trees
        self.subsample = subsample
        self.seed = seed
        self._trees: list[_IsolationTree] = []
        self._sample_size = 0

    def _fit(self, train: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        self._sample_size = min(self.subsample, train.shape[0])
        height_limit = int(np.ceil(np.log2(max(2, self._sample_size))))
        self._trees = []
        for _ in range(self.n_trees):
            idx = rng.choice(train.shape[0], size=self._sample_size, replace=False)
            self._trees.append(_IsolationTree(train[idx], height_limit, rng))

    def score(self, series: np.ndarray) -> np.ndarray:
        self._require_fitted()
        series = check_finite_series(series, name="IForest scoring input")
        depths = np.mean([tree.path_length(series) for tree in self._trees], axis=0)
        c = float(_average_path_length(np.array([self._sample_size]))[0]) or 1.0
        return np.power(2.0, -depths / c)
