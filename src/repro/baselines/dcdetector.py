"""DCdetector baseline (Yang et al., KDD 2023).

Dual-attention contrastive detector: the window is viewed at two
granularities — **patch-wise** (attention across patch summaries,
capturing global structure) and **in-patch** (attention inside each
patch, capturing local structure).  Normal points look the same from both
views; anomalies do not.  Training minimises the symmetric KL between the
two per-position representations with stop-gradients on each side (pure
positive-pair contrastive learning, no reconstruction); the anomaly score
is the same discrepancy.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor, TransformerStack, no_grad
from ..nn import functional as F
from ..nn.transformer import sinusoidal_positional_encoding
from .common import WindowModelDetector

__all__ = ["DCdetector"]


class _DCdetectorModel(Module):
    def __init__(self, n_features: int, dim: int, layers: int, heads: int,
                 window: int, patch: int, rng: np.random.Generator):
        super().__init__()
        if window % patch != 0:
            raise ValueError(f"patch size {patch} must divide window {window}")
        self.dim = dim
        self.patch = patch
        self.embed = Linear(n_features, dim, rng)
        self.patch_wise = TransformerStack(dim, layers, heads, rng)
        self.in_patch = TransformerStack(dim, layers, heads, rng)
        self._pe = sinusoidal_positional_encoding(window, dim)

    def _views(self, windows: np.ndarray) -> tuple[Tensor, Tensor]:
        batch, time, _ = windows.shape
        n_patches = time // self.patch
        x = self.embed(Tensor(windows)) + Tensor(self._pe)

        # Patch-wise view: average each patch to a token, attend across
        # patches, then broadcast back to positions.
        tokens = x.reshape(batch, n_patches, self.patch, self.dim).mean(axis=2)
        patch_repr = self.patch_wise(tokens)  # (B, n_patches, D)
        ones = Tensor(np.ones((batch, n_patches, self.patch, self.dim)))
        upsampled = patch_repr.reshape(batch, n_patches, 1, self.dim) * ones
        patch_view = upsampled.reshape(batch, time, self.dim)

        # In-patch view: attention restricted to positions inside a patch
        # (realised by folding patches into the batch axis).
        folded = x.reshape(batch * n_patches, self.patch, self.dim)
        local = self.in_patch(folded)
        local_view = local.reshape(batch, time, self.dim)
        return patch_view, local_view

    def loss(self, windows: np.ndarray) -> Tensor:
        patch_view, local_view = self._views(windows)
        # Symmetric stop-gradient contrastive objective (no negatives).
        forward = F.symmetric_kl(patch_view.detach(), local_view)
        backward = F.symmetric_kl(local_view.detach(), patch_view)
        return forward + backward

    def score_windows(self, windows: np.ndarray) -> np.ndarray:
        with no_grad():
            patch_view, local_view = self._views(windows)
            discrepancy = F.symmetric_kl(patch_view, local_view, reduce=False)
        return discrepancy.data


class DCdetector(WindowModelDetector):
    """Dual-granularity attention contrastive detector."""

    name = "DCdetector"

    def __init__(self, dim: int = 32, layers: int = 2, heads: int = 4, patch: int = 10,
                 epochs: int = 2, learning_rate: float = 1e-3, **kwargs):
        super().__init__(epochs=epochs, learning_rate=learning_rate, **kwargs)
        self.dim = dim
        self.layers = layers
        self.heads = heads
        self.patch = patch

    def build_model(self, n_features: int) -> _DCdetectorModel:
        rng = np.random.default_rng(self.seed)
        return _DCdetectorModel(n_features, self.dim, self.layers, self.heads,
                                self.window_size, self.patch, rng)
