"""Shared scaffolding for the neural baselines.

All deep baselines in the paper's Table III consume fixed-length windows
(input length 100, the fair-comparison protocol) and emit one score per
observation.  :class:`WindowModelDetector` factors out that plumbing:
subclasses provide a :class:`~repro.nn.Module` with

* ``loss(batch) -> Tensor`` — training objective on ``(B, T, N)`` windows,
* ``score_windows(batch) -> ndarray`` — per-position scores ``(B, T)``,

and inherit windowed fitting, Adam optimisation, threshold calibration and
series scoring.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..datasets.windows import non_overlapping_windows, score_series
from ..detector import BaseDetector, check_finite_series
from ..nn.optim import Adam

__all__ = ["WindowScoringModel", "WindowModelDetector"]


class WindowScoringModel(Protocol):
    """Structural type for the models driven by :class:`WindowModelDetector`."""

    def loss(self, windows: np.ndarray): ...
    def score_windows(self, windows: np.ndarray) -> np.ndarray: ...
    def parameters(self): ...
    def train(self, mode: bool = True): ...
    def eval(self): ...


class WindowModelDetector(BaseDetector):
    """Detector that trains a window model with Adam and scores serieses.

    Parameters
    ----------
    window_size:
        Input window length (paper protocol: 100).
    epochs, batch_size, learning_rate:
        Optimisation schedule; baselines keep the paper's Adam defaults
        unless their original work demands otherwise.
    """

    def __init__(
        self,
        window_size: int = 100,
        epochs: int = 1,
        batch_size: int = 64,
        learning_rate: float = 1e-4,
        anomaly_ratio: float = 0.9,
        grad_clip: float | None = 5.0,
        seed: int = 0,
    ):
        super().__init__(anomaly_ratio=anomaly_ratio)
        self.window_size = window_size
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.grad_clip = grad_clip
        self.seed = seed
        self.model: WindowScoringModel | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    # subclass hook
    # ------------------------------------------------------------------
    def build_model(self, n_features: int) -> WindowScoringModel:
        """Construct the underlying model; called once at fit time."""
        raise NotImplementedError

    def on_model_built(self, model: WindowScoringModel, train: np.ndarray) -> None:
        """Optional hook between model construction and training.

        Used by methods that need data-dependent initialisation (DSVDD's
        hypersphere centre) or post-hoc fitting stages.
        """

    def after_training(self, model: WindowScoringModel, train: np.ndarray) -> None:
        """Optional hook after gradient training (e.g. DAGMM's GMM fit)."""

    def on_epoch_end(self, model: WindowScoringModel, epoch: int) -> None:
        """Optional hook after each epoch (e.g. USAD's phase schedule)."""

    # ------------------------------------------------------------------
    # BaseDetector implementation
    # ------------------------------------------------------------------
    def _fit(self, train: np.ndarray) -> None:
        self.model = self.build_model(train.shape[1])
        self.on_model_built(self.model, train)
        windows = non_overlapping_windows(train, self.window_size)
        if windows.shape[0] == 0:
            raise ValueError(
                f"training series of length {train.shape[0]} is shorter than "
                f"window_size={self.window_size}"
            )
        optimizer = Adam(self.model.parameters(), lr=self.learning_rate, grad_clip=self.grad_clip)
        rng = np.random.default_rng(self.seed)
        self.model.train()
        for epoch in range(self.epochs):
            order = rng.permutation(windows.shape[0])
            for start in range(0, len(order), self.batch_size):
                batch = windows[order[start : start + self.batch_size]]
                loss = self.model.loss(batch)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                self.loss_history.append(loss.item())
            self.on_epoch_end(self.model, epoch)
        self.model.eval()
        self.after_training(self.model, train)

    def score(self, series: np.ndarray) -> np.ndarray:
        self._require_fitted()
        assert self.model is not None
        series = check_finite_series(series, name=f"{self.name} scoring input")
        return score_series(
            series,
            size=self.window_size,
            score_fn=self.model.score_windows,
            batch_size=self.batch_size,
        )
