"""OmniAnomaly baseline (Su et al., KDD 2019) — "OmniAno" in the paper.

A stochastic recurrent autoencoder: a GRU recognition network produces a
per-step Gaussian posterior over latent codes, a sample is drawn with the
reparameterisation trick, and a GRU generator reconstructs the window.
Training maximises the ELBO (reconstruction minus KL to a standard-normal
prior); the anomaly score is the per-observation reconstruction error
(negative log-likelihood up to constants).

Faithfulness note: the original adds normalizing flows and a linear
Gaussian state-space prior; this port keeps the stochastic RNN ELBO core,
the part the paper's comparison exercises (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..nn import GRU, Linear, Module, Tensor, no_grad
from ..nn import functional as F
from .common import WindowModelDetector

__all__ = ["OmniAnomaly"]


class _OmniModel(Module):
    def __init__(self, n_features: int, hidden: int, latent: int,
                 beta: float, rng: np.random.Generator):
        super().__init__()
        self.beta = beta
        self.rng = rng
        self.encoder_rnn = GRU(n_features, hidden, rng)
        self.mu_head = Linear(hidden, latent, rng)
        self.logvar_head = Linear(hidden, latent, rng)
        self.decoder_rnn = GRU(latent, hidden, rng)
        self.output_head = Linear(hidden, n_features, rng)

    def _reconstruct(self, windows: np.ndarray, sample: bool) -> tuple[Tensor, Tensor, Tensor]:
        x = Tensor(windows)
        states = self.encoder_rnn(x)
        mu = self.mu_head(states)
        logvar = self.logvar_head(states).clip(-8.0, 8.0)
        if sample:
            noise = Tensor(self.rng.standard_normal(mu.shape))
            z = mu + (logvar * 0.5).exp() * noise
        else:
            z = mu
        reconstruction = self.output_head(self.decoder_rnn(z))
        return reconstruction, mu, logvar

    def loss(self, windows: np.ndarray) -> Tensor:
        reconstruction, mu, logvar = self._reconstruct(windows, sample=True)
        recon = F.mse_loss(reconstruction, Tensor(windows))
        # KL(q(z|x) || N(0, I)) per dimension, averaged.
        kl = 0.5 * (mu * mu + logvar.exp() - logvar - 1.0).mean()
        return recon + self.beta * kl

    def score_windows(self, windows: np.ndarray) -> np.ndarray:
        with no_grad():
            reconstruction, _, _ = self._reconstruct(windows, sample=False)
            error = (reconstruction - Tensor(windows)) ** 2
        return error.data.mean(axis=-1)


class OmniAnomaly(WindowModelDetector):
    """Stochastic recurrent autoencoder detector."""

    name = "OmniAno"

    def __init__(self, hidden: int = 32, latent: int = 8, beta: float = 0.01,
                 epochs: int = 2, learning_rate: float = 1e-3, **kwargs):
        super().__init__(epochs=epochs, learning_rate=learning_rate, **kwargs)
        self.hidden = hidden
        self.latent = latent
        self.beta = beta

    def build_model(self, n_features: int) -> _OmniModel:
        rng = np.random.default_rng(self.seed)
        return _OmniModel(n_features, self.hidden, self.latent, self.beta, rng)
