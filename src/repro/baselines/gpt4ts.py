"""GPT4TS baseline (Zhou et al., NeurIPS 2023 — "One Fits All").

GPT4TS reuses a pretrained language-model backbone for time series tasks:
the Transformer blocks stay **frozen** and only the input embedding,
output head and layer norms are tuned.  Anomaly detection is done by
reconstruction.

Substitution note: no pretrained GPT-2 weights are available offline, so
the backbone is a randomly initialised Transformer stack, frozen exactly
as the original freezes GPT-2.  What the paper's comparison exercises —
"reconstruction through a frozen generic backbone with thin tuned
adapters" — is preserved; absolute quality of the pretrained features is
not (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor, TransformerStack, no_grad
from ..nn import functional as F
from ..nn.transformer import sinusoidal_positional_encoding
from .common import WindowModelDetector

__all__ = ["GPT4TS"]


class _GPT4TSModel(Module):
    def __init__(self, n_features: int, dim: int, layers: int, heads: int,
                 rng: np.random.Generator):
        super().__init__()
        self.dim = dim
        self.embed = Linear(n_features, dim, rng)
        self.backbone = TransformerStack(dim, layers, heads, rng)
        self.head = Linear(dim, n_features, rng)
        # Freeze the backbone, then re-enable its layer norms — the
        # GPT4TS fine-tuning recipe.
        self.backbone.freeze()
        for name, param in self.backbone.named_parameters():
            if ".norm" in name:
                param.requires_grad = True
        self._pe_cache: dict[int, np.ndarray] = {}

    def _reconstruct(self, windows: np.ndarray) -> Tensor:
        time = windows.shape[1]
        if time not in self._pe_cache:
            self._pe_cache[time] = sinusoidal_positional_encoding(time, self.dim)
        hidden = self.embed(Tensor(windows)) + Tensor(self._pe_cache[time])
        return self.head(self.backbone(hidden))

    def loss(self, windows: np.ndarray) -> Tensor:
        return F.mse_loss(self._reconstruct(windows), Tensor(windows))

    def score_windows(self, windows: np.ndarray) -> np.ndarray:
        with no_grad():
            error = (self._reconstruct(windows) - Tensor(windows)) ** 2
        return error.data.mean(axis=-1)


class GPT4TS(WindowModelDetector):
    """Frozen-backbone reconstruction detector."""

    name = "GPT4TS"

    def __init__(self, dim: int = 32, layers: int = 3, heads: int = 4,
                 epochs: int = 2, learning_rate: float = 1e-3, **kwargs):
        super().__init__(epochs=epochs, learning_rate=learning_rate, **kwargs)
        self.dim = dim
        self.layers = layers
        self.heads = heads

    def build_model(self, n_features: int) -> _GPT4TSModel:
        rng = np.random.default_rng(self.seed)
        return _GPT4TSModel(n_features, self.dim, self.layers, self.heads, rng)
