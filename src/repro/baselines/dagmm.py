"""DAGMM baseline (Zong et al., ICLR 2018).

Deep Autoencoding Gaussian Mixture Model: an autoencoder compresses each
observation, the latent code is concatenated with reconstruction-error
features, and a Gaussian mixture over that joint space yields a sample
energy used as the anomaly score.

Faithfulness note: the original trains the AE and the GMM estimation
network jointly; here the AE trains first and the GMM is then fit by EM on
the frozen representations.  The scoring pipeline (energy of
``[z, recon_features]``) is identical, and two-stage training is a common,
well-behaved variant at small scale — documented in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from ..nn import GELU, Linear, Module, Sequential, Tensor, no_grad
from ..nn import functional as F
from .common import WindowModelDetector

__all__ = ["DAGMM", "GaussianMixture"]


class GaussianMixture:
    """Diagonal-covariance Gaussian mixture fit with EM (from scratch)."""

    def __init__(self, n_components: int = 4, n_iter: int = 50, seed: int = 0, reg: float = 1e-6):
        self.n_components = n_components
        self.n_iter = n_iter
        self.seed = seed
        self.reg = reg
        self.means_: np.ndarray | None = None
        self.variances_: np.ndarray | None = None
        self.weights_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "GaussianMixture":
        rng = np.random.default_rng(self.seed)
        n, d = data.shape
        k = min(self.n_components, n)
        idx = rng.choice(n, size=k, replace=False)
        self.means_ = data[idx].copy()
        self.variances_ = np.tile(data.var(axis=0) + self.reg, (k, 1))
        self.weights_ = np.full(k, 1.0 / k)
        for _ in range(self.n_iter):
            resp = self._responsibilities(data)
            mass = resp.sum(axis=0) + 1e-12
            self.weights_ = mass / n
            self.means_ = (resp.T @ data) / mass[:, None]
            centred_sq = (data[:, None, :] - self.means_[None]) ** 2
            self.variances_ = (resp[:, :, None] * centred_sq).sum(axis=0) / mass[:, None] + self.reg
        return self

    def _log_prob(self, data: np.ndarray) -> np.ndarray:
        """Per-component log density, shape (n, k)."""
        diff = data[:, None, :] - self.means_[None]
        exponent = -0.5 * (diff**2 / self.variances_[None]).sum(axis=-1)
        log_norm = -0.5 * (np.log(2 * np.pi * self.variances_)).sum(axis=-1)
        return exponent + log_norm[None]

    def _responsibilities(self, data: np.ndarray) -> np.ndarray:
        log_joint = self._log_prob(data) + np.log(self.weights_ + 1e-12)[None]
        log_joint -= log_joint.max(axis=1, keepdims=True)
        resp = np.exp(log_joint)
        return resp / resp.sum(axis=1, keepdims=True)

    def energy(self, data: np.ndarray) -> np.ndarray:
        """Sample energy: negative log-likelihood under the mixture."""
        if self.means_ is None:
            raise RuntimeError("mixture must be fit before scoring")
        log_joint = self._log_prob(data) + np.log(self.weights_ + 1e-12)[None]
        m = log_joint.max(axis=1)
        return -(m + np.log(np.exp(log_joint - m[:, None]).sum(axis=1) + 1e-12))


class _DAGMMModel(Module):
    def __init__(self, n_features: int, hidden: int, latent: int, rng: np.random.Generator):
        super().__init__()
        self.encoder = Sequential(
            Linear(n_features, hidden, rng), GELU(), Linear(hidden, latent, rng)
        )
        self.decoder = Sequential(
            Linear(latent, hidden, rng), GELU(), Linear(hidden, n_features, rng)
        )
        self.mixture: GaussianMixture | None = None

    def loss(self, windows: np.ndarray) -> Tensor:
        x = Tensor(windows)
        reconstruction = self.decoder(self.encoder(x))
        return F.mse_loss(reconstruction, x)

    def joint_features(self, windows: np.ndarray) -> np.ndarray:
        """``[z, relative_euclidean_error, per-point mse]`` per observation."""
        with no_grad():
            x = Tensor(windows)
            z = self.encoder(x)
            recon = self.decoder(z)
        flat_x = windows.reshape(-1, windows.shape[-1])
        flat_r = recon.data.reshape(-1, windows.shape[-1])
        flat_z = z.data.reshape(-1, z.data.shape[-1])
        norm = np.linalg.norm(flat_x, axis=1) + 1e-8
        relative = np.linalg.norm(flat_x - flat_r, axis=1) / norm
        mse = ((flat_x - flat_r) ** 2).mean(axis=1)
        return np.concatenate([flat_z, relative[:, None], mse[:, None]], axis=1)

    def score_windows(self, windows: np.ndarray) -> np.ndarray:
        if self.mixture is None:
            raise RuntimeError("GMM not fit; DAGMM.fit must run to completion")
        features = self.joint_features(windows)
        energy = self.mixture.energy(features)
        return energy.reshape(windows.shape[0], windows.shape[1])


class DAGMM(WindowModelDetector):
    """Deep autoencoding Gaussian mixture model."""

    name = "DAGMM"

    def __init__(self, hidden: int = 64, latent: int = 4, n_components: int = 4,
                 epochs: int = 3, learning_rate: float = 1e-3, **kwargs):
        super().__init__(epochs=epochs, learning_rate=learning_rate, **kwargs)
        self.hidden = hidden
        self.latent = latent
        self.n_components = n_components

    def build_model(self, n_features: int) -> _DAGMMModel:
        rng = np.random.default_rng(self.seed)
        return _DAGMMModel(n_features, self.hidden, self.latent, rng)

    def after_training(self, model: _DAGMMModel, train: np.ndarray) -> None:
        sample = train[: min(len(train), 20_000)]
        features = model.joint_features(sample[None, :, :])
        model.mixture = GaussianMixture(self.n_components, seed=self.seed).fit(features)
