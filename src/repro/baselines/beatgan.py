"""BeatGAN baseline (Zhou et al., IJCAI 2019).

An adversarially regularised convolutional autoencoder: the generator
reconstructs windows with 1-D convolutions; a convolutional discriminator
distinguishes real windows from reconstructions.  The generator minimises
reconstruction error plus a feature-matching term on the discriminator's
hidden features; the score is the per-observation reconstruction error.

The alternating GAN updates are realised as one combined loss with
selective parameter freezing (see :func:`repro.nn.module.frozen`), which
yields the same gradients as two optimiser phases because the generator
and discriminator parameter sets are disjoint.
"""

from __future__ import annotations

import numpy as np

from ..nn import Conv1d, GELU, Linear, Module, Sequential, Tensor, no_grad
from ..nn import functional as F
from ..nn.module import frozen
from .common import WindowModelDetector

__all__ = ["BeatGAN"]


class _Discriminator(Module):
    def __init__(self, n_features: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.conv1 = Conv1d(n_features, dim, 5, rng, padding="same")
        self.conv2 = Conv1d(dim, dim, 5, rng, padding="same")
        self.head = Linear(dim, 1, rng)

    def features(self, x: Tensor) -> Tensor:
        return F.gelu(self.conv2(F.gelu(self.conv1(x))))

    def forward(self, x: Tensor) -> Tensor:
        pooled = self.features(x).mean(axis=1)  # (B, dim)
        return self.head(pooled).sigmoid()      # (B, 1) real-vs-fake prob


class _BeatGANModel(Module):
    def __init__(self, n_features: int, dim: int, rng: np.random.Generator,
                 adversarial_weight: float = 0.1):
        super().__init__()
        self.adversarial_weight = adversarial_weight
        self.generator = Sequential(
            Conv1d(n_features, dim, 5, rng, padding="same"), GELU(),
            Conv1d(dim, dim, 5, rng, padding="same"), GELU(),
            Conv1d(dim, n_features, 5, rng, padding="same"),
        )
        self.discriminator = _Discriminator(n_features, dim, rng)

    def loss(self, windows: np.ndarray) -> Tensor:
        x = Tensor(windows)
        reconstruction = self.generator(x)

        # Generator: reconstruction + feature matching through a frozen D.
        with frozen(self.discriminator):
            feature_match = F.mse_loss(
                self.discriminator.features(reconstruction),
                self.discriminator.features(x).detach(),
            )
        g_loss = F.mse_loss(reconstruction, x) + self.adversarial_weight * feature_match

        # Discriminator: real windows -> 1, reconstructions (detached) -> 0.
        real_prob = self.discriminator(x)
        fake_prob = self.discriminator(reconstruction.detach())
        ones = Tensor(np.ones(real_prob.shape))
        zeros = Tensor(np.zeros(fake_prob.shape))
        d_loss = F.binary_cross_entropy(real_prob, ones) + F.binary_cross_entropy(fake_prob, zeros)

        return g_loss + d_loss

    def score_windows(self, windows: np.ndarray) -> np.ndarray:
        with no_grad():
            error = (self.generator(Tensor(windows)) - Tensor(windows)) ** 2
        return error.data.mean(axis=-1)


class BeatGAN(WindowModelDetector):
    """Adversarially regularised convolutional reconstruction detector."""

    name = "BeatGAN"

    def __init__(self, dim: int = 32, adversarial_weight: float = 0.1,
                 epochs: int = 2, learning_rate: float = 1e-3, **kwargs):
        super().__init__(epochs=epochs, learning_rate=learning_rate, **kwargs)
        self.dim = dim
        self.adversarial_weight = adversarial_weight

    def build_model(self, n_features: int) -> _BeatGANModel:
        rng = np.random.default_rng(self.seed)
        return _BeatGANModel(n_features, self.dim, rng, self.adversarial_weight)
