"""The 14 baselines of the paper's Table III, grouped as in Section V-A.3.

==============  =============================================
Category        Methods
==============  =============================================
Density         :class:`LOF`, :class:`DAGMM`
Tree            :class:`IsolationForest`
Clustering      :class:`DSVDD`, :class:`THOC`
Reconstruction  :class:`OmniAnomaly`, :class:`TimesNet`, :class:`GPT4TS`
Adversarial     :class:`USAD`, :class:`BeatGAN`, :class:`DAEMON`, :class:`TranAD`
Contrastive     :class:`AnomalyTransformer`, :class:`DCdetector`
==============  =============================================

:data:`BASELINE_REGISTRY` maps the names used in the paper's tables to
constructors accepting ``(anomaly_ratio=..., seed=...)`` keyword
arguments.
"""

from typing import Callable

from ..detector import BaseDetector
from .anomaly_transformer import AnomalyTransformer
from .beatgan import BeatGAN
from .classical import LOF, IsolationForest
from .common import WindowModelDetector
from .daemon import DAEMON
from .dagmm import DAGMM, GaussianMixture
from .dcdetector import DCdetector
from .dsvdd import DSVDD
from .gpt4ts import GPT4TS
from .omni import OmniAnomaly
from .thoc import THOC
from .timesnet import TimesNet, dominant_periods
from .tranad import TranAD
from .usad import USAD

__all__ = [
    "WindowModelDetector",
    "LOF",
    "IsolationForest",
    "DSVDD",
    "DAGMM",
    "GaussianMixture",
    "THOC",
    "OmniAnomaly",
    "TimesNet",
    "dominant_periods",
    "GPT4TS",
    "USAD",
    "BeatGAN",
    "DAEMON",
    "TranAD",
    "AnomalyTransformer",
    "DCdetector",
    "BASELINE_REGISTRY",
]

BASELINE_REGISTRY: dict[str, Callable[..., BaseDetector]] = {
    "LOF": LOF,
    "IForest": IsolationForest,
    "DSVDD": DSVDD,
    "DAGMM": DAGMM,
    "THOC": THOC,
    "OmniAno": OmniAnomaly,
    "TimesNet": TimesNet,
    "GPT4TS": GPT4TS,
    "USAD": USAD,
    "BeatGAN": BeatGAN,
    "DAEMON": DAEMON,
    "TranAD": TranAD,
    "AnoTran": AnomalyTransformer,
    "DCdetector": DCdetector,
}
