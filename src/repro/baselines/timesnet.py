"""TimesNet baseline (Wu et al., ICLR 2023).

TimesNet converts a 1-D series into 2-D tensors along its dominant FFT
periods — one axis within a period, one across periods — applies
convolutions on that 2-D layout, and aggregates period branches weighted
by their spectral amplitude.  Anomaly detection uses the reconstruction
error.

Faithfulness note: the inception-style 2-D convolutions of the original
are realised here as a pair of 1-D convolutions (within-period then
across-period) on the folded tensor, which preserves the characteristic
two-axis receptive field while staying inside the numpy substrate (see
DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..nn import Conv1d, Linear, Module, Tensor, no_grad
from ..nn import functional as F
from .common import WindowModelDetector

__all__ = ["TimesNet", "dominant_periods"]


def dominant_periods(windows: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Top-``k`` periods of a batch by mean FFT amplitude (TimesBlock step 1).

    Returns ``(periods, amplitudes)``; the DC bin is excluded and periods
    are clipped to at least 2 samples.
    """
    batch, time, _ = windows.shape
    spectrum = np.abs(np.fft.rfft(windows, axis=1)).mean(axis=(0, 2))
    spectrum[0] = 0.0
    k = min(k, spectrum.shape[0] - 1)
    bins = np.argsort(spectrum)[-k:][::-1]
    periods = np.maximum(2, time // np.maximum(1, bins))
    return periods, spectrum[bins]


class _TimesBlock(Module):
    def __init__(self, dim: int, kernel: int, rng: np.random.Generator):
        super().__init__()
        self.within = Conv1d(dim, dim, kernel, rng, padding="same")
        self.across = Conv1d(dim, dim, kernel, rng, padding="same")

    def forward_period(self, x: Tensor, period: int) -> Tensor:
        """Fold to (cycles, period), convolve along both axes, unfold."""
        batch, time, dim = x.shape
        cycles = int(np.ceil(time / period))
        padded_len = cycles * period
        if padded_len > time:
            pad = Tensor(np.zeros((batch, padded_len - time, dim)))
            x = Tensor.concat([x, pad], axis=1)
        folded = x.reshape(batch * cycles, period, dim)
        folded = F.gelu(self.within(folded))
        # Swap axes: convolve across cycles at fixed phase.
        grid = folded.reshape(batch, cycles, period, dim).swapaxes(1, 2)
        grid = grid.reshape(batch * period, cycles, dim)
        grid = F.gelu(self.across(grid))
        restored = grid.reshape(batch, period, cycles, dim).swapaxes(1, 2)
        return restored.reshape(batch, padded_len, dim)[:, :time, :]


class _TimesNetModel(Module):
    def __init__(self, n_features: int, dim: int, top_k: int, kernel: int,
                 rng: np.random.Generator):
        super().__init__()
        self.top_k = top_k
        self.embed = Linear(n_features, dim, rng)
        self.block = _TimesBlock(dim, kernel, rng)
        self.head = Linear(dim, n_features, rng)

    def _reconstruct(self, windows: np.ndarray) -> Tensor:
        periods, amplitudes = dominant_periods(windows, self.top_k)
        weights = amplitudes / (amplitudes.sum() + 1e-12)
        x = self.embed(Tensor(windows))
        mixed = None
        for period, weight in zip(periods, weights):
            branch = self.block.forward_period(x, int(period)) * float(weight)
            mixed = branch if mixed is None else mixed + branch
        return self.head(mixed + x)  # residual, as in TimesBlock

    def loss(self, windows: np.ndarray) -> Tensor:
        return F.mse_loss(self._reconstruct(windows), Tensor(windows))

    def score_windows(self, windows: np.ndarray) -> np.ndarray:
        with no_grad():
            error = (self._reconstruct(windows) - Tensor(windows)) ** 2
        return error.data.mean(axis=-1)


class TimesNet(WindowModelDetector):
    """Period-folding convolutional reconstruction detector."""

    name = "TimesNet"

    def __init__(self, dim: int = 32, top_k: int = 3, kernel: int = 3,
                 epochs: int = 2, learning_rate: float = 1e-3, **kwargs):
        super().__init__(epochs=epochs, learning_rate=learning_rate, **kwargs)
        self.dim = dim
        self.top_k = top_k
        self.kernel = kernel

    def build_model(self, n_features: int) -> _TimesNetModel:
        rng = np.random.default_rng(self.seed)
        return _TimesNetModel(n_features, self.dim, self.top_k, self.kernel, rng)
