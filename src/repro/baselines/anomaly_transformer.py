"""Anomaly Transformer baseline (Xu et al., ICLR 2022) — "AnoTran".

Each attention layer learns two association structures over positions:

* the **series association** — ordinary self-attention weights, and
* the **prior association** — a learnable Gaussian kernel over temporal
  distance (nearby positions associate more).

Anomalies associate mostly with adjacent positions, so their series
association collapses toward the prior; the **association discrepancy**
(symmetric KL between the two row distributions) is therefore *small* at
anomalies.  Training is a minimax game on that discrepancy plus a
reconstruction loss; the anomaly score multiplies the reconstruction
error by ``softmax(-discrepancy)``.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Parameter, Tensor, no_grad
from ..nn import functional as F
from ..nn.attention import MultiHeadSelfAttention
from ..nn.layers import GELU, LayerNorm, Sequential
from ..nn.transformer import sinusoidal_positional_encoding
from .common import WindowModelDetector

__all__ = ["AnomalyTransformer"]


def _row_kl(p: Tensor, q: Tensor) -> Tensor:
    """Mean KL over attention rows; inputs are row-stochastic (B, T, T)."""
    eps = 1e-8
    ratio = (p + eps).log() - (q + eps).log()
    return (p * ratio).sum(axis=-1)  # (B, T)


class _AnomalyAttentionLayer(Module):
    def __init__(self, dim: int, heads: int, window: int, rng: np.random.Generator):
        super().__init__()
        self.attention = MultiHeadSelfAttention(dim, heads, rng, keep_attention_graph=True)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.ffn = Sequential(Linear(dim, 4 * dim, rng), GELU(), Linear(4 * dim, dim, rng))
        # Learnable per-position log-scale of the prior Gaussian kernel.
        self.log_sigma = Parameter(np.zeros(window), name="log_sigma")
        # |i - j| distance matrix, fixed.
        idx = np.arange(window)
        self._distances = np.abs(idx[:, None] - idx[None, :]).astype(np.float64)

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor, Tensor]:
        """Return (output, series_assoc (B,T,T), prior_assoc (B,T,T))."""
        attended = self.attention(x)
        out = self.norm1(x + attended)
        out = self.norm2(out + self.ffn(out))

        # Series association: head-averaged attention weights, kept on the
        # autograd graph so the maximise phase can push them away from the
        # prior.
        series = self.attention.last_attention_tensor.mean(axis=1)
        sigma = self.log_sigma.exp().reshape(-1, 1)  # (T, 1)
        dist = Tensor(self._distances)
        gauss = (-(dist * dist) / (sigma * sigma * 2.0)).exp() + 1e-8
        prior = gauss / gauss.sum(axis=-1, keepdims=True)  # (T, T)
        batch = x.shape[0]
        prior_b = prior.reshape(1, *prior.shape) * Tensor(np.ones((batch, 1, 1)))
        return out, series, prior_b


class _AnoTranModel(Module):
    def __init__(self, n_features: int, dim: int, layers: int, heads: int,
                 window: int, rng: np.random.Generator, k: float = 3.0):
        super().__init__()
        self.k = k
        self.dim = dim
        self.embed = Linear(n_features, dim, rng)
        self.num_layers = layers
        for i in range(layers):
            setattr(self, f"layer{i}", _AnomalyAttentionLayer(dim, heads, window, rng))
        self.head = Linear(dim, n_features, rng)
        self._pe = sinusoidal_positional_encoding(window, dim)

    def _forward(self, windows: np.ndarray) -> tuple[Tensor, list[tuple[Tensor, Tensor]]]:
        x = self.embed(Tensor(windows)) + Tensor(self._pe)
        associations = []
        for i in range(self.num_layers):
            x, series, prior = getattr(self, f"layer{i}")(x)
            associations.append((series, prior))
        return self.head(x), associations

    def _discrepancy(self, associations, detach_prior: bool, detach_series: bool) -> Tensor:
        """Mean symmetric KL between prior and series rows, per position."""
        total = None
        for series, prior in associations:
            p = prior.detach() if detach_prior else prior
            s = series.detach() if detach_series else series
            term = _row_kl(p, s) + _row_kl(s, p)  # (B, T)
            total = term if total is None else total + term
        return total * (1.0 / len(associations))

    def loss(self, windows: np.ndarray) -> Tensor:
        reconstruction, associations = self._forward(windows)
        recon = F.mse_loss(reconstruction, Tensor(windows))
        # Minimax association discrepancy, following the official two-phase
        # objective combined with stop-gradients: the prior (sigma) chases
        # the frozen series association while the series association is
        # pushed to enlarge the discrepancy against the frozen prior.
        prior_chases = self._discrepancy(associations, detach_prior=False, detach_series=True).mean()
        series_enlarges = self._discrepancy(associations, detach_prior=True, detach_series=False).mean()
        return recon + self.k * prior_chases - self.k * series_enlarges

    def score_windows(self, windows: np.ndarray) -> np.ndarray:
        with no_grad():
            reconstruction, associations = self._forward(windows)
            discrepancy = self._discrepancy(associations, True, True)
        error = ((reconstruction.data - windows) ** 2).mean(axis=-1)  # (B, T)
        weight_logits = -discrepancy.data
        weight_logits -= weight_logits.max(axis=1, keepdims=True)
        weights = np.exp(weight_logits)
        weights /= weights.sum(axis=1, keepdims=True)
        return weights * error


class AnomalyTransformer(WindowModelDetector):
    """Association-discrepancy Transformer detector."""

    name = "AnoTran"

    def __init__(self, dim: int = 32, layers: int = 2, heads: int = 4, k: float = 3.0,
                 epochs: int = 2, learning_rate: float = 1e-3, **kwargs):
        super().__init__(epochs=epochs, learning_rate=learning_rate, **kwargs)
        self.dim = dim
        self.layers = layers
        self.heads = heads
        self.k = k

    def build_model(self, n_features: int) -> _AnoTranModel:
        rng = np.random.default_rng(self.seed)
        return _AnoTranModel(n_features, self.dim, self.layers, self.heads,
                             self.window_size, rng, self.k)
