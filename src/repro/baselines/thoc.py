"""THOC baseline (Shen et al., NeurIPS 2020).

Temporal Hierarchical One-Class network: a multi-resolution recurrent
encoder produces features at several temporal dilations; each resolution
carries a set of learnable cluster centres, and the one-class objective
pulls features towards their nearest centres.  The anomaly score is the
(similarity-weighted) distance to the closest centres across resolutions.

Faithfulness note: the original uses a dilated-RNN stack with differences
ported here as documented in DESIGN.md — dilation is realised by striding
the GRU input, and the soft cluster assignment uses distances instead of
cosine similarity with orthogonality regularisation.
"""

from __future__ import annotations

import numpy as np

from ..nn import GRU, Linear, Module, Parameter, Tensor, init, no_grad
from .common import WindowModelDetector

__all__ = ["THOC"]


class _THOCModel(Module):
    def __init__(self, n_features: int, hidden: int, n_clusters: int,
                 dilations: tuple[int, ...], rng: np.random.Generator):
        super().__init__()
        self.dilations = dilations
        self.hidden = hidden
        self.input_proj = Linear(n_features, hidden, rng)
        for i, _ in enumerate(dilations):
            setattr(self, f"gru{i}", GRU(hidden, hidden, rng))
            setattr(self, f"centers{i}", Parameter(init.xavier_normal((n_clusters, hidden), rng)))

    def _scale_distances(self, windows: np.ndarray) -> list[tuple[Tensor, int]]:
        """Min cluster distance per position at each dilation scale.

        Returns ``[(distance (B, T//d), dilation), ...]``.
        """
        x = self.input_proj(Tensor(windows))
        results = []
        for i, dilation in enumerate(self.dilations):
            strided = x[:, ::dilation, :]
            states = getattr(self, f"gru{i}")(strided)  # (B, T//d, H)
            centers = getattr(self, f"centers{i}")      # (K, H)
            # Squared distances to each centre: (B, T//d, K).
            x2 = (states * states).sum(axis=-1, keepdims=True)
            c2 = (centers * centers).sum(axis=-1)
            cross = states @ centers.T
            distances = x2 - 2.0 * cross + c2
            weights = (-distances).softmax(axis=-1)
            soft_min = (weights * distances).sum(axis=-1)  # (B, T//d)
            results.append((soft_min, dilation))
        return results

    def loss(self, windows: np.ndarray) -> Tensor:
        total = None
        for soft_min, _ in self._scale_distances(windows):
            term = soft_min.mean()
            total = term if total is None else total + term
        return total * (1.0 / len(self.dilations))

    def score_windows(self, windows: np.ndarray) -> np.ndarray:
        batch, time, _ = windows.shape
        with no_grad():
            accumulated = np.zeros((batch, time))
            for soft_min, dilation in self._scale_distances(windows):
                upsampled = np.repeat(soft_min.data, dilation, axis=1)[:, :time]
                if upsampled.shape[1] < time:  # tail when T % dilation != 0
                    pad = np.repeat(upsampled[:, -1:], time - upsampled.shape[1], axis=1)
                    upsampled = np.concatenate([upsampled, pad], axis=1)
                accumulated += upsampled
        return accumulated / len(self.dilations)


class THOC(WindowModelDetector):
    """Temporal hierarchical one-class detector."""

    name = "THOC"

    def __init__(self, hidden: int = 32, n_clusters: int = 4,
                 dilations: tuple[int, ...] = (1, 2, 4), epochs: int = 2,
                 learning_rate: float = 1e-3, **kwargs):
        super().__init__(epochs=epochs, learning_rate=learning_rate, **kwargs)
        self.hidden = hidden
        self.n_clusters = n_clusters
        self.dilations = dilations

    def build_model(self, n_features: int) -> _THOCModel:
        rng = np.random.default_rng(self.seed)
        return _THOCModel(n_features, self.hidden, self.n_clusters, self.dilations, rng)
