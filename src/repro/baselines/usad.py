"""USAD baseline (Audibert et al., KDD 2020).

UnSupervised Anomaly Detection: one encoder ``E`` and two decoders
``D1``/``D2`` form two autoencoders.  Adversarial two-phase training makes
``AE2`` learn to distinguish real windows from ``AE1`` reconstructions
while ``AE1`` learns to fool it:

* ``AE1``: minimise ``1/n * ||W - W1|| + (1 - 1/n) * ||W - W2'||``
* ``AE2``: minimise ``1/n * ||W - W2|| - (1 - 1/n) * ||W - W2'||``

with ``W2' = D2(E(W1))`` and ``n`` the epoch number.  The score is
``alpha * ||w - W1|| + beta * ||w - W2'||`` per observation.  The phase
weighting is reproduced with the epoch counter advanced per training call.
"""

from __future__ import annotations

import numpy as np

from ..nn import GELU, Linear, Module, Sequential, Tensor, no_grad
from ..nn.module import frozen
from .common import WindowModelDetector

__all__ = ["USAD"]


def _mse(a: Tensor, b: Tensor) -> Tensor:
    diff = a - b
    return (diff * diff).mean()


class _USADModel(Module):
    def __init__(self, n_features: int, window: int, latent: int, rng: np.random.Generator):
        super().__init__()
        self.window = window
        self.n_features = n_features
        flat = window * n_features
        hidden = max(latent * 2, flat // 4)
        self.encoder = Sequential(
            Linear(flat, hidden, rng), GELU(), Linear(hidden, latent, rng), GELU()
        )
        self.decoder1 = Sequential(
            Linear(latent, hidden, rng), GELU(), Linear(hidden, flat, rng)
        )
        self.decoder2 = Sequential(
            Linear(latent, hidden, rng), GELU(), Linear(hidden, flat, rng)
        )
        self.epoch = 1  # advanced by the detector each epoch

    def _flatten(self, windows: np.ndarray) -> Tensor:
        return Tensor(windows.reshape(windows.shape[0], -1))

    def loss(self, windows: np.ndarray) -> Tensor:
        w = self._flatten(windows)
        z = self.encoder(w)
        w1 = self.decoder1(z)
        w2 = self.decoder2(z)
        n = float(self.epoch)
        a, b = 1.0 / n, 1.0 - 1.0 / n

        # AE1 phase: W2' computed with AE2 frozen so only AE1 learns to fool it.
        with frozen(self.decoder2):
            w2_prime_for_ae1 = self.decoder2(self.encoder(w1))
        loss_ae1 = a * _mse(w1, w) + b * _mse(w2_prime_for_ae1, w)

        # AE2 phase: W2' computed with AE1 frozen so only AE2 learns to
        # separate real windows from AE1 outputs.
        with frozen(self.decoder1):
            w1_frozen = self.decoder1(z.detach())
        w2_prime_for_ae2 = self.decoder2(self.encoder(w1_frozen))
        loss_ae2 = a * _mse(w2, w) - b * _mse(w2_prime_for_ae2, w)

        return loss_ae1 + loss_ae2

    def score_windows(self, windows: np.ndarray, alpha: float = 0.5, beta: float = 0.5) -> np.ndarray:
        batch, time, features = windows.shape
        with no_grad():
            w = self._flatten(windows)
            z = self.encoder(w)
            w1 = self.decoder1(z)
            w2_prime = self.decoder2(self.encoder(w1))
        err1 = ((w1.data - w.data) ** 2).reshape(batch, time, features).mean(axis=-1)
        err2 = ((w2_prime.data - w.data) ** 2).reshape(batch, time, features).mean(axis=-1)
        return alpha * err1 + beta * err2


class USAD(WindowModelDetector):
    """Two-decoder adversarial autoencoder detector."""

    name = "USAD"

    def __init__(self, latent: int = 32, epochs: int = 3, learning_rate: float = 1e-3, **kwargs):
        super().__init__(epochs=epochs, learning_rate=learning_rate, **kwargs)
        self.latent = latent

    def build_model(self, n_features: int) -> _USADModel:
        rng = np.random.default_rng(self.seed)
        return _USADModel(n_features, self.window_size, self.latent, rng)

    def on_epoch_end(self, model: _USADModel, epoch: int) -> None:
        model.epoch = epoch + 2  # 1/n weighting with n = next epoch number
