"""Deep SVDD baseline (Ruff et al., ICML 2018).

A neural encoder maps each observation into a latent space; training
minimises the distance of mapped points to a fixed hypersphere centre
``c`` (one-class objective).  Anomalies land far from the centre.  As in
the original, ``c`` is set to the mean initial embedding (never learned —
learning it collapses the sphere) and the encoder uses no bias terms for
the same reason.
"""

from __future__ import annotations

import numpy as np

from ..nn import GELU, Linear, Module, Sequential, Tensor, no_grad
from .common import WindowModelDetector

__all__ = ["DSVDD"]


class _DSVDDModel(Module):
    def __init__(self, n_features: int, hidden: int, latent: int, rng: np.random.Generator):
        super().__init__()
        # Bias-free encoder, per Ruff et al.'s collapse analysis.
        self.encoder = Sequential(
            Linear(n_features, hidden, rng, bias=False),
            GELU(),
            Linear(hidden, hidden, rng, bias=False),
            GELU(),
            Linear(hidden, latent, rng, bias=False),
        )
        self.center: np.ndarray | None = None

    def set_center(self, windows: np.ndarray) -> None:
        """Fix the hypersphere centre to the mean initial embedding."""
        with no_grad():
            embedded = self.encoder(Tensor(windows)).data
        center = embedded.reshape(-1, embedded.shape[-1]).mean(axis=0)
        # Guard against coordinates too close to zero (trivial solutions).
        small = np.abs(center) < 0.1
        center[small] = 0.1 * np.sign(center[small] + 1e-12)
        self.center = center

    def _distances(self, windows: np.ndarray) -> Tensor:
        if self.center is None:
            raise RuntimeError("centre not initialised; call set_center first")
        embedded = self.encoder(Tensor(windows))
        delta = embedded - Tensor(self.center)
        return (delta * delta).sum(axis=-1)  # (B, T)

    def loss(self, windows: np.ndarray) -> Tensor:
        return self._distances(windows).mean()

    def score_windows(self, windows: np.ndarray) -> np.ndarray:
        with no_grad():
            return self._distances(windows).data


class DSVDD(WindowModelDetector):
    """Deep support vector data description on per-observation embeddings."""

    name = "DSVDD"

    def __init__(self, hidden: int = 64, latent: int = 16, epochs: int = 3,
                 learning_rate: float = 1e-3, **kwargs):
        super().__init__(epochs=epochs, learning_rate=learning_rate, **kwargs)
        self.hidden = hidden
        self.latent = latent

    def build_model(self, n_features: int) -> _DSVDDModel:
        rng = np.random.default_rng(self.seed)
        return _DSVDDModel(n_features, self.hidden, self.latent, rng)

    def on_model_built(self, model: _DSVDDModel, train: np.ndarray) -> None:
        sample = train[: min(len(train), 2048)]
        model.set_center(sample[None, :, :])
