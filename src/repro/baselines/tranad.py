"""TranAD baseline (Tuli et al., VLDB 2022).

Transformer encoder with two decoders and self-conditioning: decoder 1
reconstructs directly; its squared error becomes a *focus score* that is
fed back as an extra input channel for a second, adversarially trained
pass.  Decoder 2 acts as the adversary — it tries to *inflate* the error
of the self-conditioned reconstruction while decoder 1 tries to shrink it.
The anomaly score averages both phases' per-observation errors.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor, TransformerStack, no_grad
from ..nn import functional as F
from ..nn.module import frozen
from ..nn.transformer import sinusoidal_positional_encoding
from .common import WindowModelDetector

__all__ = ["TranAD"]


class _TranADModel(Module):
    def __init__(self, n_features: int, dim: int, layers: int, heads: int,
                 rng: np.random.Generator):
        super().__init__()
        self.dim = dim
        # Input = window concatenated with the focus-score channel.
        self.embed = Linear(2 * n_features, dim, rng)
        self.encoder = TransformerStack(dim, layers, heads, rng)
        self.decoder1 = Linear(dim, n_features, rng)
        self.decoder2 = Linear(dim, n_features, rng)
        self._pe_cache: dict[int, np.ndarray] = {}

    def _encode(self, x: Tensor, focus: Tensor) -> Tensor:
        time = x.shape[1]
        if time not in self._pe_cache:
            self._pe_cache[time] = sinusoidal_positional_encoding(time, self.dim)
        hidden = self.embed(Tensor.concat([x, focus], axis=2)) + Tensor(self._pe_cache[time])
        return self.encoder(hidden)

    def _two_phase(self, windows: np.ndarray) -> tuple[Tensor, Tensor, Tensor]:
        x = Tensor(windows)
        zero_focus = Tensor(np.zeros_like(windows))
        # Phase 1: plain reconstruction with zero focus.
        o1 = self.decoder1(self._encode(x, zero_focus))
        # Phase 2: self-conditioning on the (detached) phase-1 error map.
        focus = (o1.detach() - x.detach()) ** 2
        o2 = self.decoder2(self._encode(x, focus))
        return x, o1, o2

    def loss(self, windows: np.ndarray) -> Tensor:
        # Adversarial phase-2: encoder/decoder1 minimise the conditioned
        # error (decoder2 frozen); decoder2 maximises it (the rest frozen).
        # o1's gradient path never touches decoder2, so the first pass also
        # provides the plain phase-1 reconstruction term.
        with frozen(self.decoder2):
            x, o1, o2_min = self._two_phase(windows)
            recon1 = F.mse_loss(o1, x)
            adv_min = F.mse_loss(o2_min, x)
        with frozen(self.encoder), frozen(self.decoder1), frozen(self.embed):
            _, _, o2_max = self._two_phase(windows)
            adv_max = F.mse_loss(o2_max, x)
        return recon1 + adv_min - adv_max

    def score_windows(self, windows: np.ndarray) -> np.ndarray:
        with no_grad():
            x, o1, o2 = self._two_phase(windows)
        err1 = ((o1.data - windows) ** 2).mean(axis=-1)
        err2 = ((o2.data - windows) ** 2).mean(axis=-1)
        return 0.5 * (err1 + err2)


class TranAD(WindowModelDetector):
    """Self-conditioned adversarial Transformer detector."""

    name = "TranAD"

    def __init__(self, dim: int = 32, layers: int = 2, heads: int = 4,
                 epochs: int = 2, learning_rate: float = 1e-3, **kwargs):
        super().__init__(epochs=epochs, learning_rate=learning_rate, **kwargs)
        self.dim = dim
        self.layers = layers
        self.heads = heads

    def build_model(self, n_features: int) -> _TranADModel:
        rng = np.random.default_rng(self.seed)
        return _TranADModel(n_features, self.dim, self.layers, self.heads, rng)
