"""First-order optimisers for the numpy substrate.

The paper trains TFMAE with Adam (initial learning rate 1e-4); SGD is
provided for tests and simple baselines.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # state (de)serialisation — flat name -> ndarray, checkpoint-friendly
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of optimiser state; scalars become 0-d arrays."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict` in-place.

        Raises
        ------
        KeyError
            If an expected entry is missing.
        ValueError
            On any per-parameter shape mismatch.
        """

    def _restore_slots(
        self,
        state: dict[str, np.ndarray],
        prefix: str,
        slots: list[np.ndarray],
    ) -> None:
        """Copy ``{prefix}.{i}`` arrays from ``state`` into ``slots``."""
        for i, slot in enumerate(slots):
            key = f"{prefix}.{i}"
            if key not in state:
                raise KeyError(f"optimizer state missing entry: {key}")
            value = np.asarray(state[key])
            if value.shape != slot.shape:
                raise ValueError(
                    f"optimizer state shape mismatch for {key}: "
                    f"expected {slot.shape}, got {value.shape}"
                )
            slot[...] = value


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float, momentum: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            # In-place update (bitwise-identical values to the historical
            # rebinding form): keeps ``param.data`` identity stable so
            # compiled tapes guarding on it survive optimisation steps.
            np.subtract(param.data, self.lr * update, out=param.data)

    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {"lr": np.asarray(self.lr)}
        state.update({f"velocity.{i}": v.copy() for i, v in enumerate(self._velocity)})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if "lr" in state:
            self.lr = float(state["lr"])
        self._restore_slots(state, "velocity", self._velocity)


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2014), the paper's training algorithm."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        grad_clip: float | None = None,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.grad_clip = grad_clip
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.grad_clip is not None:
                norm = float(np.linalg.norm(grad))
                if norm > self.grad_clip:
                    grad = grad * (self.grad_clip / (norm + 1e-12))
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            # In-place update (bitwise-identical values to the historical
            # rebinding form): scoring and train-step tapes guard on
            # ``param.data`` identity, which must survive every step.
            np.subtract(param.data, self.lr * m_hat / (np.sqrt(v_hat) + self.eps),
                        out=param.data)

    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {
            "step": np.asarray(self._step),
            "lr": np.asarray(self.lr),
        }
        state.update({f"m.{i}": m.copy() for i, m in enumerate(self._m)})
        state.update({f"v.{i}": v.copy() for i, v in enumerate(self._v)})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if "step" not in state:
            raise KeyError("optimizer state missing entry: step")
        self._step = int(state["step"])
        if "lr" in state:
            self.lr = float(state["lr"])
        self._restore_slots(state, "m", self._m)
        self._restore_slots(state, "v", self._v)
