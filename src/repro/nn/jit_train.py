"""Trace-compiled training: a tape JIT for the whole train step.

:mod:`repro.nn.jit` compiles the *scoring* graph; this module extends the
same tape machinery to the full training step — ``loss`` forward,
``backward`` and the optimiser update — so ``Trainer.fit`` and
``TFMAE.refit`` stop paying per-op Python dispatch on every batch:

1. **Trace** — one *real* interpreted step runs under the thread-local
   op hook.  The forward is recorded exactly as the scoring tape records
   it; during ``loss.backward()`` the hook's ``after_backward`` records
   the order in which the autograd closures ran, so the backward phase
   becomes a first-class step list of its own.  The optimiser update is
   recorded structurally (parameter/slot identities) from the optimiser
   object.  The traced batch itself uses its own interpreted results,
   so the training trajectory never depends on whether compilation
   succeeds.
2. **Compile** — forward, backward and update are code-generated into
   **one** Python generator function: ``next()`` runs the forward and
   yields the loss/metric buffers, the second ``next()`` runs the
   backward into planned gradient buffers, the third runs the in-place
   Adam update.  A liveness planner shares one buffer pool across all
   three phases (activations a backward formula still needs are kept
   alive until exactly their backward step); parameter gradients get
   dedicated buffers that are re-bound to ``param.grad`` every replay.
3. **Replay** — per ``(batch shape, fused policy)`` key, subsequent
   batches run the generated function over a per-thread frame: zero
   graph construction, zero closure dispatch, zero per-op allocation
   for buffered steps, and in-place parameter updates.

Every emitted kernel mirrors the *exact* numpy operation sequence of the
interpreted op's backward closure (and of ``Adam.step``), so the compiled
trajectory is **bitwise-identical** to the interpreted one: same
per-batch losses, same final ``state_dict``, same RNG stream — resume,
rollback and checkpoints stay exactly reproducible across the toggle.

Guard semantics extend the scoring tape's: a tape replays only while
every traced parameter still binds its traced array (and requires-grad
flag) and — when the update phase is compiled — the optimiser still owns
the traced moment buffers with the traced hyper-parameters.  Anything
else (checkpoint restore, rollback, refit, ``to_dtype``) invalidates the
cache and retraces.  Unsupported graphs (active dropout masks, ``max``
in the backward, gradient flow into untraced leaves) soft-fail: the key
is negative-cached and the interpreted path is used, consuming the same
RNG.

The :func:`use_train_jit` / :func:`set_train_jit` /
:func:`train_jit_enabled` switch trio mirrors :func:`repro.nn.jit.set_jit`
exactly.  Failures raised *inside* a compiled step are re-raised as
:class:`CompiledStepError` naming the op and its recorded creation site
instead of the anonymous ``exec`` frame; when ``detect_anomaly`` is
active the step always runs interpreted so the sanitizer's op attribution
is untouched.

This module never constructs tensors — it only observes them through the
hook.  Lint rule JIT001 (:mod:`repro.analysis`) enforces this.
"""

from __future__ import annotations

import os
import sys
import threading

import numpy as np

from .dtype import default_dtype
from .fused import _GELU_COEFF, _SQRT_2_OVER_PI, fused_enabled
from .jit import (
    _CONST,
    _NP_CALL,
    _SLOT,
    _STEP,
    _classify,
    _Codegen,
    _COMPILERS,
    _reduced_shape,
    _scratch_specs,
    _Step,
    _TapeBuilder,
    TraceUnsupported,
)
from .optim import Adam
from .tensor import _HOOK_STATE, _unbroadcast, op_hook

__all__ = [
    "train_jit_enabled",
    "set_train_jit",
    "use_train_jit",
    "TrainStep",
    "TrainTape",
    "CompiledStepError",
    "TraceUnsupported",
]

_global_enabled = True
_local = threading.local()

#: Negative-cache sentinel for specialization keys that hit a
#: trace-unsupported op — the interpreted path is used without retracing.
_UNSUPPORTED = object()

_FILENAME = "<repro.nn.jit_train.TrainTape>"
_NN_DIR = os.path.dirname(os.path.abspath(__file__))


def train_jit_enabled() -> bool:
    """Whether train-step compilation is active on this thread (default True).

    A thread-local :class:`use_train_jit` override wins over the
    :func:`set_train_jit` process default.
    """
    stack = getattr(_local, "stack", None)
    if stack:
        return stack[-1]
    return _global_enabled


def set_train_jit(enabled: bool) -> None:
    """Set the process-wide default for train-step compilation.

    Threads currently inside a :class:`use_train_jit` block keep their
    own override; everyone else observes the new default immediately.
    """
    global _global_enabled
    _global_enabled = bool(enabled)


class use_train_jit:
    """Thread-local train-step-compilation override (context manager).

    Scoped to the current thread only, mirroring
    :class:`repro.nn.jit.use_jit`, so an equivalence test pinning the
    interpreted loop never disturbs concurrent training threads.
    """

    def __init__(self, enabled: bool):
        self.enabled = bool(enabled)

    def __enter__(self) -> "use_train_jit":
        stack = getattr(_local, "stack", None)
        if stack is None:
            stack = _local.stack = []
        stack.append(self.enabled)
        return self

    def __exit__(self, *exc_info) -> None:
        _local.stack.pop()


class CompiledStepError(RuntimeError):
    """A failure inside a compiled train step, mapped back to its op.

    Carries the culpable op name, the phase (forward/backward/update)
    and the op's recorded creation site so diagnostics keep naming model
    code rather than the generated ``exec`` frame.
    """

    def __init__(self, message: str, op: str | None = None,
                 phase: str | None = None, site: str | None = None):
        super().__init__(message)
        self.op = op
        self.phase = phase
        self.site = site


def _capture_site() -> str | None:
    """First stack frame outside ``repro/nn`` — the op's creation site."""
    frame = sys._getframe(2)
    while frame is not None:
        code = frame.f_code
        if not code.co_filename.startswith(_NN_DIR):
            return f"{code.co_filename}:{frame.f_lineno} ({code.co_name})"
        frame = frame.f_back
    return None


class _TrainTapeBuilder(_TapeBuilder):
    """Op hook recording one interpreted train step (forward + backward).

    Extends the scoring builder with everything the backward compiler
    needs: per-parent gradient targets (an earlier step or a parameter),
    the closure execution order observed during ``loss.backward()``, a
    data-identity fallback so ``detach()`` leaves resolve to the step
    whose array they share, and per-step creation sites for error
    attribution.
    """

    def __init__(self, slots: dict, params) -> None:
        super().__init__(slots, params)
        self.data_step: dict[int, int] = {}
        self.parent_targets: list[tuple] = []
        self.sites: list[str | None] = []
        self.backward_items: list[int] = []

    def after_forward(self, out, parents) -> None:
        if self.failed is not None:
            return
        op = out.op
        try:
            if op not in _COMPILERS:
                raise TraceUnsupported(f"op {op!r} has no replay kernel")
            refs = tuple(self._resolve_parent(p) for p in parents)
            meta = self._resolve_meta(op, getattr(out, "_meta", None))
            targets = tuple(self._resolve_target(p) for p in parents)
        except TraceUnsupported as error:
            self.failed = str(error)
            return
        index = len(self.steps)
        self.steps.append(
            _Step(op, out.data, tuple(p.data for p in parents), refs, meta)
        )
        self.tensor_step[id(out)] = index
        self.data_step[id(out.data)] = index
        self.parent_targets.append(targets)
        self.sites.append(_capture_site())
        self.keepalive.append(out)

    def _resolve_parent(self, parent):
        index = self.tensor_step.get(id(parent))
        if index is not None:
            return (_STEP, index)
        data = parent.data
        name = self._slot_ids.get(id(data))
        if name is not None:
            return (_SLOT, name)
        param = self._param_ids.get(id(data))
        if param is not None:
            if id(param) not in self._guard_ids:
                self._guard_ids.add(id(param))
                self.guards.append((param, data))
            return (_CONST, data)
        # ``detach()`` wraps a traced step's array in a fresh leaf: the
        # values are that step's output, so replay reads its buffer.
        index = self.data_step.get(id(data))
        if index is not None:
            return (_STEP, index)
        if data.size <= 1:
            return (_CONST, data.copy())
        raise TraceUnsupported(
            f"leaf array of shape {data.shape} is neither a registered "
            "input slot nor a parameter"
        )

    def _resolve_target(self, parent):
        """Where this parent's gradient accumulates, or None for no-grad."""
        if not parent.requires_grad:
            return None
        index = self.tensor_step.get(id(parent))
        if index is not None:
            return ("s", index)
        param = self._param_ids.get(id(parent.data))
        if param is not None:
            return ("p", param)
        raise TraceUnsupported(
            f"gradient flows into an untraced leaf (op {parent.op!r})"
        )

    def after_backward(self, node) -> None:
        if self.failed is not None:
            return
        index = self.tensor_step.get(id(node))
        if index is None:
            self.failed = "backward reached an untraced node"
            return
        self.backward_items.append(index)

# ----------------------------------------------------------------------
# forward variant: GELU that keeps tanh(u) alive for its backward
# ----------------------------------------------------------------------
def _emit_train_gelu(cg, i, step, kind, buf_id, scratch_ids):
    """``fused_gelu`` forward, value-identical to the scoring emitter, but
    with ``t = tanh(u)`` landing in a persistent scratch (the scoring
    emitter destroys it computing ``t + 1``)."""
    a, buf = cg.ref(step.refs[0]), cg.buf(buf_id)
    t, tmp = cg.buf(scratch_ids[0]), cg.buf(scratch_ids[1])
    cg.emit(f"np.multiply({a}, {a}, out={t})")
    cg.emit(f"np.multiply({t}, {a}, out={t})")
    cg.emit(f"np.multiply({t}, {cg.lit(_GELU_COEFF)}, out={t})")
    cg.emit(f"np.add({a}, {t}, out={t})")
    cg.emit(f"np.multiply({t}, {cg.lit(_SQRT_2_OVER_PI)}, out={t})")
    cg.emit(f"np.tanh({t}, out={t})")
    cg.emit(f"np.multiply({a}, 0.5, out={buf})")
    cg.emit(f"np.add({t}, 1.0, out={tmp})")
    cg.emit(f"e{i} = np.multiply({buf}, {tmp}, out={buf})")


#: Fused ops whose backward reads forward intermediates: how many leading
#: scratch buffers must survive until the op's backward step runs.
#: layer_norm keeps (x_hat, std); attention keeps the softmax weights;
#: the train-gelu variant above keeps tanh(u).
_PERSIST = {"fused_layer_norm": 2, "fused_attention": 1, "fused_gelu": 1}


# ----------------------------------------------------------------------
# backward kernel emitters
# ----------------------------------------------------------------------
class _BwdCtx:
    """Emission context for one backward item (one closure's replay).

    Wraps the codegen plus the gradient-contribution machinery so each
    per-op emitter below only spells out the closure's exact numpy
    sequence.  ``contrib(k, raw_shape, recipe)`` routes one parent's raw
    gradient (a string expression, or a callable emitting lines into a
    target) through the same init-copy/accumulate semantics as
    ``Tensor._accumulate``, including ``_unbroadcast`` when the raw shape
    differs from the parent's.
    """

    __slots__ = ("cg", "step", "index", "out", "g",
                 "_targets", "_fwd", "_scratch", "_contribute")

    def __init__(self, cg, step, index, out, g, targets,
                 fwd_scratch, scratch, contribute):
        self.cg = cg
        self.step = step
        self.index = index
        self.out = out
        self.g = g
        self._targets = targets
        self._fwd = fwd_scratch
        self._scratch = scratch
        self._contribute = contribute

    @property
    def oshape(self):
        return self.step.out_data.shape

    @property
    def odtype(self):
        return self.step.out_data.dtype

    def ref(self, k):
        return self.cg.ref(self.step.refs[k])

    def pshape(self, k):
        return self.step.parent_datas[k].shape

    def pdtype(self, k):
        return self.step.parent_datas[k].dtype

    def lit(self, obj):
        return self.cg.lit(obj)

    def line(self, text):
        self.cg.emit(text)

    def wants(self, k):
        return self._targets[k] is not None

    def scratch(self, shape, dtype):
        """A pooled temporary living only for this backward item."""
        return self._scratch(tuple(shape), dtype)

    def fwd(self, j):
        """Expression for the op's j-th persisted forward scratch."""
        return self._fwd[j]

    def contrib(self, k, raw_shape, recipe):
        self._contribute(k, tuple(raw_shape), recipe)

    def call(self, k, raw_shape, fn, *args):
        """Contribution computed by one ``np.<fn>(*args, out=target)``."""
        joined = ", ".join(args)
        self._contribute(
            k, tuple(raw_shape),
            lambda target: [f"np.{fn}({joined}, out={target})"],
        )


def _bwd_add(ctx):
    ctx.contrib(0, ctx.oshape, ctx.g)
    ctx.contrib(1, ctx.oshape, ctx.g)


def _bwd_neg(ctx):
    ctx.call(0, ctx.oshape, "negative", ctx.g)


def _bwd_mul(ctx):
    ctx.call(0, ctx.oshape, "multiply", ctx.g, ctx.ref(1))
    ctx.call(1, ctx.oshape, "multiply", ctx.g, ctx.ref(0))


def _bwd_div(ctx):
    ctx.call(0, ctx.oshape, "divide", ctx.g, ctx.ref(1))
    if ctx.wants(1):
        b = ctx.ref(1)
        sq = ctx.scratch(ctx.pshape(1), ctx.pdtype(1))

        def lines(target):
            return [
                f"np.negative({ctx.g}, out={target})",
                f"np.multiply({target}, {ctx.ref(0)}, out={target})",
                f"np.multiply({b}, {b}, out={sq})",
                f"np.divide({target}, {sq}, out={target})",
            ]

        ctx.contrib(1, ctx.oshape, lines)


def _bwd_pow(ctx):
    exponent = ctx.step.meta["exponent"]
    g, a = ctx.g, ctx.ref(0)

    def lines(target):
        return [
            f"np.multiply({g}, {ctx.lit(exponent)}, out={target})",
            f"np.multiply({target}, {a} ** {ctx.lit(exponent - 1)}, "
            f"out={target})",
        ]

    ctx.contrib(0, ctx.oshape, lines)


def _bwd_exp(ctx):
    ctx.call(0, ctx.oshape, "multiply", ctx.g, ctx.out)


def _bwd_log(ctx):
    ctx.call(0, ctx.oshape, "divide", ctx.g, ctx.ref(0))


def _bwd_sqrt(ctx):
    def lines(target):
        return [
            f"np.multiply({ctx.g}, 0.5, out={target})",
            f"np.divide({target}, {ctx.out}, out={target})",
        ]

    ctx.contrib(0, ctx.oshape, lines)


def _bwd_tanh(ctx):
    def lines(target):
        return [
            f"np.multiply({ctx.out}, {ctx.out}, out={target})",
            f"np.subtract(1.0, {target}, out={target})",
            f"np.multiply({ctx.g}, {target}, out={target})",
        ]

    ctx.contrib(0, ctx.oshape, lines)


def _bwd_sigmoid(ctx):
    comp = ctx.scratch(ctx.oshape, ctx.odtype)

    def lines(target):
        return [
            f"np.subtract(1.0, {ctx.out}, out={comp})",
            f"np.multiply({ctx.g}, {ctx.out}, out={target})",
            f"np.multiply({target}, {comp}, out={target})",
        ]

    ctx.contrib(0, ctx.oshape, lines)


def _bwd_relu(ctx):
    ctx.call(0, ctx.oshape, "multiply", ctx.g, f"np.greater({ctx.ref(0)}, 0)")


def _bwd_abs(ctx):
    ctx.call(0, ctx.oshape, "multiply", ctx.g, f"np.sign({ctx.ref(0)})")


def _bwd_clip(ctx):
    low, high = ctx.lit(ctx.step.meta["low"]), ctx.lit(ctx.step.meta["high"])
    a = ctx.ref(0)
    ctx.call(0, ctx.oshape, "multiply", ctx.g,
             f"(({a} >= {low}) & ({a} <= {high}))")


def _bwd_sum(ctx):
    axis = ctx.step.meta["axis"]
    keepdims = ctx.step.meta["keepdims"]
    g = ctx.g
    if axis is not None and not keepdims:
        g = f"np.expand_dims({g}, axis={ctx.lit(axis)})"
    ctx.contrib(0, ctx.pshape(0),
                f"np.broadcast_to({g}, {ctx.lit(ctx.pshape(0))})")


def _bwd_matmul(ctx):
    a, b = ctx.step.parent_datas
    g = ctx.g
    if a.ndim == 1:  # dot product
        ctx.call(0, a.shape, "multiply", g, ctx.ref(1))
        ctx.call(1, b.shape, "multiply", g, ctx.ref(0))
        return
    gshape = ctx.oshape
    raw_a = tuple(np.broadcast_shapes(gshape[:-2], b.shape[:-2])) + (
        gshape[-2], b.shape[-2])
    raw_b = tuple(np.broadcast_shapes(a.shape[:-2], gshape[:-2])) + (
        a.shape[-1], gshape[-1])
    ctx.contrib(0, raw_a, lambda target: [
        f"np.matmul({g}, np.swapaxes({ctx.ref(1)}, -1, -2), out={target})"])
    ctx.contrib(1, raw_b, lambda target: [
        f"np.matmul(np.swapaxes({ctx.ref(0)}, -1, -2), {g}, out={target})"])


def _bwd_transpose(ctx):
    inverse = tuple(int(x) for x in np.argsort(ctx.step.meta["axes"]))
    ctx.contrib(0, ctx.pshape(0), f"{ctx.g}.transpose({ctx.lit(inverse)})")


def _bwd_reshape(ctx):
    ctx.contrib(0, ctx.pshape(0),
                f"{ctx.g}.reshape({ctx.lit(ctx.pshape(0))})")


def _bwd_getitem(ctx):
    index = ctx.cg.index(ctx.step.meta["index"])

    def lines(target):
        return [
            f"{target}[...] = 0.0",
            f"np.add.at({target}, {index}, {ctx.g})",
        ]

    ctx.contrib(0, ctx.pshape(0), lines)


def _bwd_scatter(ctx):
    index = ctx.cg.index(ctx.step.meta["index"])
    ctx.contrib(0, ctx.pshape(0), f"{ctx.g}[{index}]")


def _bwd_concat(ctx):
    axis = ctx.step.meta["axis"]
    ndim = ctx.step.out_data.ndim
    start = 0
    for k, pdata in enumerate(ctx.step.parent_datas):
        stop = start + pdata.shape[axis]
        slicer = [slice(None)] * ndim
        slicer[axis] = slice(start, stop)
        ctx.contrib(k, pdata.shape,
                    f"{ctx.g}[{ctx.cg.const(tuple(slicer))}]")
        start = stop


def _bwd_stack(ctx):
    axis = ctx.lit(ctx.step.meta["axis"])
    nparts = len(ctx.step.parent_datas)
    parts = f"aux{ctx.index}"
    ctx.line(f"{parts} = np.split({ctx.g}, {nparts}, axis={axis})")
    for k, pdata in enumerate(ctx.step.parent_datas):
        ctx.contrib(k, pdata.shape,
                    f"np.squeeze({parts}[{k}], axis={axis})")


def _bwd_where(ctx):
    cond = ctx.cg.obj(ctx.step.meta["condition"])
    ctx.contrib(0, ctx.oshape, f"np.where({cond}, {ctx.g}, 0.0)")
    ctx.contrib(1, ctx.oshape, f"np.where({cond}, 0.0, {ctx.g})")


def _bwd_fused_softmax(ctx):
    axis = ctx.lit(ctx.step.meta["axis"])
    work = ctx.scratch(ctx.oshape, ctx.odtype)
    red = ctx.scratch(
        _reduced_shape(ctx.oshape, ctx.step.meta["axis"]), ctx.odtype)

    def lines(target):
        return [
            f"np.multiply({ctx.g}, {ctx.out}, out={work})",
            f"np.add.reduce({work}, axis={axis}, out={red}, keepdims=True)",
            f"np.subtract({ctx.g}, {red}, out={work})",
            f"np.multiply({ctx.out}, {work}, out={target})",
        ]

    ctx.contrib(0, ctx.oshape, lines)


def _bwd_fused_log_softmax(ctx):
    axis = ctx.lit(ctx.step.meta["axis"])
    work = ctx.scratch(ctx.oshape, ctx.odtype)
    red = ctx.scratch(
        _reduced_shape(ctx.oshape, ctx.step.meta["axis"]), ctx.odtype)

    def lines(target):
        return [
            f"np.add.reduce({ctx.g}, axis={axis}, out={red}, keepdims=True)",
            f"np.exp({ctx.out}, out={work})",
            f"np.multiply({work}, {red}, out={work})",
            f"np.subtract({ctx.g}, {work}, out={target})",
        ]

    ctx.contrib(0, ctx.oshape, lines)


def _bwd_fused_layer_norm(ctx):
    xshape, xdtype = ctx.pshape(0), ctx.pdtype(0)
    count = xshape[-1]
    x_hat, std = ctx.fwd(0), ctx.fwd(1)
    weight = ctx.ref(1)
    gw = ctx.scratch(xshape, xdtype)
    work = ctx.scratch(xshape, xdtype)
    g_mean = ctx.scratch(xshape[:-1] + (1,), xdtype)
    g_hat_mean = ctx.scratch(xshape[:-1] + (1,), xdtype)
    # ndarray.mean is add.reduce followed by an in-place divide-by-count.
    ctx.line(f"np.multiply({ctx.g}, {weight}, out={gw})")
    ctx.line(f"np.add.reduce({gw}, axis=-1, out={g_mean}, keepdims=True)")
    ctx.line(f"np.divide({g_mean}, {count}, out={g_mean})")
    ctx.line(f"np.multiply({gw}, {x_hat}, out={work})")
    ctx.line(f"np.add.reduce({work}, axis=-1, out={g_hat_mean}, keepdims=True)")
    ctx.line(f"np.divide({g_hat_mean}, {count}, out={g_hat_mean})")

    def x_lines(target):
        return [
            f"np.subtract({gw}, {g_mean}, out={gw})",
            f"np.multiply({x_hat}, {g_hat_mean}, out={work})",
            f"np.subtract({gw}, {work}, out={gw})",
            f"np.divide({gw}, {std}, out={target})",
        ]

    ctx.contrib(0, xshape, x_lines)
    ctx.call(1, ctx.oshape, "multiply", ctx.g, x_hat)
    ctx.contrib(2, ctx.oshape, ctx.g)


def _bwd_fused_gelu(ctx):
    a, g, t = ctx.ref(0), ctx.g, ctx.fwd(0)
    shape, dtype = ctx.pshape(0), ctx.pdtype(0)
    acc = ctx.scratch(shape, dtype)
    tmp = ctx.scratch(shape, dtype)
    tmp2 = ctx.scratch(shape, dtype)

    def lines(target):
        return [
            # du = sqrt(2/pi) * (1 + 3 c a^2)
            f"np.multiply({a}, {ctx.lit(3.0 * _GELU_COEFF)}, out={acc})",
            f"np.multiply({acc}, {a}, out={acc})",
            f"np.add({acc}, 1.0, out={acc})",
            f"np.multiply({acc}, {ctx.lit(_SQRT_2_OVER_PI)}, out={acc})",
            # 0.5 a (1 - t^2) du
            f"np.multiply({t}, {t}, out={tmp})",
            f"np.subtract(1.0, {tmp}, out={tmp})",
            f"np.multiply({a}, 0.5, out={tmp2})",
            f"np.multiply({tmp2}, {tmp}, out={tmp})",
            f"np.multiply({tmp}, {acc}, out={acc})",
            # + 0.5 (1 + t)
            f"np.add({t}, 1.0, out={tmp})",
            f"np.multiply({tmp}, 0.5, out={tmp})",
            f"np.add({tmp}, {acc}, out={acc})",
            f"np.multiply({g}, {acc}, out={target})",
        ]

    ctx.contrib(0, shape, lines)


def _bwd_fused_dropout_residual(ctx):
    # Mask-bearing nodes never reach compilation (the mask soft-fails the
    # trace); closure order is residual first, then x.
    ctx.contrib(1, ctx.oshape, ctx.g)
    ctx.contrib(0, ctx.oshape, ctx.g)


def _bwd_fused_attention(ctx):
    q, k, v = ctx.step.parent_datas
    gshape = ctx.oshape
    sshape = q.shape[:-1] + (k.shape[-2],)
    raw_v = tuple(np.broadcast_shapes(sshape[:-2], gshape[:-2])) + (
        sshape[-1], gshape[-1])
    raw_q = tuple(np.broadcast_shapes(sshape[:-2], k.shape[:-2])) + (
        sshape[-2], k.shape[-1])
    raw_k = tuple(np.broadcast_shapes(sshape[:-2], q.shape[:-2])) + (
        sshape[-1], q.shape[-1])
    if raw_q != q.shape or raw_k != k.shape or raw_v != v.shape:
        raise TraceUnsupported("broadcast attention backward")
    weights = ctx.fwd(0)
    s1 = ctx.scratch(sshape, ctx.odtype)
    s2 = ctx.scratch(sshape, ctx.odtype)
    red = ctx.scratch(sshape[:-1] + (1,), ctx.odtype)
    g = ctx.g
    ctx.line(f"np.matmul({g}, np.swapaxes({ctx.ref(2)}, -1, -2), out={s1})")
    ctx.contrib(2, raw_v, lambda target: [
        f"np.matmul(np.swapaxes({weights}, -1, -2), {g}, out={target})"])
    ctx.line(f"np.multiply({s1}, {weights}, out={s2})")
    ctx.line(f"np.add.reduce({s2}, axis=-1, out={red}, keepdims=True)")
    ctx.line(f"np.subtract({s1}, {red}, out={s2})")
    ctx.line(f"np.multiply({weights}, {s2}, out={s2})")
    ctx.line(f"np.multiply({s2}, {ctx.lit(ctx.step.meta['scale'])}, out={s2})")
    ctx.contrib(0, raw_q, lambda target: [
        f"np.matmul({s2}, {ctx.ref(1)}, out={target})"])
    ctx.contrib(1, raw_k, lambda target: [
        f"np.matmul(np.swapaxes({s2}, -1, -2), {ctx.ref(0)}, out={target})"])


#: op -> backward emitter.  ``max`` is deliberately absent: its
#: tie-splitting backward has no fixed numpy sequence worth mirroring, so
#: graphs differentiating through ``max`` fall back to the interpreter.
_BACKWARD = {
    "add": _bwd_add,
    "neg": _bwd_neg,
    "mul": _bwd_mul,
    "div": _bwd_div,
    "pow": _bwd_pow,
    "exp": _bwd_exp,
    "log": _bwd_log,
    "sqrt": _bwd_sqrt,
    "tanh": _bwd_tanh,
    "sigmoid": _bwd_sigmoid,
    "relu": _bwd_relu,
    "abs": _bwd_abs,
    "clip": _bwd_clip,
    "sum": _bwd_sum,
    "matmul": _bwd_matmul,
    "transpose": _bwd_transpose,
    "reshape": _bwd_reshape,
    "getitem": _bwd_getitem,
    "scatter": _bwd_scatter,
    "concat": _bwd_concat,
    "stack": _bwd_stack,
    "where": _bwd_where,
    "fused_softmax": _bwd_fused_softmax,
    "fused_log_softmax": _bwd_fused_log_softmax,
    "fused_layer_norm": _bwd_fused_layer_norm,
    "fused_gelu": _bwd_fused_gelu,
    "fused_dropout_residual": _bwd_fused_dropout_residual,
    "fused_attention": _bwd_fused_attention,
}

class TrainTape:
    """A compiled train step: one generated generator over planned buffers.

    The generated function runs in three resumable phases::

        gen = fn(slots, frame, lr, bias1, bias2)
        loss, *metrics = next(gen)   # forward
        next(gen)                    # backward into planned grad buffers
        next(gen)                    # in-place Adam update (StopIteration)

    Locals persist across ``yield``, so backward kernels read forward
    activations directly; a single liveness plan spans all three phases,
    releasing each activation buffer right after the backward step that
    last reads it.  Parameter gradients get dedicated frame buffers
    (re-bound to ``param.grad`` after the backward phase); everything
    else shares the pooled frame exactly like the scoring tape.
    """

    def __init__(self, builder, loss_tensor, metric_tensors, optimizer):
        steps = builder.steps
        n = len(steps)
        loss_step = builder.tensor_step.get(id(loss_tensor))
        if loss_step is None:
            raise TraceUnsupported("the loss is not a traced op")
        metric_names = []
        metric_steps = []
        for name, tensor in metric_tensors.items():
            index = builder.tensor_step.get(id(tensor))
            if index is None:
                raise TraceUnsupported(f"metric {name!r} is not a traced op")
            metric_names.append(name)
            metric_steps.append(index)
        items = builder.backward_items
        if not items:
            raise TraceUnsupported("no backward closures were recorded")
        bw_pos = {}
        for t, b in enumerate(items):
            if b in bw_pos:
                raise TraceUnsupported("a backward closure ran twice")
            bw_pos[b] = n + 1 + t
        for b in items:
            if steps[b].op not in _BACKWARD:
                raise TraceUnsupported(
                    f"op {steps[b].op!r} has no backward kernel")

        # ---- storage classification, exactly as the scoring tape ----
        kinds = [None] * n
        roots = [None] * n
        for i, step in enumerate(steps):
            kind = _classify(step)
            kinds[i] = kind
            if kind == "view":
                ref_kind, payload = step.refs[0]
                roots[i] = roots[payload] if ref_kind == _STEP else None
            else:
                roots[i] = i

        # ---- liveness across the forward/backward boundary ----
        # Forward reads as usual; additionally, a backward kernel may
        # read its op's own output and any parent's data, so those
        # storage roots stay alive until the kernel's position.  (This is
        # conservative for ops whose backward only reads the incoming
        # gradient — the interpreter retains every activation through
        # backward anyway, so peak memory only improves.)
        last_use = {}
        for i, step in enumerate(steps):
            for ref_kind, payload in step.refs:
                if ref_kind == _STEP:
                    root = roots[payload]
                    if root is not None:
                        last_use[root] = i
        for index in [loss_step, *metric_steps]:
            root = roots[index]
            if root is not None:
                last_use[root] = max(last_use.get(root, 0), n)
        for b, pos in bw_pos.items():
            needed = [roots[b]]
            needed += [roots[payload] for ref_kind, payload in steps[b].refs
                       if ref_kind == _STEP]
            for root in needed:
                if root is not None:
                    last_use[root] = max(last_use.get(root, -1), pos)
        deaths = {}
        for i in range(n):
            if kinds[i] == "buffer":
                deaths.setdefault(last_use.get(i, i), []).append(i)

        # ---- one buffer pool shared by all three phases ----
        specs = []
        free = {}
        buffer_of = {}

        def acquire(shape, dtype, at):
            key = (tuple(shape), str(dtype))
            pool = free.get(key)
            if pool:
                for slot, (buf_id, avail_from) in enumerate(pool):
                    if avail_from <= at:
                        pool.pop(slot)
                        return buf_id
            specs.append((tuple(shape), np.dtype(dtype)))
            return len(specs) - 1

        def release(buf_id, shape, dtype, avail_from):
            free.setdefault((tuple(shape), str(dtype)), []).append(
                (buf_id, avail_from))

        def dedicated(shape, dtype):
            # Never pooled: the buffer outlives the call as param.grad.
            specs.append((tuple(shape), np.dtype(dtype)))
            return len(specs) - 1

        codegen = _Codegen()
        tags = []

        def tag_to(phase, op, site):
            while len(tags) < len(codegen.lines):
                tags.append((phase, op, site))

        def release_deaths(pos):
            for root in deaths.get(pos, ()):
                owner = steps[root].out_data
                release(buffer_of[root], owner.shape, owner.dtype, pos + 1)

        # ---- phase 1: forward ----
        fwd_scratch = {}
        persist_release = {}
        for i, step in enumerate(steps):
            buf_id = None
            scratch_ids = []
            emitter = _COMPILERS[step.op]
            if kinds[i] == "buffer":
                shape, dtype = step.out_data.shape, step.out_data.dtype
                buf_id = acquire(shape, dtype, i)
                buffer_of[i] = buf_id
                persist = _PERSIST.get(step.op, 0) if i in bw_pos else 0
                if persist and step.op == "fused_gelu":
                    emitter = _emit_train_gelu
                    parent = step.parent_datas[0]
                    scratch = ((parent.shape, parent.dtype),
                               (parent.shape, parent.dtype))
                else:
                    scratch = _scratch_specs(step)
                for s_shape, s_dtype in scratch:
                    scratch_ids.append(acquire(s_shape, s_dtype, i))
                paired = list(zip(scratch_ids, scratch))
                for sid, (s_shape, s_dtype) in paired[persist:]:
                    release(sid, s_shape, s_dtype, i + 1)
                if persist:
                    fwd_scratch[i] = [codegen.buf(sid)
                                      for sid in scratch_ids[:persist]]
                    persist_release[i] = paired[:persist]
            emitter(codegen, i, step, kinds[i], buf_id, scratch_ids)
            tag_to("forward", step.op, builder.sites[i])
            release_deaths(i)

        elems = ", ".join(f"e{index}" for index in [loss_step, *metric_steps])
        codegen.emit(f"yield ({elems},)")
        tag_to("forward", None, None)

        # ---- phase 2: backward ----
        # Gradient buffers: pooled per traced step (released right after
        # the step's own backward runs), dedicated per parameter.
        grad_buf = {}
        initialized = set()
        graded_params = []

        seed_shape = steps[loss_step].out_data.shape
        seed_dtype = steps[loss_step].out_data.dtype
        seed = acquire(seed_shape, seed_dtype, n)
        grad_buf[("s", loss_step)] = seed
        initialized.add(("s", loss_step))
        codegen.emit(f"{codegen.buf(seed)}.fill(1.0)")
        tag_to("backward", None, None)
        release_deaths(n)

        for t, b in enumerate(items):
            pos = n + 1 + t
            step = steps[b]
            if ("s", b) not in grad_buf:
                raise TraceUnsupported(
                    f"op {step.op!r} ran backward before receiving a gradient")
            item_scratches = []

            def scratch(shape, dtype, _pos=pos, _acc=item_scratches):
                buf_id = acquire(tuple(shape), dtype, _pos)
                _acc.append((buf_id, tuple(shape), dtype))
                return codegen.buf(buf_id)

            targets = builder.parent_targets[b]
            gdtype = step.out_data.dtype

            def contribute(k, raw_shape, recipe, _pos=pos, _b=b,
                           _targets=targets, _gdtype=gdtype,
                           _scratch=scratch):
                target = _targets[k]
                if target is None:
                    return
                tkind, payload = target
                if tkind == "s":
                    tshape = tuple(steps[payload].out_data.shape)
                    tdtype = steps[payload].out_data.dtype
                    key = ("s", payload)
                    buf_id = grad_buf.get(key)
                    if buf_id is None:
                        buf_id = grad_buf[key] = acquire(tshape, tdtype, _pos)
                else:
                    param = payload
                    tshape = tuple(param.data.shape)
                    tdtype = param.data.dtype
                    key = ("p", id(param))
                    buf_id = grad_buf.get(key)
                    if buf_id is None:
                        buf_id = grad_buf[key] = dedicated(tshape, tdtype)
                        graded_params.append((param, buf_id))
                if np.dtype(_gdtype) != np.dtype(tdtype):
                    raise TraceUnsupported("mixed-dtype gradient accumulation")
                T = codegen.buf(buf_id)
                first = key not in initialized
                initialized.add(key)
                if callable(recipe):
                    if raw_shape == tshape and first:
                        for line in recipe(T):
                            codegen.emit(line)
                        return
                    S = _scratch(raw_shape, tdtype)
                    for line in recipe(S):
                        codegen.emit(line)
                    src = S if raw_shape == tshape else \
                        f"ub({S}, {codegen.lit(tshape)})"
                    if first:
                        codegen.emit(f"np.copyto({T}, {src})")
                    else:
                        codegen.emit(f"np.add({T}, {src}, out={T})")
                else:
                    src = recipe if raw_shape == tshape else \
                        f"ub({recipe}, {codegen.lit(tshape)})"
                    if first:
                        codegen.emit(f"np.copyto({T}, {src})")
                    else:
                        codegen.emit(f"np.add({T}, {src}, out={T})")

            ctx = _BwdCtx(
                codegen, step, b, f"e{b}",
                codegen.buf(grad_buf[("s", b)]), targets,
                fwd_scratch.get(b, ()), scratch, contribute,
            )
            _BACKWARD[step.op](ctx)
            tag_to("backward", step.op, builder.sites[b])
            for buf_id, shape, dtype in item_scratches:
                release(buf_id, shape, dtype, pos + 1)
            release(grad_buf[("s", b)], tuple(step.out_data.shape),
                    step.out_data.dtype, pos + 1)
            for sid, (s_shape, s_dtype) in persist_release.get(b, ()):
                release(sid, s_shape, s_dtype, pos + 1)
            release_deaths(pos)

        codegen.emit("yield None")
        tag_to("backward", None, None)

        # ---- phase 3: in-place Adam update ----
        graded_ids = frozenset(id(param) for param, _ in graded_params)
        has_update = isinstance(optimizer, Adam)
        opt_guards = []
        if has_update:
            base = n + 1 + len(items)
            lit = codegen.lit
            clip = optimizer.grad_clip
            decay = optimizer.weight_decay
            beta1, beta2 = optimizer.beta1, optimizer.beta2
            for j, param in enumerate(optimizer.parameters):
                if id(param) not in graded_ids:
                    continue
                pos = base + j
                grad = codegen.buf(grad_buf[("p", id(param))])
                p_ = codegen.const(param.data)
                m_ = codegen.const(optimizer._m[j])
                v_ = codegen.const(optimizer._v[j])
                shape, dtype = param.data.shape, param.data.dtype
                a_id = acquire(shape, dtype, pos)
                b_id = acquire(shape, dtype, pos)
                A, B = codegen.buf(a_id), codegen.buf(b_id)
                codegen.emit(f"t{j} = {grad}")
                if clip is not None:
                    codegen.emit(f"n{j} = float(np.linalg.norm(t{j}))")
                    codegen.emit(f"if n{j} > {lit(clip)}:")
                    codegen.emit(f"    t{j} = np.multiply(t{j}, "
                                 f"{lit(clip)} / (n{j} + 1e-12))")
                if decay:
                    codegen.emit(f"t{j} = np.add(t{j}, "
                                 f"np.multiply({p_}, {lit(decay)}))")
                codegen.emit(f"np.multiply({m_}, {lit(beta1)}, out={m_})")
                codegen.emit(f"np.multiply(t{j}, {lit(1.0 - beta1)}, out={A})")
                codegen.emit(f"np.add({m_}, {A}, out={m_})")
                codegen.emit(f"np.multiply({v_}, {lit(beta2)}, out={v_})")
                codegen.emit(f"np.multiply(t{j}, t{j}, out={A})")
                codegen.emit(f"np.multiply({A}, {lit(1.0 - beta2)}, out={A})")
                codegen.emit(f"np.add({v_}, {A}, out={v_})")
                codegen.emit(f"np.divide({m_}, bias1, out={A})")
                codegen.emit(f"np.divide({v_}, bias2, out={B})")
                codegen.emit(f"np.sqrt({B}, out={B})")
                codegen.emit(f"np.add({B}, {lit(optimizer.eps)}, out={B})")
                codegen.emit(f"np.multiply({A}, lr, out={A})")
                codegen.emit(f"np.divide({A}, {B}, out={A})")
                codegen.emit(f"np.subtract({p_}, {A}, out={p_})")
                tag_to("update", f"adam[{j}]", None)
                release(a_id, shape, dtype, pos + 1)
                release(b_id, shape, dtype, pos + 1)
                opt_guards.append((j, param, optimizer._m[j], optimizer._v[j]))

        # ---- assembly ----
        frame_lines = [
            f"    f{buf_id} = frame[{buf_id}]"
            for buf_id in sorted(codegen.used_buffers)
        ]
        body = codegen.slot_lines + frame_lines + codegen.lines
        hoisted = sorted(
            {match.group(1) for line in body for match in _NP_CALL.finditer(line)},
            key=len,
            reverse=True,
        )
        header_args = "slots, frame, lr, bias1, bias2"
        for name in hoisted:
            local = "np_" + name.replace(".", "_")
            body = [line.replace(f"np.{name}(", f"{local}(") for line in body]
            header_args += f", {local}=np.{name}"
        self.source = "\n".join(
            [f"def _train_step({header_args}):"] + body + [""]
        )
        self._consts = tuple(codegen.consts)
        namespace = {"np": np, "C": self._consts, "ub": _unbroadcast}
        exec(compile(self.source, _FILENAME, "exec"), namespace)
        self._fn = namespace["_train_step"]

        self._tls = threading.local()
        self._frame_specs = tuple(specs)
        self._tags = tuple(tags)
        # Code lines start after the def line, the slot loads and the
        # frame loads: lineno -> tag index.
        self._tag_offset = 2 + len(codegen.slot_lines) + len(frame_lines)
        self.metric_names = tuple(metric_names)
        self._param_grads = tuple(graded_params)
        self._graded_ids = graded_ids
        self._has_update = has_update
        self._guards = tuple(
            (param, data, param.requires_grad) for param, data in builder.guards
        )
        self._opt_guards = tuple(opt_guards)
        self._opt_hypers = (
            (optimizer.beta1, optimizer.beta2, optimizer.eps,
             optimizer.weight_decay, optimizer.grad_clip,
             len(optimizer.parameters))
            if has_update else None
        )
        #: step/buffer counts, exposed for tests and diagnostics.
        self.num_steps = n
        self.num_backward = len(items)
        self.num_buffers = len(specs)

    def guards_ok(self, optimizer) -> bool:
        """True while the tape may replay for this model + optimizer.

        Checks parameter array identity and requires-grad flags (as the
        scoring tape does) plus — when the update phase is compiled —
        that the optimizer still owns the traced moment buffers with the
        traced hyper-parameters.  ``lr`` and the bias corrections are
        passed per call, so ``lr_backoff`` and step count never
        invalidate a tape.
        """
        for param, data, requires in self._guards:
            if param.data is not data or param.requires_grad != requires:
                return False
        if self._has_update:
            if not isinstance(optimizer, Adam):
                return False
            beta1, beta2, eps, decay, clip, count = self._opt_hypers
            if (optimizer.beta1 != beta1 or optimizer.beta2 != beta2
                    or optimizer.eps != eps or optimizer.weight_decay != decay
                    or optimizer.grad_clip != clip
                    or len(optimizer.parameters) != count):
                return False
            for j, param, m, v in self._opt_guards:
                if (optimizer.parameters[j] is not param
                        or optimizer._m[j] is not m
                        or optimizer._v[j] is not v):
                    return False
        return True

    def _thread_frame(self):
        frame = getattr(self._tls, "frame", None)
        if frame is None:
            frame = self._tls.frame = [
                np.empty(shape, dtype) for shape, dtype in self._frame_specs
            ]
        return frame

    def _advance(self, gen, phase, stop_ok=False):
        """Run the generator one phase, mapping failures back to their op."""
        try:
            return next(gen)
        except StopIteration:
            if stop_ok:
                return None
            raise CompiledStepError(
                f"compiled train step ended early during {phase}", phase=phase
            ) from None
        except CompiledStepError:
            raise
        except Exception as error:
            self._reraise(error, phase)

    def _reraise(self, error, phase):
        lineno = None
        traceback = error.__traceback__
        while traceback is not None:
            if traceback.tb_frame.f_code.co_filename == _FILENAME:
                lineno = traceback.tb_lineno
            traceback = traceback.tb_next
        op = site = None
        if lineno is not None:
            index = lineno - self._tag_offset
            if 0 <= index < len(self._tags):
                tag_phase, op, site = self._tags[index]
                phase = tag_phase or phase
        where = f"op {op!r}" if op else "an untagged step"
        if site:
            where += f" (created at {site})"
        raise CompiledStepError(
            f"compiled train step failed during the {phase} phase at "
            f"{where}: {error}",
            op=op, phase=phase, site=site,
        ) from error

# ----------------------------------------------------------------------
# per-batch handles — one interpreted/tracing/compiled step each
# ----------------------------------------------------------------------
class _LegacyHandle:
    """One train step through an overridden ``model.loss``.

    Instance-level ``loss`` overrides (tests poisoning the objective,
    user-wrapped losses) cannot be traced through the prelude/graph
    split, so they run the original ``model.loss(windows)`` protocol
    untouched.
    """

    compiled = False

    def __init__(self, model, windows, optimizer):
        self._optimizer = optimizer
        loss, metrics = model.loss(windows)
        self._loss = loss
        self.loss_value = loss.item()
        self.metrics = {
            name: value.item() if hasattr(value, "item") else float(value)
            for name, value in metrics.items()
        }

    def backward(self):
        self._optimizer.zero_grad()
        self._loss.backward()

    def apply_update(self):
        self._optimizer.step()


class _InterpretedHandle:
    """One train step on the reference interpreted path."""

    compiled = False

    def __init__(self, model, slots, optimizer):
        self._optimizer = optimizer
        loss, metric_tensors = model._loss_graph(slots)
        self._loss = loss
        self.loss_value = loss.item()
        self.metrics = {
            name: value.item() for name, value in metric_tensors.items()
        }

    def backward(self):
        self._optimizer.zero_grad()
        self._loss.backward()

    def apply_update(self):
        self._optimizer.step()


class _TracingHandle:
    """One interpreted step recorded through the op hook.

    The batch trains on its own interpreted results — compilation
    happens as a side effect once the update lands, so the training
    trajectory never depends on whether the trace succeeds.
    """

    compiled = False

    def __init__(self, owner, key, model, slots, optimizer):
        self._owner = owner
        self._key = key
        self._optimizer = optimizer
        builder = _TrainTapeBuilder(slots, model.parameters())
        self._builder = builder
        with op_hook(builder):
            loss, metric_tensors = model._loss_graph(slots)
        self._loss = loss
        self._metric_tensors = metric_tensors
        self.loss_value = loss.item()
        self.metrics = {
            name: value.item() for name, value in metric_tensors.items()
        }

    def backward(self):
        self._optimizer.zero_grad()
        with op_hook(self._builder):
            self._loss.backward()

    def apply_update(self):
        self._optimizer.step()
        tape = None
        if self._builder.failed is None:
            try:
                tape = TrainTape(self._builder, self._loss,
                                 self._metric_tensors, self._optimizer)
            except TraceUnsupported:
                tape = None
        self._owner._store(self._key, tape)


class _CompiledHandle:
    """One train step replayed through a compiled tape."""

    compiled = True

    def __init__(self, tape, slots, optimizer):
        self._tape = tape
        self._optimizer = optimizer
        if tape._has_update:
            step = optimizer._step + 1
            bias1 = 1.0 - optimizer.beta1 ** step
            bias2 = 1.0 - optimizer.beta2 ** step
        else:
            bias1 = bias2 = 1.0
        self._frame = tape._thread_frame()
        self._gen = tape._fn(slots, self._frame,
                             getattr(optimizer, "lr", 0.0), bias1, bias2)
        out = tape._advance(self._gen, "forward")
        self.loss_value = float(out[0])
        self.metrics = {
            name: float(value)
            for name, value in zip(tape.metric_names, out[1:])
        }

    def backward(self):
        tape = self._tape
        tape._advance(self._gen, "backward")
        frame = self._frame
        for param, buf_id in tape._param_grads:
            param.grad = frame[buf_id]
        for param in self._optimizer.parameters:
            if id(param) not in tape._graded_ids:
                param.grad = None

    def apply_update(self):
        tape = self._tape
        if tape._has_update:
            tape._advance(self._gen, "update", stop_ok=True)
            self._optimizer._step += 1
        else:
            # Unsupported optimizer: compiled forward/backward, with the
            # interpreted update reading the frame-bound gradients.
            self._optimizer.step()


class TrainStep:
    """Dispatches train steps to compiled tapes, specializing per batch.

    One instance lives on each trainer, keyed by
    ``(batch shape, dtype, fused policy)`` — the config and compute
    dtype are fixed per model, so together this matches the scoring
    JIT's specialization.  Unsupported keys are negative-cached; stale
    guards (checkpoint restore, rollback, refit) clear the cache and
    retrace.  ``begin`` runs the model's loss prelude exactly once per
    batch on every path, so the RNG stream is identical whether a batch
    interprets, traces or replays.
    """

    def __init__(self, model, optimizer, enabled=True, cache_size=8):
        self.model = model
        self.optimizer = optimizer
        self.enabled = bool(enabled)
        self.cache_size = int(cache_size)
        self._tapes = {}
        #: diagnostics for the benches: tape-LRU evictions, trace count,
        #: compiled replays, interpreted fallbacks.
        self.evictions = 0
        self.traces = 0
        self.replays = 0
        self.fallbacks = 0

    def begin(self, windows):
        """Run one batch's forward; returns a step handle.

        The handle exposes ``loss_value``/``metrics`` immediately, then
        ``backward()`` and ``apply_update()`` drive the remaining
        phases — on whichever execution path was selected.
        """
        model = self.model
        if "loss" in vars(model):
            # model.loss was replaced on the instance; respect it.
            self.fallbacks += 1
            return _LegacyHandle(model, windows, self.optimizer)
        with default_dtype(model.compute_dtype):
            slots = model._loss_prelude(windows)
            if (not self.enabled or not train_jit_enabled()
                    or _HOOK_STATE.hooks):
                # An active hook means detect_anomaly (or another
                # sanitizer) is watching: run interpreted so per-op
                # attribution is exact.
                self.fallbacks += 1
                return _InterpretedHandle(model, slots, self.optimizer)
            arr = np.asarray(windows)
            key = (arr.shape, str(arr.dtype), fused_enabled())
            tape = self._tapes.get(key)
            if tape is _UNSUPPORTED:
                self.fallbacks += 1
                return _InterpretedHandle(model, slots, self.optimizer)
            if tape is not None:
                if tape.guards_ok(self.optimizer):
                    self.replays += 1
                    return _CompiledHandle(tape, slots, self.optimizer)
                self._tapes.clear()
            return _TracingHandle(self, key, model, slots, self.optimizer)

    def _store(self, key, tape):
        if tape is None:
            self._tapes[key] = _UNSUPPORTED
            self.fallbacks += 1
        else:
            self._tapes[key] = tape
            self.traces += 1
        while len(self._tapes) > self.cache_size:
            self._tapes.pop(next(iter(self._tapes)))
            self.evictions += 1
