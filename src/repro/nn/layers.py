"""Core neural-network layers built on the autograd engine.

Includes everything TFMAE and the 14 baselines require: linear maps, layer
normalisation, dropout, 1-D convolutions (for BeatGAN/TimesNet/DAEMON) and
a GRU cell (for OmniAno/THOC).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Linear",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Conv1d",
    "GRUCell",
    "GRU",
]


class Linear(Module):
    """Affine map ``y = x W + b`` over the trailing dimension."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class LayerNorm(Module):
    """Layer normalisation with learnable scale and shift (Eq. 13)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim), name="weight")
        self.bias = Parameter(np.zeros(dim), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm(dim={self.dim})"


class Dropout(Module):
    """Inverted dropout; deterministic identity in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator | None = None):
        super().__init__()
        self.p = p
        # Documented interactive fallback: every repro code path passes a
        # seeded generator; the default only serves ad-hoc REPL use.
        self.rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[RNG001]

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self.rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: list[str] = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Conv1d(Module):
    """1-D convolution via im2col + matmul.

    Input shape ``(batch, length, channels)``; output
    ``(batch, length_out, out_channels)``.  ``padding='same'`` keeps the
    temporal length when ``stride == 1``, which is what the convolutional
    baselines (BeatGAN, TimesNet, DAEMON) use.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: str | int = "same",
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        if padding == "same":
            if stride != 1:
                raise ValueError("padding='same' requires stride=1")
            self.pad = (kernel_size - 1) // 2, kernel_size - 1 - (kernel_size - 1) // 2
        else:
            self.pad = (int(padding), int(padding))
        self.weight = Parameter(
            init.xavier_uniform((kernel_size * in_channels, out_channels), rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_channels,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        batch, length, channels = x.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {channels}")
        left, right = self.pad
        padded_len = length + left + right
        out_len = (padded_len - self.kernel_size) // self.stride + 1

        # Zero-pad along time by concatenation so gradients flow through.
        parts = []
        if left:
            parts.append(Tensor(np.zeros((batch, left, channels))))
        parts.append(x)
        if right:
            parts.append(Tensor(np.zeros((batch, right, channels))))
        padded = Tensor.concat(parts, axis=1) if len(parts) > 1 else x

        # im2col: gather kernel_size shifted views and concatenate on the
        # channel axis -> (batch, out_len, kernel_size*channels).
        columns = []
        for k in range(self.kernel_size):
            stop = k + self.stride * (out_len - 1) + 1
            columns.append(padded[:, k:stop:self.stride, :])
        stacked = Tensor.concat(columns, axis=2)
        return stacked @ self.weight + self.bias

    def __repr__(self) -> str:
        return (
            f"Conv1d(in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, stride={self.stride})"
        )


class GRUCell(Module):
    """Single gated recurrent unit step.

    Follows the standard formulation: reset gate ``r``, update gate ``z``
    and candidate state ``n``; used by the recurrent baselines.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.xavier_uniform((input_size, 3 * hidden_size), rng), name="w_ih")
        self.w_hh = Parameter(init.xavier_uniform((hidden_size, 3 * hidden_size), rng), name="w_hh")
        self.b_ih = Parameter(init.zeros((3 * hidden_size,)), name="b_ih")
        self.b_hh = Parameter(init.zeros((3 * hidden_size,)), name="b_hh")

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        gates_x = x @ self.w_ih + self.b_ih
        gates_h = h @ self.w_hh + self.b_hh
        H = self.hidden_size
        r = (gates_x[:, :H] + gates_h[:, :H]).sigmoid()
        z = (gates_x[:, H:2 * H] + gates_h[:, H:2 * H]).sigmoid()
        n = (gates_x[:, 2 * H:] + r * gates_h[:, 2 * H:]).tanh()
        return (1.0 - z) * n + z * h


class GRU(Module):
    """Unidirectional GRU over sequences shaped ``(batch, time, features)``.

    Returns the full hidden-state sequence ``(batch, time, hidden)``.  The
    unrolled python loop is slow but adequate at reproduction scale and
    keeps gradients exact.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.hidden_size = hidden_size
        self.cell = GRUCell(input_size, hidden_size, rng)

    def forward(self, x: Tensor, h0: Tensor | None = None) -> Tensor:
        batch, time, _ = x.shape
        h = h0 if h0 is not None else Tensor(np.zeros((batch, self.hidden_size)))
        outputs = []
        for t in range(time):
            h = self.cell(x[:, t, :], h)
            outputs.append(h)
        return Tensor.stack(outputs, axis=1)
