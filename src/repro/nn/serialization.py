"""Model and training-state checkpointing via numpy ``.npz`` archives.

Two layers of durability:

* :func:`save_model` / :func:`load_model` persist a module's weights.
  Writes are **atomic** (temp file in the target directory, then
  ``os.replace``), so a crash mid-write can never corrupt an existing
  checkpoint; loads validate the archive's key set and array shapes
  against the receiving module and raise :class:`CheckpointError` naming
  every missing/unexpected/mismatched entry.
* :func:`save_training_state` / :func:`load_training_state` additionally
  capture optimizer state and a JSON metadata blob (epoch, RNG state,
  probe AUC, config fingerprint) in the same archive, which is what
  crash/resume in :class:`~repro.core.trainer.TFMAETrainer` builds on.

A third, in-memory layer backs the multi-process serving tier
(:mod:`repro.serve.shm`): :func:`state_layout` /
:func:`pack_state_into` / :func:`unpack_state` lay a state dict out in
one flat byte buffer with aligned offsets, so N worker processes can
map a single read-only ``multiprocessing.shared_memory`` copy of the
weights instead of each holding a private one.  The unpacked arrays are
zero-copy views; bind them with ``Module.load_state_dict(state,
copy=False)``.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
import zlib
from pathlib import Path

import numpy as np

from .module import Module
from .optim import Optimizer

#: Everything a damaged ``.npz`` can raise at read time.  ``np.load``
#: surfaces a truncated archive as ``zipfile.BadZipFile`` and a corrupt
#: member as ``zlib.error``/``EOFError`` — neither is an ``OSError``, so
#: they must be caught explicitly or they escape as raw zip internals.
_READ_ERRORS = (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile, zlib.error)

__all__ = [
    "CheckpointError",
    "save_model",
    "load_model",
    "load_metadata",
    "atomic_savez",
    "save_training_state",
    "load_training_state",
    "state_layout",
    "pack_state_into",
    "unpack_state",
]

#: Byte alignment of every array inside a packed state buffer.  64 bytes
#: keeps each parameter cache-line aligned regardless of what precedes it.
_PACK_ALIGN = 64

#: Reserved archive member holding the JSON metadata of a training-state
#: checkpoint (stored as a uint8 byte array; npz members must be arrays).
_META_KEY = "__meta__"
_MODEL_PREFIX = "model."
_OPTIM_PREFIX = "optim."


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, incomplete, or incompatible."""


def _canonical_path(path: str | Path) -> Path:
    """``np.savez`` appends ``.npz`` when absent; mirror that up front so
    the atomic rename targets the final name."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def atomic_savez(path: str | Path, arrays: dict[str, np.ndarray]) -> Path:
    """Write ``arrays`` to ``path`` as ``.npz`` via temp-file + rename.

    The temp file lives in the destination directory so the final
    ``os.replace`` stays within one filesystem and is atomic; a crash at
    any point leaves either the old checkpoint or the new one, never a
    truncated hybrid.
    """
    path = _canonical_path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **arrays)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return path


def save_model(module: Module, path: str | Path) -> Path:
    """Atomically write the module's state dict to ``path``."""
    state = module.state_dict()
    # numpy rejects '/' in npz member names on some versions; keys use '.' already.
    return atomic_savez(path, dict(state))


def _resolve(path: str | Path) -> Path:
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    if not path.exists():
        raise CheckpointError(f"no checkpoint found at {path}")
    return path


def _validate_state(module: Module, state: dict[str, np.ndarray], source: Path) -> None:
    """Check a loaded state dict against the module before mutating it."""
    expected = {name: tuple(param.shape) for name, param in module.named_parameters()}
    missing = sorted(set(expected) - set(state))
    unexpected = sorted(set(state) - set(expected))
    mismatched = [
        f"{name} (checkpoint {tuple(state[name].shape)} vs model {expected[name]})"
        for name in sorted(set(expected) & set(state))
        if tuple(state[name].shape) != expected[name]
    ]
    if missing or unexpected or mismatched:
        problems = []
        if missing:
            problems.append(f"missing keys: {', '.join(missing)}")
        if unexpected:
            problems.append(f"unexpected keys: {', '.join(unexpected)}")
        if mismatched:
            problems.append(f"shape mismatches: {'; '.join(mismatched)}")
        raise CheckpointError(
            f"checkpoint {source} is incompatible with {type(module).__name__}: "
            + " | ".join(problems)
        )


def load_model(module: Module, path: str | Path) -> Module:
    """Load a checkpoint written by :func:`save_model` into ``module``.

    Raises
    ------
    CheckpointError
        When the file is absent or its key set / array shapes do not
        match the module's parameters.
    """
    path = _resolve(path)
    try:
        with np.load(path) as archive:
            state = {name: archive[name] for name in archive.files}
    except _READ_ERRORS as error:
        raise CheckpointError(f"checkpoint {path} is unreadable: {error}") from error
    # Accept both bare model archives and full training-state archives.
    if any(name.startswith(_MODEL_PREFIX) for name in state) and _META_KEY in state:
        state = {
            name[len(_MODEL_PREFIX):]: array
            for name, array in state.items()
            if name.startswith(_MODEL_PREFIX)
        }
    _validate_state(module, state, path)
    module.load_state_dict(state)
    return module


def load_metadata(path: str | Path) -> dict:
    """Read only the JSON metadata record of a training-state archive.

    Cheap relative to a full load (one archive member instead of every
    weight tensor) and usable *before* a model object exists — the serve
    registry reads the stored config this way to rebuild a detector, then
    loads the weights into it.
    """
    path = _resolve(path)
    try:
        with np.load(path) as archive:
            if _META_KEY not in archive.files:
                raise CheckpointError(
                    f"checkpoint {path} has no metadata record; was it written "
                    "by save_model() instead of save_training_state()?"
                )
            payload = bytes(archive[_META_KEY])
    except _READ_ERRORS as error:
        raise CheckpointError(f"checkpoint {path} is unreadable: {error}") from error
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointError(f"checkpoint {path} has corrupt metadata: {error}") from error


def save_training_state(
    path: str | Path,
    model: Module,
    optimizer: Optimizer | None = None,
    metadata: dict | None = None,
    extra_arrays: dict[str, np.ndarray] | None = None,
) -> Path:
    """Atomically persist model + optimizer + JSON metadata in one archive.

    ``metadata`` must be JSON-serialisable (RNG bit-generator states and
    dataclass-as-dict config fingerprints are); ``extra_arrays`` admits
    additional named arrays, e.g. a best-so-far model snapshot.
    """
    arrays: dict[str, np.ndarray] = {
        f"{_MODEL_PREFIX}{name}": array for name, array in model.state_dict().items()
    }
    if optimizer is not None:
        arrays.update(
            {f"{_OPTIM_PREFIX}{name}": array for name, array in optimizer.state_dict().items()}
        )
    if extra_arrays:
        arrays.update(extra_arrays)
    payload = json.dumps(metadata if metadata is not None else {})
    arrays[_META_KEY] = np.frombuffer(payload.encode("utf-8"), dtype=np.uint8)
    return atomic_savez(path, arrays)


def load_training_state(
    path: str | Path,
    model: Module,
    optimizer: Optimizer | None = None,
) -> tuple[dict, dict[str, np.ndarray]]:
    """Restore a :func:`save_training_state` archive.

    Loads weights into ``model`` (validated) and state into ``optimizer``
    when given; returns ``(metadata, extra_arrays)`` with every archive
    member that belongs to neither.
    """
    path = _resolve(path)
    try:
        with np.load(path) as archive:
            members = {name: archive[name] for name in archive.files}
    except _READ_ERRORS as error:
        raise CheckpointError(f"checkpoint {path} is unreadable: {error}") from error
    if _META_KEY not in members:
        raise CheckpointError(
            f"checkpoint {path} has no metadata record; was it written by "
            "save_model() instead of save_training_state()?"
        )
    try:
        metadata = json.loads(bytes(members.pop(_META_KEY)).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointError(f"checkpoint {path} has corrupt metadata: {error}") from error

    model_state = {
        name[len(_MODEL_PREFIX):]: array
        for name, array in members.items()
        if name.startswith(_MODEL_PREFIX)
    }
    _validate_state(model, model_state, path)
    model.load_state_dict(model_state)

    optim_state = {
        name[len(_OPTIM_PREFIX):]: array
        for name, array in members.items()
        if name.startswith(_OPTIM_PREFIX)
    }
    if optimizer is not None:
        try:
            optimizer.load_state_dict(optim_state)
        except (KeyError, ValueError) as error:
            raise CheckpointError(
                f"checkpoint {path} optimizer state is incompatible: {error}"
            ) from error

    extra = {
        name: array
        for name, array in members.items()
        if not name.startswith((_MODEL_PREFIX, _OPTIM_PREFIX))
    }
    return metadata, extra


# ----------------------------------------------------------------------
# flat-buffer state packing (shared-memory weight publishing)
# ----------------------------------------------------------------------
def state_layout(state: dict[str, np.ndarray]) -> tuple[int, list[dict]]:
    """Plan a flat byte layout for a state dict.

    Returns ``(total_bytes, manifest)`` where each manifest entry is a
    JSON-serialisable ``{"key", "offset", "shape", "dtype"}`` record.
    Offsets are 64-byte aligned so every array stays cache-line aligned
    inside the buffer; iteration order follows the state dict, which for
    :meth:`Module.state_dict` is the stable ``named_parameters`` order.
    """
    manifest: list[dict] = []
    offset = 0
    for key, array in state.items():
        array = np.ascontiguousarray(array)
        offset = (offset + _PACK_ALIGN - 1) // _PACK_ALIGN * _PACK_ALIGN
        manifest.append({
            "key": key,
            "offset": offset,
            "shape": list(array.shape),
            "dtype": array.dtype.str,
        })
        offset += array.nbytes
    return offset, manifest


def pack_state_into(buffer, state: dict[str, np.ndarray],
                    manifest: list[dict]) -> None:
    """Copy every array of ``state`` into ``buffer`` at its planned offset.

    ``buffer`` is any writable buffer (a ``SharedMemory.buf`` memoryview,
    a ``bytearray``) at least ``total_bytes`` long.  This is the single
    copy the publisher pays; every attach after it is zero-copy.
    """
    for entry in manifest:
        array = np.ascontiguousarray(state[entry["key"]])
        dtype = np.dtype(entry["dtype"])
        if tuple(array.shape) != tuple(entry["shape"]) or array.dtype != dtype:
            raise CheckpointError(
                f"state entry {entry['key']!r} does not match its layout: "
                f"{array.shape}/{array.dtype} vs {entry['shape']}/{entry['dtype']}"
            )
        view = np.frombuffer(buffer, dtype=dtype, count=array.size,
                             offset=entry["offset"]).reshape(array.shape)
        view[...] = array


def unpack_state(buffer, manifest: list[dict],
                 writeable: bool = False) -> dict[str, np.ndarray]:
    """Rebuild a state dict of **views** into a packed buffer (zero-copy).

    By default the views are read-only — the serving contract for weights
    shared between worker processes, where one writer scribbling would
    corrupt every reader.  Bind them into a module with
    ``load_state_dict(state, copy=False)``.
    """
    state: dict[str, np.ndarray] = {}
    for entry in manifest:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        count = int(np.prod(shape)) if shape else 1
        view = np.frombuffer(buffer, dtype=dtype, count=count,
                             offset=entry["offset"]).reshape(shape)
        if not writeable and view.flags.writeable:
            view.flags.writeable = False
        state[entry["key"]] = view
    return state
