"""Model checkpointing via numpy ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_model", "load_model"]


def save_model(module: Module, path: str | Path) -> None:
    """Write the module's state dict to ``path`` (``.npz`` appended if absent)."""
    path = Path(path)
    state = module.state_dict()
    # numpy rejects '/' in npz member names on some versions; keys use '.' already.
    np.savez(path, **{name: array for name, array in state.items()})


def load_model(module: Module, path: str | Path) -> Module:
    """Load a checkpoint written by :func:`save_model` into ``module``."""
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        module.load_state_dict({name: archive[name] for name in archive.files})
    return module
