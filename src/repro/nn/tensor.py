"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ``repro.nn`` substrate that replaces
PyTorch in this reproduction.  A :class:`Tensor` wraps a ``numpy.ndarray``
and records the operations applied to it; calling :meth:`Tensor.backward`
propagates gradients through the recorded graph in reverse topological
order.

Design notes
------------
* Gradients are plain ``numpy.ndarray`` objects accumulated into
  ``Tensor.grad``; they are never part of the graph (first-order autodiff
  only), which is all the paper's training procedure requires.
* Every binary operation supports numpy broadcasting.  The helper
  :func:`_unbroadcast` folds an output-shaped gradient back onto the input
  shape by summing over broadcast axes.
* ``Tensor.detach`` implements the stop-gradient operator used by TFMAE's
  adversarial contrastive objective (Eq. 15 of the paper), where the
  temporal branch is frozen while minimising and the frequency branch is
  frozen while maximising.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

import numpy as np

from .dtype import resolve_dtype

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "op_hook"]

# Per-thread: the serving worker pool scores under no_grad() concurrently
# with training elsewhere; a process-global flag would race (interleaved
# save/restore can leave gradients disabled for everyone).
_GRAD_STATE = threading.local()

# Per-thread op-observation hooks (see repro.analysis).  A hook object may
# define ``after_forward(out, parents)`` — called right after any op
# builds its result tensor, whether or not the result records gradients —
# and ``after_backward(node)`` — called right after a node's backward
# closure ran during ``Tensor.backward``.  Thread-local so a tracer or
# sanitizer on one thread never observes ops from concurrent serving or
# training threads.
#
# The class-level ``hooks = None`` default makes the no-hook hot path a
# single attribute load (``_HOOK_STATE.hooks``): threads that never
# install a hook fall through to the class attribute instead of paying a
# ``getattr(..., default)`` call per dispatched op.


class _HookState(threading.local):
    hooks: list | None = None


_HOOK_STATE = _HookState()


class op_hook:
    """Context manager installing an op-observation hook on this thread.

    The hook drives the static/runtime analyses in :mod:`repro.analysis`:
    the shape/dtype tracer records every dispatched op's metadata and the
    anomaly sanitizer checks forward outputs and backward gradients for
    NaN/Inf.  Hooks nest (innermost installed last, all active hooks are
    invoked) and are strictly thread-local.
    """

    def __init__(self, hook):
        self.hook = hook

    def __enter__(self):
        hooks = _HOOK_STATE.hooks
        if hooks is None:
            hooks = _HOOK_STATE.hooks = []
        hooks.append(self.hook)
        return self.hook

    def __exit__(self, *exc_info) -> None:
        _HOOK_STATE.hooks.pop()
        if not _HOOK_STATE.hooks:
            _HOOK_STATE.hooks = None


class no_grad:
    """Context manager that disables graph construction.

    Used during inference (anomaly scoring) where gradients are not needed,
    mirroring ``torch.no_grad``.  The flag is thread-local, so concurrent
    inference threads never disturb a training thread.
    """

    def __enter__(self) -> "no_grad":
        self._prev = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc_info) -> None:
        _GRAD_STATE.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations record gradient information."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after broadcasting.

    Summation happens over axes that were added by broadcasting (leading
    axes) and axes whose original extent was 1.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes introduced by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    """Coerce to a float array of ``dtype`` (default: the active compute dtype).

    The default is governed by :mod:`repro.nn.dtype` — float64 unless a
    caller opted into float32 via ``set_default_dtype`` or a
    ``default_dtype`` context (e.g. a model with ``compute_dtype``).
    """
    dtype = resolve_dtype(dtype)
    if isinstance(value, np.ndarray):
        if value.dtype == dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A differentiable multi-dimensional array.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray`` of floats.
    requires_grad:
        Whether this tensor should accumulate gradients when
        :meth:`backward` is called on a downstream scalar.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name",
                 "_topo", "op", "_site", "_meta")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None,
                 dtype=None):
        self.data: np.ndarray = _as_array(data, dtype=dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name
        self._topo: list[Tensor] | None = None
        #: Name of the op that created this tensor (None for leaves);
        #: populated by :meth:`_make` for every non-leaf node.
        self.op: str | None = None
        #: Creation site captured by the anomaly sanitizer (see
        #: repro.analysis.anomaly); None unless detect_anomaly is active.
        self._site = None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    # ------------------------------------------------------------------
    # graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None] | None,
        op: str = "op",
        meta: dict | None = None,
    ) -> "Tensor":
        """Create a result tensor, attaching graph edges when enabled.

        ``requires_grad`` is sampled at *record* time and pinned: if a
        parent was frozen when the operation ran (e.g. inside
        :func:`repro.nn.module.frozen`) it must not receive gradient even
        if it has been unfrozen by the time ``backward()`` executes — and
        vice versa.  The wrapper temporarily restores the record-time
        flags around the op's backward closure, whose accumulations check
        ``requires_grad``.

        ``backward=None`` marks a deliberately non-differentiable op (the
        stable-softmax shift): the result never requires grad, but hooks
        still observe it with its parents, so tracers see the data flow.

        ``meta`` carries the op's non-tensor attributes (axis, index
        arrays, shapes, …) for op hooks; it is attached to the result
        only while a hook is installed, so the no-hook path pays nothing
        beyond building the (small) literal at the call site.
        """
        requires = (
            backward is not None
            and is_grad_enabled()
            and any(p.requires_grad for p in parents)
        )
        out = Tensor(data, requires_grad=requires)
        out.op = op
        if requires:
            parents = tuple(parents)
            snapshot = tuple(p.requires_grad for p in parents)

            def gated_backward(grad: np.ndarray) -> None:
                current = tuple(p.requires_grad for p in parents)
                for parent, recorded in zip(parents, snapshot):
                    parent.requires_grad = recorded
                try:
                    backward(grad)
                finally:
                    for parent, flag in zip(parents, current):
                        parent.requires_grad = flag

            out._parents = parents
            out._backward = gated_backward
        hooks = _HOOK_STATE.hooks
        if hooks:
            # Hooks observe every dispatched op, including ones that do
            # not record gradients (no_grad scoring, constant subgraphs):
            # the dtype tracer must see the full forward.
            out._meta = meta
            for hook in hooks:
                after_forward = getattr(hook, "after_forward", None)
                if after_forward is not None:
                    after_forward(out, tuple(parents))
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            # Private, owned buffer: later accumulations add into it
            # in place instead of allocating a fresh sum array each time.
            # order="C" matters for bitwise reproducibility: np.array's
            # default order="K" preserves the layout of strided views
            # (e.g. transpose backward), and downstream reductions sum in
            # a layout-dependent pairwise order.  The compiled train step
            # (repro.nn.jit_train) holds every gradient in a C-contiguous
            # pool buffer, so the interpreted path must match.
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True, order="C")
        else:
            np.add(self.grad, grad, out=self.grad)

    def detach(self) -> "Tensor":
        """Return a view of the data that is cut from the autograd graph.

        This is the stop-gradient primitive: the returned tensor shares the
        numerical values but contributes no gradient to upstream tensors.
        """
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ones, which is only sensible for scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar output")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, dtype=self.data.dtype)

        # Topological order via iterative DFS (avoids recursion limits on
        # deep graphs such as unrolled RNNs).  The order is cached on this
        # tensor so a second backward over the same retained graph (e.g.
        # gradient accumulation or per-term diagnostics) skips the walk.
        topo = self._topo
        if topo is None:
            topo = []
            visited: set[int] = set()
            stack: list[tuple[Tensor, bool]] = [(self, False)]
            while stack:
                node, processed = stack.pop()
                if processed:
                    topo.append(node)
                    continue
                if id(node) in visited:
                    continue
                visited.add(id(node))
                stack.append((node, True))
                for parent in node._parents:
                    if id(parent) not in visited and parent.requires_grad:
                        stack.append((parent, False))
            self._topo = topo

        self._accumulate(grad)
        hooks = _HOOK_STATE.hooks
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                if hooks:
                    for hook in hooks:
                        after_backward = getattr(hook, "after_backward", None)
                        if after_backward is not None:
                            after_backward(node)

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward, op="add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward, op="neg")

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward, op="mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.shape)
            )

        return Tensor._make(out_data, (self, other), backward, op="div")

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log composition")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward, op="pow",
                            meta={"exponent": exponent})

    # ------------------------------------------------------------------
    # elementwise transcendental functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward, op="exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward, op="log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward, op="sqrt")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward, op="tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward, op="sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward, op="relu")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(out_data, (self,), backward, op="abs")

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward, op="clip",
                            meta={"low": low, "high": high})

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward, op="sum",
                            meta={"axis": axis, "keepdims": keepdims})

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Biased (population) variance, matching layer-norm conventions."""
        mu = self.mean(axis=axis, keepdims=True)
        centred = self - mu
        return (centred * centred).mean(axis=axis, keepdims=keepdims)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            full = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                full = np.expand_dims(out_data, axis=axis)
            mask = self.data == full
            # Split gradient evenly among ties, matching numpy semantics
            # closely enough for optimisation purposes.
            count = mask.sum(axis=axis if axis is not None else None, keepdims=True)
            self._accumulate(np.where(mask, g / count, 0.0))

        return Tensor._make(out_data, (self,), backward, op="max",
                            meta={"axis": axis, "keepdims": keepdims})

    # ------------------------------------------------------------------
    # linear algebra and shape manipulation
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product supporting batched operands of ``ndim >= 2``.

        The 1-D dot product is also supported; mixed 1-D/N-D products are
        not, since nothing in the library needs them.
        """
        other = self._coerce(other)
        a, b = self.data, other.data
        if (a.ndim == 1) != (b.ndim == 1):
            raise NotImplementedError("mixed 1-D / N-D matmul is not supported")
        out_data = a @ b

        def backward(grad: np.ndarray) -> None:
            if a.ndim == 1:  # dot product
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(_unbroadcast(grad_a, self.shape))
            other._accumulate(_unbroadcast(grad_b, other.shape))

        return Tensor._make(out_data, (self, other), backward, op="matmul")

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward, op="transpose",
                            meta={"axes": axes})

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward, op="reshape",
                            meta={"shape": shape})

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward, op="getitem",
                            meta={"index": index})

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

        return Tensor._make(out_data, tuple(tensors), backward, op="concat",
                            meta={"axis": axis})

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            parts = np.split(grad, len(tensors), axis=axis)
            for tensor, part in zip(tensors, parts):
                tensor._accumulate(np.squeeze(part, axis=axis))

        return Tensor._make(out_data, tuple(tensors), backward, op="stack",
                            meta={"axis": axis})

    @staticmethod
    def scatter(src: "Tensor", index, shape: tuple[int, ...]) -> "Tensor":
        """Place ``src`` into a zero tensor of ``shape`` at ``index``.

        ``index`` is any numpy fancy index (e.g. a tuple of integer
        arrays); the backward pass gathers the gradient at the same
        positions.  Used to scatter encoder outputs back to their original
        time positions in the temporal masked autoencoder.
        """
        src = src if isinstance(src, Tensor) else Tensor(src)
        out_data = np.zeros(shape, dtype=src.data.dtype)
        np.add.at(out_data, index, src.data)

        def backward(grad: np.ndarray) -> None:
            src._accumulate(grad[index])

        return Tensor._make(out_data, (src,), backward, op="scatter",
                            meta={"index": index, "shape": shape})

    @staticmethod
    def where(condition: np.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        a = a if isinstance(a, Tensor) else Tensor(a)
        b = b if isinstance(b, Tensor) else Tensor(b)
        cond = np.asarray(condition, dtype=bool)
        out_data = np.where(cond, a.data, b.data)

        def backward(grad: np.ndarray) -> None:
            a._accumulate(_unbroadcast(np.where(cond, grad, 0.0), a.shape))
            b._accumulate(_unbroadcast(np.where(cond, 0.0, grad), b.shape))

        return Tensor._make(out_data, (a, b), backward, op="where",
                            meta={"condition": cond})

    # ------------------------------------------------------------------
    # composite helpers frequently used by the models
    # ------------------------------------------------------------------
    def _max_stat(self, axis: int) -> "Tensor":
        """Stable-softmax shift: the max as a *non-differentiable* op.

        ``softmax(x - c) == softmax(x)`` for any constant ``c``, so the
        shift is deliberately constant w.r.t. differentiation — the
        composite's gradient is exact without flowing through the max.
        Routed through :meth:`_make` with ``backward=None`` (instead of
        wrapping ``self.data`` in a fresh leaf) so op hooks — the jit
        tape builder in particular — see where the value comes from.
        """
        return Tensor._make(
            self.data.max(axis=axis, keepdims=True), (self,), None,
            op="max_stat", meta={"axis": axis, "keepdims": True},
        )

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self._max_stat(axis)
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self._max_stat(axis)
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def as_tensor(value, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` without copying existing tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
