"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so that every
model in the reproduction is seedable end-to-end — benchmark tables must be
regenerable deterministically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "zeros", "normal"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = gain * sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal: N(0, gain^2 * 2/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform, appropriate before ReLU nonlinearities."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Small-variance normal initialisation (used for mask tokens)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initialisation requires at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive if len(shape) > 2 else shape[0]
    fan_out = shape[0] * receptive if len(shape) > 2 else shape[1]
    return fan_in, fan_out
