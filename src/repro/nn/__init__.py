"""``repro.nn`` — a from-scratch numpy deep-learning substrate.

This subpackage replaces PyTorch for the TFMAE reproduction: a reverse-mode
autograd engine (:mod:`~repro.nn.tensor`), module system, Transformer
layers, recurrent/convolutional layers for the baselines, and the Adam
optimiser the paper trains with.
"""

from . import functional, fused, jit, jit_train
from .attention import MultiHeadSelfAttention
from .dtype import default_dtype, get_default_dtype, set_default_dtype
from .gradcheck import GradcheckError, gradcheck
from .jit import jit_enabled, set_jit, use_jit
from .jit_train import set_train_jit, train_jit_enabled, use_train_jit
from .layers import (
    GELU,
    GRU,
    Conv1d,
    Dropout,
    GRUCell,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer
from .serialization import (
    CheckpointError,
    load_metadata,
    load_model,
    load_training_state,
    save_model,
    save_training_state,
)
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad
from .transformer import TransformerLayer, TransformerStack, sinusoidal_positional_encoding

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "functional",
    "fused",
    "jit",
    "jit_enabled",
    "set_jit",
    "use_jit",
    "jit_train",
    "train_jit_enabled",
    "set_train_jit",
    "use_train_jit",
    "gradcheck",
    "GradcheckError",
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "Linear",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Conv1d",
    "GRUCell",
    "GRU",
    "MultiHeadSelfAttention",
    "TransformerLayer",
    "TransformerStack",
    "sinusoidal_positional_encoding",
    "Optimizer",
    "SGD",
    "Adam",
    "save_model",
    "load_model",
    "save_training_state",
    "load_training_state",
    "load_metadata",
    "CheckpointError",
]
