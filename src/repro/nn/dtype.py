"""Compute-dtype policy for the numpy substrate.

The reference numerics of the reproduction are float64 — every
equivalence test, gradcheck and paper-table number is produced at full
precision.  Production training and serving do not need that: float32
halves the memory traffic of every kernel and roughly doubles BLAS
throughput on the attention matmuls, while anomaly *ranking* (the only
thing thresholds consume) is insensitive at these scales.

This module provides the switch:

* :func:`set_default_dtype` / :func:`get_default_dtype` — the process
  default used whenever a :class:`~repro.nn.tensor.Tensor` is built from
  non-array data (or from an array of a different float dtype).
* :class:`default_dtype` — a context manager that overrides the default
  on the *current thread only*.  Models with a per-model
  ``compute_dtype`` (:class:`repro.core.TFMAEConfig`) wrap their forward
  passes in it, so a float32 model serving traffic never disturbs a
  float64 equivalence test running on another thread.

The default stays float64, so nothing changes unless a caller opts in.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["get_default_dtype", "set_default_dtype", "default_dtype", "resolve_dtype"]

_SUPPORTED = (np.dtype(np.float32), np.dtype(np.float64))

_global_default = np.dtype(np.float64)
_local = threading.local()


def _validate(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in _SUPPORTED:
        raise ValueError(
            f"compute dtype must be float32 or float64, got {resolved}"
        )
    return resolved


def get_default_dtype() -> np.dtype:
    """Current default floating dtype (thread-local override wins)."""
    override = getattr(_local, "stack", None)
    if override:
        return override[-1]
    return _global_default


def set_default_dtype(dtype) -> None:
    """Set the process-wide default floating dtype (float32 or float64)."""
    global _global_default
    _global_default = _validate(dtype)


def resolve_dtype(dtype=None) -> np.dtype:
    """Resolve an explicit dtype, falling back to the active default."""
    if dtype is None:
        return get_default_dtype()
    return _validate(dtype)


class default_dtype:
    """Thread-local dtype override, usable as a context manager.

    >>> with default_dtype(np.float32):
    ...     x = Tensor([1.0, 2.0])   # float32
    """

    def __init__(self, dtype):
        self.dtype = _validate(dtype)

    def __enter__(self) -> "default_dtype":
        stack = getattr(_local, "stack", None)
        if stack is None:
            stack = _local.stack = []
        stack.append(self.dtype)
        return self

    def __exit__(self, *exc_info) -> None:
        _local.stack.pop()
