"""Multi-head dot-product self-attention (paper Eq. 12).

The paper's autoencoders use vanilla Transformer attention: queries, keys
and values are linear projections of the input, attention weights are a
softmax over scaled dot products, and heads are concatenated and projected
back to the model dimension.
"""

from __future__ import annotations

import numpy as np

from . import fused
from .layers import Dropout, Linear
from .module import Module
from .tensor import Tensor

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Self-attention over sequences shaped ``(batch, time, dim)``.

    Parameters
    ----------
    dim:
        Model (embedding) dimension ``D``.
    num_heads:
        Number of attention heads; must divide ``dim``.
    dropout:
        Dropout probability applied to attention weights during training.
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 dropout: float = 0.0, keep_attention_graph: bool = False):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim ({dim}) must be divisible by num_heads ({num_heads})")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)
        self.attn_dropout = Dropout(dropout, rng)
        #: when True, :attr:`last_attention_tensor` keeps the weights
        #: attached to the autograd graph (needed by the Anomaly
        #: Transformer's association-discrepancy loss).
        self.keep_attention_graph = keep_attention_graph
        self._last_attention: np.ndarray | None = None
        self._last_attention_tensor: Tensor | None = None

    def forward(self, x: Tensor) -> Tensor:
        batch, time, dim = x.shape
        q = self._split_heads(self.q_proj(x), batch, time)
        k = self._split_heads(self.k_proj(x), batch, time)
        v = self._split_heads(self.v_proj(x), batch, time)

        if fused.fused_enabled() and not self.keep_attention_graph:
            # Fast path: QKᵀ → softmax → (dropout) → ·V in one graph node
            # with a hand-written backward (see repro.nn.fused).
            context, weights_data = fused.scaled_dot_product_attention(
                q, k, v,
                scale=self.scale,
                dropout_p=self.attn_dropout.p,
                training=self.attn_dropout.training,
                rng=self.attn_dropout.rng,
            )
            self._last_attention = weights_data  # exposed for analysis/tests
            self._last_attention_tensor = None
        else:
            # Reference composition; required when the attention weights
            # must stay on the graph (Anomaly Transformer's association
            # discrepancy differentiates through them).
            scores = (q @ k.swapaxes(-1, -2)) * self.scale
            weights = scores.softmax(axis=-1)
            self._last_attention = weights.data  # exposed for analysis/tests
            self._last_attention_tensor = weights if self.keep_attention_graph else None
            weights = self.attn_dropout(weights)
            context = weights @ v  # (batch, heads, time, head_dim)

        merged = context.swapaxes(1, 2).reshape(batch, time, dim)
        return self.out_proj(merged)

    def _split_heads(self, x: Tensor, batch: int, time: int) -> Tensor:
        return x.reshape(batch, time, self.num_heads, self.head_dim).swapaxes(1, 2)

    @property
    def last_attention(self) -> np.ndarray | None:
        """Attention weights of the most recent forward pass.

        Shape ``(batch, heads, time, time)``; used by the AnoTran baseline
        (association discrepancy) and by diagnostics.
        """
        return self._last_attention

    @property
    def last_attention_tensor(self) -> Tensor | None:
        """Graph-connected attention weights of the latest forward pass.

        Only populated when ``keep_attention_graph`` is set; shape
        ``(batch, heads, time, time)``.
        """
        return self._last_attention_tensor
