"""Finite-difference gradient checking for the autograd engine.

:func:`gradcheck` is the correctness harness that lets the fused kernels
(:mod:`repro.nn.fused`) ship hand-written backwards safely: every fused
op — and every primitive of :mod:`repro.nn.tensor` — is validated against
central finite differences in float64.

The check projects a non-scalar output onto a fixed random direction so a
single scalar objective exercises the full Jacobian:

>>> from repro.nn import Tensor, gradcheck
>>> gradcheck(lambda t: (t * t).sum(), Tensor([1.0, -2.0], requires_grad=True))
True
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .tensor import Tensor

__all__ = ["gradcheck", "GradcheckError"]


class GradcheckError(AssertionError):
    """Raised when an analytic gradient disagrees with finite differences."""


def _numerical_gradient(
    objective: Callable[[list[np.ndarray]], float],
    arrays: list[np.ndarray],
    index: int,
    eps: float,
) -> np.ndarray:
    """Central-difference gradient of ``objective`` w.r.t. ``arrays[index]``."""
    base = arrays[index]
    grad = np.zeros_like(base)
    for position in np.ndindex(*base.shape):
        perturbed = [a.copy() for a in arrays]
        perturbed[index][position] = base[position] + eps
        plus = objective(perturbed)
        perturbed[index][position] = base[position] - eps
        minus = objective(perturbed)
        grad[position] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    *inputs: Tensor,
    eps: float = 1e-6,
    atol: float = 1e-7,
    rtol: float = 1e-5,
    seed: int = 0,
    allow_float32: bool = False,
) -> bool:
    """Verify ``fn``'s analytic gradients against central finite differences.

    Parameters
    ----------
    fn:
        Maps the input tensors to an output :class:`Tensor` (any shape —
        non-scalar outputs are projected onto a fixed random direction).
    inputs:
        Tensors, in ``fn``'s argument order.  Gradients are checked for
        every input with ``requires_grad=True``; float64 data is required
        (finite differences are meaningless at float32 resolution).
    eps, atol, rtol:
        Perturbation size and comparison tolerances.
    seed:
        Seed for the fixed projection direction.
    allow_float32:
        Accept float32 inputs.  Central differences at float32 resolution
        need a much larger ``eps`` (around 1e-2) and loosened tolerances;
        used to sweep the fused kernels under the ``compute_dtype="float32"``
        policy, where the analytic backward itself runs in float32.

    Returns
    -------
    bool
        ``True`` on success.

    Raises
    ------
    GradcheckError
        On any analytic/numerical disagreement, naming the input index
        and the worst absolute error.
    """
    if not inputs:
        raise ValueError("gradcheck needs at least one input tensor")
    inputs = tuple(t if isinstance(t, Tensor) else Tensor(t, requires_grad=True)
                   for t in inputs)
    accepted = (np.float64, np.float32) if allow_float32 else (np.float64,)
    for position, tensor in enumerate(inputs):
        if tensor.data.dtype not in accepted:
            raise ValueError(
                f"gradcheck requires float64 inputs; input {position} is "
                f"{tensor.data.dtype}"
            )

    rng = np.random.default_rng(seed)
    probe = fn(*inputs)
    if not isinstance(probe, Tensor):
        raise TypeError("fn must return a Tensor")
    direction = rng.normal(size=probe.shape)

    if not any(t.requires_grad for t in inputs):
        raise ValueError("gradcheck needs at least one input with requires_grad=True")

    # Analytic gradients via one backward pass on fresh leaves — the copy
    # must NOT share the caller's graph or buffers, so detaching is the point.
    fresh = [Tensor(t.data.copy(), requires_grad=t.requires_grad) for t in inputs]  # repro: noqa[DET001]
    output = fn(*fresh)
    output.backward(direction.reshape(output.shape))

    def objective(arrays: list[np.ndarray]) -> float:
        out = fn(*[Tensor(a) for a in arrays])
        return float((out.data * direction).sum())

    arrays = [t.data.astype(np.float64) for t in inputs]
    for position, tensor in enumerate(fresh):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numerical = _numerical_gradient(objective, arrays, position, eps)
        error = np.abs(analytic - numerical)
        bound = atol + rtol * np.abs(numerical)
        if not np.all(error <= bound):
            worst = float(error.max())
            raise GradcheckError(
                f"gradient mismatch for input {position}: max abs error "
                f"{worst:.3e} exceeds atol={atol} + rtol*|num| (eps={eps})"
            )
    return True
