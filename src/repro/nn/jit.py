"""Trace-compiled inference: a tape-replay JIT for ``repro.nn`` scoring.

The interpreted autograd graph pays, per op, a wrapper allocation, Python
dispatch through ``Tensor._make``, and graph bookkeeping that inference
never uses.  This module removes all of it from the scoring hot path:

1. **Trace** — one *real* interpreted forward runs under the thread-local
   :class:`repro.nn.tensor.op_hook`.  The :class:`_TapeBuilder` hook
   observes every dispatched op and records a flat step list: the op
   name, resolved argument references, and the op's non-tensor metadata.
   The traced call's own result is returned to the caller, so tracing
   costs one interpreted forward and nothing more.
2. **Compile** — the step list becomes a :class:`Tape`: the whole tape
   is code-generated into **one** Python function (``exec``-compiled
   once at build time) whose body is the raw numpy kernel sequence —
   step outputs are locals, input slots and frame buffers are hoisted
   once per call, baked constants live in a captured pool.  A small
   liveness planner reuses output buffers across steps (a buffer freed
   at step ``s`` is reusable from ``s + 1``, so a kernel never aliases
   its own inputs); pure views (``transpose``, sharing ``reshape``/
   ``getitem``) are recreated per call instead of buffered.
3. **Replay** — subsequent calls with the same specialization key call
   the generated function over a per-thread buffer frame: zero tensor
   wrapping, zero graph construction, zero per-step dispatch, zero
   per-op allocation for the buffered steps.

Argument references are resolved **by identity** at trace time:

* an array produced by an earlier traced op → that step's output;
* an array registered in the caller's input-slot dict → the slot name,
  looked up fresh on every replay (this is how data-dependent values —
  mask indices, positional encodings, the windows themselves — stay
  dynamic);
* a parameter's array → baked into the constant pool and protected
  by a **guard**: before replay, :meth:`Tape.guards_ok` checks
  ``param.data is traced_array`` for every referenced parameter, so
  rebinding parameters (``load_state_dict``, publish/refit,
  ``to_dtype``) invalidates the tape, while in-place optimizer updates
  keep the identity and are picked up automatically;
* any other array of ``size <= 1`` → baked as a constant;
* anything else → :class:`TraceUnsupported`, which soft-fails the trace
  (the interpreted result is still returned; the caller caches the key
  as unsupported and keeps using the interpreted path).

Every replay kernel mirrors the *exact* numpy operation sequence of the
interpreted op (including the fused kernels of :mod:`repro.nn.fused`),
so replay output is bitwise-identical to the interpreted graph in both
float64 and float32.

Known replay differences (documented, not observable through scores):
op hooks do not see replayed kernels, and attention's
``last_attention`` diagnostic is not refreshed during replay.

The :func:`use_jit` / :func:`set_jit` / :func:`jit_enabled` switch trio
mirrors :mod:`repro.nn.fused` exactly: a process-wide default plus a
nestable thread-local override.

This module never constructs tensors — it only observes them through
the hook.  Lint rule JIT001 (:mod:`repro.analysis`) enforces this.
"""

from __future__ import annotations

import re
import threading

import numpy as np

from .fused import _GELU_COEFF, _SQRT_2_OVER_PI
from .tensor import op_hook

__all__ = [
    "jit_enabled",
    "set_jit",
    "use_jit",
    "trace",
    "Tape",
    "TraceUnsupported",
]

#: ``np.<fn>(`` / ``np.<ufunc>.at(`` / ``np.<ufunc>.reduce(`` call tokens
#: in generated replay source, for hoisting into compile-time-bound
#: default arguments.
_NP_CALL = re.compile(r"np\.(\w+(?:\.(?:at|reduce))?)\(")

_global_enabled = True
_local = threading.local()


def jit_enabled() -> bool:
    """Whether tape-replay scoring is active on this thread (default True).

    A thread-local :class:`use_jit` override wins over the
    :func:`set_jit` process default.
    """
    stack = getattr(_local, "stack", None)
    if stack:
        return stack[-1]
    return _global_enabled


def set_jit(enabled: bool) -> None:
    """Set the process-wide default for tape-replay scoring.

    Threads currently inside a :class:`use_jit` block keep their own
    override; everyone else observes the new default immediately.
    """
    global _global_enabled
    _global_enabled = bool(enabled)


class use_jit:
    """Thread-local tape-replay override, usable as a context manager.

    Scoped to the current thread only (mirroring
    :class:`repro.nn.fused.use_fused`), so a test or benchmark pinning
    the interpreted path never disturbs concurrent serving threads.
    """

    def __init__(self, enabled: bool):
        self.enabled = bool(enabled)

    def __enter__(self) -> "use_jit":
        stack = getattr(_local, "stack", None)
        if stack is None:
            stack = _local.stack = []
        stack.append(self.enabled)
        return self

    def __exit__(self, *exc_info) -> None:
        _local.stack.pop()


class TraceUnsupported(RuntimeError):
    """An op (or argument) the tape builder cannot replay."""


# Argument-reference kinds: an earlier step's output, a named input
# slot (resolved fresh each replay), or a baked constant.
_STEP, _SLOT, _CONST = 0, 1, 2


class _Step:
    """One observed op: its output array (trace-time), args, and meta."""

    __slots__ = ("op", "out_data", "parent_datas", "refs", "meta")

    def __init__(self, op, out_data, parent_datas, refs, meta):
        self.op = op
        self.out_data = out_data
        self.parent_datas = parent_datas
        self.refs = refs
        self.meta = meta


class _TapeBuilder:
    """Op hook that records one interpreted forward as a flat step list.

    Failure is *soft*: on the first unsupported op the builder sets
    :attr:`failed` and stops recording, letting the traced forward run
    to completion so its interpreted result is still valid (and any
    RNG consumed by the caller's prelude is consumed exactly once).
    """

    def __init__(self, slots: dict, params) -> None:
        self._slot_ids = {
            id(value): name
            for name, value in slots.items()
            if isinstance(value, np.ndarray)
        }
        self._param_ids = {id(p.data): p for p in params}
        self.steps: list[_Step] = []
        self.tensor_step: dict[int, int] = {}
        # Every observed output tensor is kept alive for the duration of
        # the trace: under no_grad the graph holds no parent references,
        # and a collected tensor's id could be reused mid-trace.
        self.keepalive: list = []
        self.guards: list = []
        self._guard_ids: set[int] = set()
        self.failed: str | None = None

    # -- hook interface -------------------------------------------------
    def after_forward(self, out, parents) -> None:
        if self.failed is not None:
            return
        op = out.op
        try:
            if op not in _COMPILERS:
                raise TraceUnsupported(f"op {op!r} has no replay kernel")
            refs = tuple(self._resolve_parent(p) for p in parents)
            meta = self._resolve_meta(op, getattr(out, "_meta", None))
        except TraceUnsupported as error:
            self.failed = str(error)
            return
        index = len(self.steps)
        self.steps.append(
            _Step(op, out.data, tuple(p.data for p in parents), refs, meta)
        )
        self.tensor_step[id(out)] = index
        self.keepalive.append(out)

    # -- reference resolution -------------------------------------------
    def _resolve_parent(self, parent):
        index = self.tensor_step.get(id(parent))
        if index is not None:
            return (_STEP, index)
        data = parent.data
        name = self._slot_ids.get(id(data))
        if name is not None:
            return (_SLOT, name)
        param = self._param_ids.get(id(data))
        if param is not None:
            if id(param) not in self._guard_ids:
                self._guard_ids.add(id(param))
                self.guards.append((param, data))
            return (_CONST, data)
        if data.size <= 1:
            # Scalar leaves (coerced Python numbers) are immutable in
            # practice; bake a private copy to be safe.
            return (_CONST, data.copy())
        raise TraceUnsupported(
            f"leaf array of shape {data.shape} is neither a registered "
            "input slot nor a parameter"
        )

    def _resolve_obj(self, obj):
        if isinstance(obj, np.ndarray):
            name = self._slot_ids.get(id(obj))
            if name is not None:
                return (_SLOT, name)
            if obj.size <= 1:
                return (_CONST, obj.copy())
            raise TraceUnsupported(
                f"meta array of shape {obj.shape} is not a registered input slot"
            )
        return (_CONST, obj)

    def _resolve_index(self, index):
        if isinstance(index, tuple):
            return ("tuple", tuple(self._resolve_obj(e) for e in index))
        return ("one", self._resolve_obj(index))

    def _resolve_meta(self, op, meta):
        if op in ("getitem", "scatter"):
            meta = dict(meta)
            meta["index"] = self._resolve_index(meta["index"])
        elif op == "where":
            meta = dict(meta)
            meta["condition"] = self._resolve_obj(meta["condition"])
        elif op in ("fused_dropout_residual", "fused_attention"):
            if meta.get("mask") is not None:
                raise TraceUnsupported(f"{op} with an active dropout mask")
        return meta


def trace(fn, slots: dict, params):
    """Run ``fn()`` once under the tape builder.

    Returns ``(out, tape)`` where ``out`` is the traced call's own
    result tensor (always valid — use it for this call's answer) and
    ``tape`` is a compiled :class:`Tape`, or ``None`` when the forward
    hit a trace-unsupported op (negative-cache the key and stay on the
    interpreted path).
    """
    builder = _TapeBuilder(slots, params)
    with op_hook(builder):
        out = fn()
    if builder.failed is not None or id(out) not in builder.tensor_step:
        return out, None
    try:
        tape = Tape(builder, id(out))
    except TraceUnsupported:
        return out, None
    return out, tape


# ----------------------------------------------------------------------
# step classification and buffer planning
# ----------------------------------------------------------------------
def _classify(step: _Step) -> str:
    """``view`` (recreate per call), ``alloc`` (fresh array per call),
    or ``buffer`` (write into a planned, reusable frame buffer)."""
    op = step.op
    if op == "transpose":
        return "view"
    if op in ("reshape", "getitem"):
        parent = step.parent_datas[0]
        if step.out_data.size and np.shares_memory(step.out_data, parent):
            return "view"
        return "alloc"
    if op in ("pow", "where"):
        # pow rides ndarray.__pow__'s exponent fast paths; where has no
        # out= form — both allocate fresh, exactly like the interpreter.
        return "alloc"
    if op == "matmul" and step.parent_datas[0].ndim == 1:
        return "alloc"
    return "buffer"


def _reduced_shape(shape: tuple, axis: int) -> tuple:
    """Shape of a ``keepdims=True`` reduction along ``axis``."""
    reduced = list(shape)
    reduced[axis] = 1
    return tuple(reduced)


def _scratch_specs(step: _Step):
    """Extra temporaries a fused kernel needs beyond its out buffer.

    Besides the full-size intermediates, each softmax-family kernel gets
    one reduced-shape buffer so its ``keepdims`` reductions (max/sum/mu/
    var) run with ``out=`` instead of allocating every replay.
    """
    op = step.op
    dtype = step.out_data.dtype
    if op == "fused_softmax":
        return ((_reduced_shape(step.out_data.shape, step.meta["axis"]), dtype),)
    if op == "fused_log_softmax":
        return (
            (step.out_data.shape, dtype),
            (_reduced_shape(step.out_data.shape, step.meta["axis"]), dtype),
        )
    if op == "fused_gelu":
        return ((step.out_data.shape, dtype),)
    if op == "fused_layer_norm":
        parent = step.parent_datas[0]
        return (
            (parent.shape, parent.dtype),
            (parent.shape[:-1] + (1,), parent.dtype),
        )
    if op == "fused_attention":
        q, k = step.parent_datas[0], step.parent_datas[1]
        return (
            (q.shape[:-1] + (k.shape[-2],), dtype),
            (q.shape[:-1] + (1,), dtype),
        )
    return ()


class _Codegen:
    """Accumulates the generated replay source and its constant pool.

    The whole tape compiles to **one** generated Python function: every
    step's output is a local variable (``e<i>``), input slots and frame
    buffers are hoisted to locals once per call, and baked constants
    (parameter arrays, index tuples) live in the ``C`` pool captured in
    the function's globals.  This removes all per-step dispatch — no
    closure calls, no argument getters, no env list — leaving only the
    raw numpy kernel sequence.
    """

    def __init__(self):
        self.lines: list[str] = []
        self.consts: list = []
        self.slot_vars: dict[str, str] = {}
        self.slot_lines: list[str] = []
        self.used_buffers: set[int] = set()

    def const(self, obj) -> str:
        self.consts.append(obj)
        return f"C[{len(self.consts) - 1}]"

    def lit(self, obj) -> str:
        """Exact source literal for simple metadata; else a pool constant.

        ``repr`` of ``None``/``bool``/``int``/``float`` and int tuples
        round-trips exactly (floats included, per the Python language
        reference), so axes, shapes, eps and scale inline into the
        generated source; anything richer rides the constant pool.
        """
        if obj is None or isinstance(obj, (bool, int, float)):
            return repr(obj)
        if isinstance(obj, tuple) and all(type(x) is int for x in obj):
            return repr(obj)
        return self.const(obj)

    def slot(self, name: str) -> str:
        var = self.slot_vars.get(name)
        if var is None:
            var = self.slot_vars[name] = f"s{len(self.slot_vars)}"
            self.slot_lines.append(f"    {var} = slots[{name!r}]")
        return var

    def ref(self, ref) -> str:
        kind, payload = ref
        if kind == _STEP:
            return f"e{payload}"
        if kind == _SLOT:
            return self.slot(payload)
        return self.const(payload)

    def obj(self, ref) -> str:
        """Expression for a metadata object ref (slot or constant)."""
        kind, payload = ref
        if kind == _SLOT:
            return self.slot(payload)
        return self.const(payload)

    def index(self, spec) -> str:
        tag, payload = spec
        if tag == "one":
            return self.obj(payload)
        if all(kind == _CONST for kind, _ in payload):
            return self.const(tuple(obj for _, obj in payload))
        parts = ", ".join(self.obj(element) for element in payload)
        return f"({parts},)"

    def buf(self, buf_id: int) -> str:
        self.used_buffers.add(buf_id)
        return f"f{buf_id}"

    def emit(self, line: str) -> None:
        self.lines.append("    " + line)


class Tape:
    """A compiled scoring tape: one generated function over planned buffers.

    Buffers live in a **per-thread frame** (created lazily on first
    replay on each thread), so concurrent serving workers replaying the
    same tape never collide, while repeated calls on one thread reuse
    the same memory with zero allocation for buffered steps.
    """

    def __init__(self, builder: _TapeBuilder, out_id: int):
        steps = builder.steps
        self._guards = tuple(builder.guards)
        self._out_step = builder.tensor_step[out_id]
        self._tls = threading.local()

        n = len(steps)
        kinds = [None] * n
        roots: list[int | None] = [None] * n
        for i, step in enumerate(steps):
            kind = _classify(step)
            kinds[i] = kind
            if kind == "view":
                ref_kind, payload = step.refs[0]
                # A view of an input slot or constant owns no frame
                # storage; a view of a step chains to that step's root.
                roots[i] = roots[payload] if ref_kind == _STEP else None
            else:
                roots[i] = i

        # Liveness per storage root: the last step reading it.  The
        # final output's root is pinned past the end of the tape so its
        # buffer is never handed out for reuse mid-replay.
        last_use: dict[int, int] = {}
        for i, step in enumerate(steps):
            for ref_kind, payload in step.refs:
                if ref_kind == _STEP:
                    root = roots[payload]
                    if root is not None:
                        last_use[root] = i
        out_root = roots[self._out_step]
        if out_root is not None:
            last_use[out_root] = n

        deaths: dict[int, list[int]] = {}
        for i in range(n):
            if kinds[i] == "buffer":
                deaths.setdefault(last_use.get(i, i), []).append(i)

        specs: list[tuple[tuple[int, ...], np.dtype]] = []
        free: dict[tuple, list[tuple[int, int]]] = {}
        buffer_of: dict[int, int] = {}

        def acquire(shape, dtype, at):
            key = (shape, str(dtype))
            pool = free.get(key)
            if pool:
                for slot, (buf_id, avail_from) in enumerate(pool):
                    if avail_from <= at:
                        pool.pop(slot)
                        return buf_id
            specs.append((shape, np.dtype(dtype)))
            return len(specs) - 1

        def release(buf_id, shape, dtype, avail_from):
            free.setdefault((shape, str(dtype)), []).append((buf_id, avail_from))

        codegen = _Codegen()
        for i, step in enumerate(steps):
            buf_id = None
            scratch_ids = []
            if kinds[i] == "buffer":
                shape, dtype = step.out_data.shape, step.out_data.dtype
                buf_id = acquire(shape, dtype, i)
                buffer_of[i] = buf_id
                scratch = _scratch_specs(step)
                for s_shape, s_dtype in scratch:
                    scratch_ids.append(acquire(s_shape, s_dtype, i))
                for sid, (s_shape, s_dtype) in zip(scratch_ids, scratch):
                    release(sid, s_shape, s_dtype, i + 1)
            _COMPILERS[step.op](codegen, i, step, kinds[i], buf_id, scratch_ids)
            # Buffers whose root dies here become reusable from i + 1 —
            # never at i itself, so a kernel cannot alias its own inputs.
            for root in deaths.get(i, ()):
                owner = steps[root].out_data
                release(buffer_of[root], owner.shape, owner.dtype, i + 1)

        frame_lines = [
            f"    f{buf_id} = frame[{buf_id}]"
            for buf_id in sorted(codegen.used_buffers)
        ]
        body = (
            codegen.slot_lines
            + frame_lines
            + codegen.lines
            + [f"    return e{self._out_step}"]
        )
        # Hoist every ``np.<fn>`` the body references into a default
        # argument, bound once at compile: each kernel line then reaches
        # its function through one LOAD_FAST instead of a global plus
        # attribute chain — measurable across ~hundreds of lines per
        # replay.  Longest names first so ``np.add.at`` never gets
        # half-rewritten by the ``np.add`` pass.
        hoisted = sorted(
            {match.group(1) for line in body for match in _NP_CALL.finditer(line)},
            key=len,
            reverse=True,
        )
        header_args = "slots, frame"
        for name in hoisted:
            local = "np_" + name.replace(".", "_")
            body = [line.replace(f"np.{name}(", f"{local}(") for line in body]
            header_args += f", {local}=np.{name}"
        # The generated source is assembled exclusively from this
        # module's own emitters over trace-time metadata; nothing
        # user-controlled reaches it (constants ride the C pool).
        self.source = "\n".join(
            [f"def _replay({header_args}):"] + body + [""]
        )
        namespace = {"np": np, "C": tuple(codegen.consts)}
        exec(compile(self.source, "<repro.nn.jit.Tape>", "exec"), namespace)
        self._fn = namespace["_replay"]
        self._frame_specs = tuple(specs)
        #: step and planned-buffer counts, exposed for tests/diagnostics.
        self.num_steps = n
        self.num_buffers = len(specs)

    def guards_ok(self) -> bool:
        """True while every traced parameter still binds its traced array."""
        for param, data in self._guards:
            if param.data is not data:
                return False
        return True

    def replay(self, slots: dict) -> np.ndarray:
        """Execute the tape over fresh ``slots``; returns the output array.

        The result may live in a reused frame buffer — callers that
        retain it across calls must copy.
        """
        frame = getattr(self._tls, "frame", None)
        if frame is None:
            frame = self._tls.frame = [
                np.empty(shape, dtype) for shape, dtype in self._frame_specs
            ]
        return self._fn(slots, frame)


# ----------------------------------------------------------------------
# kernel emitters — each writes the interpreted op's exact numpy call
# sequence into the generated replay function, so replay is
# bitwise-identical at every dtype
# ----------------------------------------------------------------------
def _binary_emitter(fn):
    def emit(cg, i, step, kind, buf_id, scratch_ids):
        a, b = cg.ref(step.refs[0]), cg.ref(step.refs[1])
        cg.emit(f"e{i} = np.{fn}({a}, {b}, out={cg.buf(buf_id)})")

    return emit


def _unary_emitter(fn):
    def emit(cg, i, step, kind, buf_id, scratch_ids):
        cg.emit(f"e{i} = np.{fn}({cg.ref(step.refs[0])}, out={cg.buf(buf_id)})")

    return emit


def _emit_pow(cg, i, step, kind, buf_id, scratch_ids):
    # ndarray.__pow__'s exponent fast paths allocate fresh, exactly like
    # the interpreter.
    cg.emit(f"e{i} = {cg.ref(step.refs[0])} ** {cg.lit(step.meta['exponent'])}")


def _emit_sigmoid(cg, i, step, kind, buf_id, scratch_ids):
    a, buf = cg.ref(step.refs[0]), cg.buf(buf_id)
    cg.emit(f"np.negative({a}, out={buf})")
    cg.emit(f"np.exp({buf}, out={buf})")
    cg.emit(f"np.add({buf}, 1.0, out={buf})")
    cg.emit(f"e{i} = np.divide(1.0, {buf}, out={buf})")


def _emit_relu(cg, i, step, kind, buf_id, scratch_ids):
    a = cg.ref(step.refs[0])
    cg.emit(f"e{i} = np.multiply({a}, np.greater({a}, 0), out={cg.buf(buf_id)})")


def _emit_clip(cg, i, step, kind, buf_id, scratch_ids):
    a = cg.ref(step.refs[0])
    low, high = cg.lit(step.meta["low"]), cg.lit(step.meta["high"])
    cg.emit(f"e{i} = np.clip({a}, {low}, {high}, out={cg.buf(buf_id)})")


def _reduction_emitter(ufunc):
    # ``ndarray.sum``/``.max`` are exactly ``np.add.reduce``/
    # ``np.maximum.reduce`` underneath (numpy's ``_methods`` module binds
    # them directly), so the ufunc form is bitwise-identical while
    # skipping the per-call Python wrapper.
    def emit(cg, i, step, kind, buf_id, scratch_ids):
        a = cg.ref(step.refs[0])
        axis = cg.lit(step.meta["axis"])
        keepdims = cg.lit(step.meta["keepdims"])
        cg.emit(
            f"e{i} = np.{ufunc}.reduce({a}, axis={axis}, "
            f"out={cg.buf(buf_id)}, keepdims={keepdims})"
        )

    return emit


def _emit_matmul(cg, i, step, kind, buf_id, scratch_ids):
    a, b = cg.ref(step.refs[0]), cg.ref(step.refs[1])
    if kind == "alloc":  # 1-D dot product: 0-d result, no out= form
        cg.emit(f"e{i} = {a} @ {b}")
    else:
        cg.emit(f"e{i} = np.matmul({a}, {b}, out={cg.buf(buf_id)})")


def _emit_transpose(cg, i, step, kind, buf_id, scratch_ids):
    cg.emit(f"e{i} = {cg.ref(step.refs[0])}.transpose({cg.lit(step.meta['axes'])})")


def _emit_reshape(cg, i, step, kind, buf_id, scratch_ids):
    cg.emit(f"e{i} = {cg.ref(step.refs[0])}.reshape({cg.lit(step.meta['shape'])})")


def _emit_getitem(cg, i, step, kind, buf_id, scratch_ids):
    cg.emit(f"e{i} = {cg.ref(step.refs[0])}[{cg.index(step.meta['index'])}]")


def _emit_concat(cg, i, step, kind, buf_id, scratch_ids):
    parts = ", ".join(cg.ref(ref) for ref in step.refs)
    axis = cg.lit(step.meta["axis"])
    cg.emit(
        f"e{i} = np.concatenate(({parts},), axis={axis}, out={cg.buf(buf_id)})"
    )


def _emit_stack(cg, i, step, kind, buf_id, scratch_ids):
    parts = ", ".join(cg.ref(ref) for ref in step.refs)
    axis = cg.lit(step.meta["axis"])
    cg.emit(f"e{i} = np.stack(({parts},), axis={axis}, out={cg.buf(buf_id)})")


def _emit_scatter(cg, i, step, kind, buf_id, scratch_ids):
    buf = cg.buf(buf_id)
    cg.emit(f"{buf}[...] = 0.0")
    cg.emit(f"np.add.at({buf}, {cg.index(step.meta['index'])}, "
            f"{cg.ref(step.refs[0])})")
    cg.emit(f"e{i} = {buf}")


def _emit_where(cg, i, step, kind, buf_id, scratch_ids):
    # np.where has no out= form; allocates fresh, exactly like the
    # interpreter.
    cond = cg.obj(step.meta["condition"])
    a, b = cg.ref(step.refs[0]), cg.ref(step.refs[1])
    cg.emit(f"e{i} = np.where({cond}, {a}, {b})")


def _emit_fused_softmax(cg, i, step, kind, buf_id, scratch_ids):
    a, buf = cg.ref(step.refs[0]), cg.buf(buf_id)
    red = cg.buf(scratch_ids[0])
    axis = cg.lit(step.meta["axis"])
    cg.emit(f"np.maximum.reduce({a}, axis={axis}, out={red}, keepdims=True)")
    cg.emit(f"np.subtract({a}, {red}, out={buf})")
    cg.emit(f"np.exp({buf}, out={buf})")
    cg.emit(f"np.add.reduce({buf}, axis={axis}, out={red}, keepdims=True)")
    cg.emit(f"{buf} /= {red}")
    cg.emit(f"e{i} = {buf}")


def _emit_fused_log_softmax(cg, i, step, kind, buf_id, scratch_ids):
    a, buf = cg.ref(step.refs[0]), cg.buf(buf_id)
    scratch, red = cg.buf(scratch_ids[0]), cg.buf(scratch_ids[1])
    axis = cg.lit(step.meta["axis"])
    cg.emit(f"np.maximum.reduce({a}, axis={axis}, out={red}, keepdims=True)")
    cg.emit(f"np.subtract({a}, {red}, out={buf})")
    cg.emit(f"np.exp({buf}, out={scratch})")
    cg.emit(f"np.add.reduce({scratch}, axis={axis}, out={red}, keepdims=True)")
    cg.emit(f"np.log({red}, out={red})")
    cg.emit(f"e{i} = np.subtract({buf}, {red}, out={buf})")


def _emit_fused_layer_norm(cg, i, step, kind, buf_id, scratch_ids):
    a = cg.ref(step.refs[0])
    weight, bias = cg.ref(step.refs[1]), cg.ref(step.refs[2])
    buf = cg.buf(buf_id)
    scratch, red = cg.buf(scratch_ids[0]), cg.buf(scratch_ids[1])
    eps = cg.lit(step.meta["eps"])
    inv_count = cg.lit(1.0 / step.parent_datas[0].shape[-1])
    cg.emit(f"np.add.reduce({a}, axis=-1, out={red}, keepdims=True)")  # mu
    cg.emit(f"{red} *= {inv_count}")
    cg.emit(f"np.subtract({a}, {red}, out={scratch})")  # centred
    cg.emit(f"np.multiply({scratch}, {scratch}, out={buf})")
    cg.emit(f"np.add.reduce({buf}, axis=-1, out={red}, keepdims=True)")  # var (mu dead)
    cg.emit(f"{red} *= {inv_count}")
    cg.emit(f"np.add({red}, {eps}, out={red})")
    cg.emit(f"np.sqrt({red}, out={red})")  # std
    cg.emit(f"np.divide({scratch}, {red}, out={scratch})")  # x-hat
    cg.emit(f"np.multiply({scratch}, {weight}, out={buf})")
    cg.emit(f"e{i} = np.add({buf}, {bias}, out={buf})")


def _emit_fused_gelu(cg, i, step, kind, buf_id, scratch_ids):
    a, buf = cg.ref(step.refs[0]), cg.buf(buf_id)
    scratch = cg.buf(scratch_ids[0])
    cg.emit(f"np.multiply({a}, {a}, out={scratch})")
    cg.emit(f"np.multiply({scratch}, {a}, out={scratch})")
    cg.emit(f"np.multiply({scratch}, {cg.lit(_GELU_COEFF)}, out={scratch})")
    cg.emit(f"np.add({a}, {scratch}, out={scratch})")
    cg.emit(f"np.multiply({scratch}, {cg.lit(_SQRT_2_OVER_PI)}, out={scratch})")
    cg.emit(f"np.tanh({scratch}, out={scratch})")
    cg.emit(f"np.multiply({a}, 0.5, out={buf})")
    cg.emit(f"np.add({scratch}, 1.0, out={scratch})")
    cg.emit(f"e{i} = np.multiply({buf}, {scratch}, out={buf})")


def _emit_fused_dropout_residual(cg, i, step, kind, buf_id, scratch_ids):
    x, residual = cg.ref(step.refs[0]), cg.ref(step.refs[1])
    cg.emit(f"e{i} = np.add({residual}, {x}, out={cg.buf(buf_id)})")


def _emit_fused_attention(cg, i, step, kind, buf_id, scratch_ids):
    q, k, v = (cg.ref(ref) for ref in step.refs)
    buf = cg.buf(buf_id)
    scores, red = cg.buf(scratch_ids[0]), cg.buf(scratch_ids[1])
    cg.emit(f"np.matmul({q}, np.swapaxes({k}, -1, -2), out={scores})")
    cg.emit(f"{scores} *= {cg.lit(step.meta['scale'])}")
    cg.emit(f"np.maximum.reduce({scores}, axis=-1, out={red}, keepdims=True)")
    cg.emit(f"np.subtract({scores}, {red}, out={scores})")
    cg.emit(f"np.exp({scores}, out={scores})")
    cg.emit(f"np.add.reduce({scores}, axis=-1, out={red}, keepdims=True)")
    cg.emit(f"{scores} /= {red}")
    cg.emit(f"e{i} = np.matmul({scores}, {v}, out={buf})")


_COMPILERS = {
    "add": _binary_emitter("add"),
    "mul": _binary_emitter("multiply"),
    "div": _binary_emitter("divide"),
    "neg": _unary_emitter("negative"),
    "exp": _unary_emitter("exp"),
    "log": _unary_emitter("log"),
    "sqrt": _unary_emitter("sqrt"),
    "tanh": _unary_emitter("tanh"),
    "abs": _unary_emitter("absolute"),
    "pow": _emit_pow,
    "sigmoid": _emit_sigmoid,
    "relu": _emit_relu,
    "clip": _emit_clip,
    "sum": _reduction_emitter("add"),
    "max": _reduction_emitter("maximum"),
    "max_stat": _reduction_emitter("maximum"),
    "matmul": _emit_matmul,
    "transpose": _emit_transpose,
    "reshape": _emit_reshape,
    "getitem": _emit_getitem,
    "concat": _emit_concat,
    "stack": _emit_stack,
    "scatter": _emit_scatter,
    "where": _emit_where,
    "fused_softmax": _emit_fused_softmax,
    "fused_log_softmax": _emit_fused_log_softmax,
    "fused_layer_norm": _emit_fused_layer_norm,
    "fused_gelu": _emit_fused_gelu,
    "fused_dropout_residual": _emit_fused_dropout_residual,
    "fused_attention": _emit_fused_attention,
}
