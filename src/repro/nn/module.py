"""Module and parameter abstractions for the numpy neural-network substrate.

A :class:`Module` owns :class:`Parameter` leaves and child modules, and can
enumerate them recursively for the optimiser and for (de)serialisation —
the same contract as ``torch.nn.Module`` reduced to what the reproduction
needs.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from .tensor import Tensor


@contextmanager
def frozen(module: "Module"):
    """Temporarily exclude ``module``'s parameters from the autograd graph.

    Operations executed inside the block treat the parameters as
    constants, so a combined adversarial loss can include a generator term
    that flows *through* a discriminator without updating it — the
    single-backward equivalent of alternating GAN optimisers, used by the
    BeatGAN/DAEMON/TranAD baselines.
    """
    params = list(module.parameters())
    saved = [p.requires_grad for p in params]
    for p in params:
        p.requires_grad = False
    try:
        yield module
    finally:
        for p, flag in zip(params, saved):
            p.requires_grad = flag

__all__ = ["Parameter", "Module", "frozen"]


class Parameter(Tensor):
    """A tensor registered as a learnable leaf of a module tree."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration is automatic via ``__setattr__``.  Call the
    module like a function to invoke :meth:`forward`.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its descendants."""
        for param in self._parameters.values():
            yield param
        for child in self._modules.values():
            yield from child.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total number of scalar learnable parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # mode and gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear parameter gradients.

        ``set_to_none=False`` keeps each existing gradient buffer and
        fills it with zeros in place, so the next backward pass
        accumulates into the same allocation instead of allocating fresh
        arrays every training step.  The default drops the buffers,
        preserving the historical ``grad is None`` contract the
        optimisers use to skip untouched parameters.
        """
        for param in self.parameters():
            if set_to_none or param.grad is None:
                param.zero_grad()
            else:
                param.grad.fill(0.0)

    def to_dtype(self, dtype) -> "Module":
        """Cast every parameter of this module tree to ``dtype`` in place.

        Used by models with a ``compute_dtype`` policy (float32 training
        and serving); gradients are dropped since they would no longer
        match the parameter dtype.
        """
        resolved = np.dtype(dtype)
        for param in self.parameters():
            param.data = param.data.astype(resolved, copy=False)
            param.grad = None
        return self

    # ------------------------------------------------------------------
    # state dict (serialisation)
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Flat mapping of parameter names to array copies."""
        return OrderedDict((name, param.data.copy()) for name, param in self.named_parameters())

    def load_state_dict(self, state: dict, copy: bool = True) -> None:
        """Load arrays produced by :meth:`state_dict` in-place.

        ``copy=False`` **binds** each array as the parameter's storage
        instead of copying it — the zero-copy path used to attach weights
        that live in a shared-memory segment (see
        :func:`repro.nn.serialization.unpack_state`).  Bound arrays may
        be read-only; that is fine for inference but training would fail
        on the first in-place update, so binding requires an exact dtype
        match and drops any existing gradient.

        Raises
        ------
        KeyError
            If a parameter is missing from ``state``.
        ValueError
            On any shape mismatch, or a dtype mismatch with ``copy=False``
            (a silent cast there would materialise the private copy the
            caller asked to avoid).
        """
        for name, param in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter in state dict: {name}")
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.shape}, got {value.shape}"
                )
            if copy:
                param.data = value.astype(param.data.dtype)
            else:
                if value.dtype != param.data.dtype:
                    raise ValueError(
                        f"dtype mismatch for {name} with copy=False: expected "
                        f"{param.data.dtype}, got {value.dtype}; cast before binding"
                    )
                param.data = value
                param.grad = None

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def freeze(self) -> "Module":
        """Permanently stop gradient flow into this module's parameters.

        Used by the GPT4TS baseline, which keeps its Transformer backbone
        frozen and trains only the input/output projections and layer
        norms.
        """
        for param in self.parameters():
            param.requires_grad = False
        return self

    def __repr__(self) -> str:
        child_lines = [f"  ({name}): {child!r}" for name, child in self._modules.items()]
        body = "\n".join(child_lines)
        if body:
            return f"{type(self).__name__}(\n{body}\n)"
        return f"{type(self).__name__}()"
