"""Stateless neural-network operations on :class:`~repro.nn.tensor.Tensor`.

These free functions mirror ``torch.nn.functional`` for the subset of
operations the TFMAE reproduction needs: activations, normalisation,
dropout, and the divergence/distance losses used by the paper's
contrastive objective (Eq. 14-16).

The hot operations (``softmax``, ``log_softmax``, ``gelu``,
``layer_norm``, ``dropout_residual``) dispatch to the single-node fused
kernels of :mod:`repro.nn.fused` when those are enabled (the default);
the multi-node primitive compositions remain available both as the
fallback and as the equivalence reference for the gradcheck tests.
"""

from __future__ import annotations

import numpy as np

from . import fused
from .tensor import Tensor, as_tensor

__all__ = [
    "relu",
    "gelu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "dropout_residual",
    "layer_norm",
    "mse_loss",
    "mae_loss",
    "kl_divergence",
    "symmetric_kl",
    "binary_cross_entropy",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation).

    The tanh form is differentiable with the primitives available in the
    autograd engine and matches the approximation used by most Transformer
    implementations.
    """
    if fused.fused_enabled():
        return fused.gelu(x)
    return fused.reference_gelu(x)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    if fused.fused_enabled():
        return fused.softmax(x, axis=axis)
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    if fused.fused_enabled():
        return fused.log_softmax(x, axis=axis)
    return x.log_softmax(axis=axis)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: identity at evaluation time.

    Parameters
    ----------
    p:
        Drop probability in ``[0, 1)``.
    training:
        When ``False`` the input is returned unchanged.
    rng:
        Source of randomness; falls back to a module-level default.
    """
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    # Documented interactive fallback: repro callers (Dropout layer, fused
    # kernels) always thread a seeded generator through `rng`.
    generator = rng if rng is not None else np.random.default_rng()  # repro: noqa[RNG001]
    mask = (generator.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def dropout_residual(
    x: Tensor,
    residual: Tensor,
    p: float,
    training: bool,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """``residual + dropout(x)`` — the Transformer residual connection.

    Fused into one graph node when the fused kernels are enabled; both
    paths draw the dropout mask with the same RNG call, so they consume
    identical random streams.
    """
    if fused.fused_enabled():
        return fused.dropout_residual(x, residual, p, training, rng=rng)
    return fused.reference_dropout_residual(x, residual, p, training, rng=rng)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the trailing dimension (Eq. 13, ``LN``)."""
    if fused.fused_enabled():
        return fused.layer_norm(x, weight, bias, eps=eps)
    return fused.reference_layer_norm(x, weight, bias, eps=eps)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    target = as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error over all elements."""
    target = as_tensor(target)
    return (prediction - target).abs().mean()


def kl_divergence(p: Tensor, q: Tensor, axis: int = -1, reduce: bool = True) -> Tensor:
    """Kullback-Leibler divergence ``D_KL(softmax(p) || softmax(q))``.

    Both inputs are treated as unnormalised logits and converted to
    distributions along ``axis``, which matches the paper's use of KLD as a
    distance between latent representations (Eq. 14).

    Parameters
    ----------
    reduce:
        When ``True`` return the scalar mean over all leading dimensions;
        otherwise return the per-position divergence (used for the anomaly
        score in Eq. 16).
    """
    log_p = log_softmax(p, axis=axis)
    log_q = log_softmax(q, axis=axis)
    per_position = (log_p.exp() * (log_p - log_q)).sum(axis=axis)
    return per_position.mean() if reduce else per_position


def symmetric_kl(p: Tensor, q: Tensor, axis: int = -1, reduce: bool = True) -> Tensor:
    """Symmetric KL divergence ``D_KL(p||q) + D_KL(q||p)`` (Eq. 14/16)."""
    forward = kl_divergence(p, q, axis=axis, reduce=reduce)
    backward = kl_divergence(q, p, axis=axis, reduce=reduce)
    return forward + backward


def binary_cross_entropy(prediction: Tensor, target: Tensor, eps: float = 1e-7) -> Tensor:
    """Binary cross entropy on probabilities (used by GAN-style baselines)."""
    target = as_tensor(target)
    clipped = prediction.clip(eps, 1.0 - eps)
    loss = -(target * clipped.log() + (1.0 - target) * (1.0 - clipped).log())
    return loss.mean()
