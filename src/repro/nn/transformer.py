"""Transformer building blocks: sinusoidal positional encoding and
post-norm encoder layers (paper Eq. 11-13).

TFMAE uses the same layer type for both its "encoder" and "decoder" —
self-attention plus a feed-forward network with residual connections and
layer normalisation; the distinction is which tokens are fed in (unmasked
only vs. the full sequence), not the layer structure.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .attention import MultiHeadSelfAttention
from .layers import Dropout, GELU, LayerNorm, Linear, Sequential
from .module import Module
from .tensor import Tensor

__all__ = ["sinusoidal_positional_encoding", "TransformerLayer", "TransformerStack"]


def sinusoidal_positional_encoding(length: int, dim: int, positions: np.ndarray | None = None) -> np.ndarray:
    """Sinusoidal absolute positional encoding (Eq. 11).

    Parameters
    ----------
    length:
        Number of positions when ``positions`` is not given.
    dim:
        Embedding dimension ``D``.
    positions:
        Optional explicit integer positions, used by the temporal-masking
        autoencoder to place mask tokens at their *original* locations in
        the series rather than at contiguous indices.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(len(positions), dim)``.
    """
    if positions is None:
        positions = np.arange(length)
    # The encoding table is computed once in float64 so it is bit-identical
    # across compute_dtype policies; it is cast at the Tensor boundary.
    positions = np.asarray(positions, dtype=np.float64)[:, None]  # repro: noqa[F64001]
    dims = np.arange(dim)[None, :]
    # Even dimensions use sin(t / 10000^(i/D)); odd use cos with (i-1)/D.
    angle_rates = np.power(10000.0, -np.where(dims % 2 == 0, dims, dims - 1) / dim)
    angles = positions * angle_rates
    encoding = np.where(dims % 2 == 0, np.sin(angles), np.cos(angles))
    return encoding


class TransformerLayer(Module):
    """Post-norm Transformer layer: attention + FFN with residuals (Eq. 13)."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        rng: np.random.Generator,
        ffn_dim: int | None = None,
        dropout: float = 0.0,
    ):
        super().__init__()
        ffn_dim = ffn_dim if ffn_dim is not None else 4 * dim
        self.attention = MultiHeadSelfAttention(dim, num_heads, rng, dropout=dropout)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.ffn = Sequential(
            Linear(dim, ffn_dim, rng),
            GELU(),
            Dropout(dropout, rng),
            Linear(ffn_dim, dim, rng),
        )
        self.dropout = Dropout(dropout, rng)

    def forward(self, x: Tensor) -> Tensor:
        # Residual adds go through the fused dropout+residual kernel (one
        # graph node instead of mask-multiply + add); `self.dropout` keeps
        # owning the probability/RNG/mode state.
        drop = self.dropout
        attended = self.norm1(
            F.dropout_residual(self.attention(x), x, drop.p, drop.training, rng=drop.rng)
        )
        return self.norm2(
            F.dropout_residual(self.ffn(attended), attended, drop.p, drop.training, rng=drop.rng)
        )


class TransformerStack(Module):
    """``L`` stacked :class:`TransformerLayer` blocks."""

    def __init__(
        self,
        dim: int,
        num_layers: int,
        num_heads: int,
        rng: np.random.Generator,
        ffn_dim: int | None = None,
        dropout: float = 0.0,
    ):
        super().__init__()
        self.num_layers = num_layers
        self._names: list[str] = []
        for index in range(num_layers):
            name = f"layer{index}"
            setattr(self, name, TransformerLayer(dim, num_heads, rng, ffn_dim=ffn_dim, dropout=dropout))
            self._names.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._names:
            x = getattr(self, name)(x)
        return x

    def __len__(self) -> int:
        return self.num_layers

    def __getitem__(self, index: int) -> TransformerLayer:
        return getattr(self, self._names[index])
