"""Fused autograd kernels: one graph node per mathematical operation.

The generic autograd engine composes every softmax, LayerNorm or GELU out
of 5-10 primitive nodes, each holding a full-size intermediate array and a
Python closure.  For the Transformer hot loop that dominates TFMAE
training and scoring this is the main source of both allocation traffic
and Python overhead.  Each kernel here computes the same mathematical
function in a **single** graph node with a hand-written backward that
saves only what the gradient formula actually needs:

================  =============================  ===========================
kernel            reference graph saves           fused backward saves
================  =============================  ===========================
softmax           shifted, exp, sum, out         softmax output only
log_softmax       shifted, exp, sum, log, out    log-softmax output only
layer_norm        mu, centred, var, std, x-hat   x-hat and 1/std
gelu              x³-poly, tanh, 3 products      input and tanh(u)
dropout_residual  mask product, sum              dropout mask only
attention (SDPA)  QKᵀ, shifted, exp, sum,        softmax weights (+ dropout
                  weights, context               mask); reuses q/k/v data
================  =============================  ===========================

Forward numerics are performed with the *same operation sequence* as the
unfused reference composition, so in float64 the fused forward is
bit-identical; every backward is verified against the reference by
finite-difference :func:`repro.nn.gradcheck` in the test-suite.

:func:`use_fused` / :func:`fused_enabled` provide the switch so the
equivalence tests and micro-benchmarks can flip between the fused and
reference paths; the public :mod:`repro.nn.functional` entry points
dispatch on it.

Threading contract
------------------
The switch mirrors :mod:`repro.nn.dtype` exactly:

* :func:`set_fused` sets the **process-wide default** (True at import).
* :class:`use_fused` is a **thread-local override**: it scopes the toggle
  to the current thread only, so a test or benchmark flipping to the
  reference path can never make the serve scheduler's worker pool — or a
  training thread — silently take the slow (or fast) path mid-run.
  Overrides nest; the innermost active one wins on its own thread.
"""

from __future__ import annotations

import threading

import numpy as np

from .tensor import Tensor, _unbroadcast

__all__ = [
    "fused_enabled",
    "set_fused",
    "use_fused",
    "softmax",
    "log_softmax",
    "layer_norm",
    "gelu",
    "dropout_residual",
    "scaled_dot_product_attention",
    "reference_softmax",
    "reference_log_softmax",
    "reference_layer_norm",
    "reference_gelu",
    "reference_dropout_residual",
    "reference_scaled_dot_product_attention",
]

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))
_GELU_COEFF = 0.044715

_global_enabled = True
_local = threading.local()


def fused_enabled() -> bool:
    """Whether the fused kernels are active on this thread (default True).

    A thread-local :class:`use_fused` override wins over the
    :func:`set_fused` process default.
    """
    stack = getattr(_local, "stack", None)
    if stack:
        return stack[-1]
    return _global_enabled


def set_fused(enabled: bool) -> None:
    """Set the process-wide default for the fused kernels.

    Threads currently inside a :class:`use_fused` block keep their own
    override; everyone else observes the new default immediately.
    """
    global _global_enabled
    _global_enabled = bool(enabled)


class use_fused:
    """Thread-local fused-kernel override, usable as a context manager.

    Scoped to the current thread only (mirroring
    :class:`repro.nn.dtype.default_dtype`), so equivalence tests and
    benches flipping to the reference path never disturb concurrent
    serving or training threads.
    """

    def __init__(self, enabled: bool):
        self.enabled = bool(enabled)

    def __enter__(self) -> "use_fused":
        stack = getattr(_local, "stack", None)
        if stack is None:
            stack = _local.stack = []
        stack.append(self.enabled)
        return self

    def __exit__(self, *exc_info) -> None:
        _local.stack.pop()


# ----------------------------------------------------------------------
# fused kernels
# ----------------------------------------------------------------------
def _softmax_data(data: np.ndarray, axis: int) -> np.ndarray:
    """Numerically-stable softmax, matching the reference op sequence."""
    shifted = data - data.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Single-node softmax; backward saves only the softmax output."""
    out_data = _softmax_data(x.data, axis)

    def backward(grad: np.ndarray) -> None:
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - inner))

    return Tensor._make(out_data, (x,), backward, op="fused_softmax",
                        meta={"axis": axis})


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Single-node log-softmax; backward saves only the output."""
    data = x.data
    shifted = data - data.max(axis=axis, keepdims=True)
    out_data = shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - np.exp(out_data) * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward, op="fused_log_softmax",
                        meta={"axis": axis})


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Single-node layer normalisation over the trailing dimension.

    Backward saves the normalised activations and the inverse std; the
    reference composition keeps five full-size intermediates.
    """
    data = x.data
    # Mirror the reference op sequence (sum · 1/count, not np.mean) so the
    # float64 forward stays bit-identical to the composition.
    inv_count = 1.0 / data.shape[-1]
    mu = data.sum(axis=-1, keepdims=True) * inv_count
    centred = data - mu
    var = (centred * centred).sum(axis=-1, keepdims=True) * inv_count
    std = np.sqrt(var + eps)
    x_hat = centred / std
    out_data = x_hat * weight.data + bias.data

    def backward(grad: np.ndarray) -> None:
        g = grad * weight.data
        g_mean = g.mean(axis=-1, keepdims=True)
        g_hat_mean = np.mean(g * x_hat, axis=-1, keepdims=True)
        x._accumulate((g - g_mean - x_hat * g_hat_mean) / std)
        weight._accumulate(_unbroadcast(grad * x_hat, weight.shape))
        bias._accumulate(_unbroadcast(grad, bias.shape))

    return Tensor._make(out_data, (x, weight, bias), backward, op="fused_layer_norm",
                        meta={"eps": eps})


def gelu(x: Tensor) -> Tensor:
    """Single-node GELU (tanh approximation) with an analytic backward."""
    data = x.data
    # Same association order as the reference composition so the float64
    # forward stays bit-identical.
    u = (data + data * data * data * _GELU_COEFF) * _SQRT_2_OVER_PI
    t = np.tanh(u)
    out_data = data * 0.5 * (t + 1.0)

    def backward(grad: np.ndarray) -> None:
        du = _SQRT_2_OVER_PI * (1.0 + 3.0 * _GELU_COEFF * data * data)
        x._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * data * (1.0 - t * t) * du))

    return Tensor._make(out_data, (x,), backward, op="fused_gelu")


def dropout_residual(
    x: Tensor,
    residual: Tensor,
    p: float,
    training: bool,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """Fused ``residual + dropout(x)`` in one node (Transformer residual add).

    Draws the dropout mask with the same RNG call the reference
    :func:`repro.nn.functional.dropout` uses, so the two paths consume
    identical random streams.
    """
    if training and p > 0.0:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        # Interactive fallback; repro callers thread a seeded generator.
        generator = rng if rng is not None else np.random.default_rng()  # repro: noqa[RNG001]
        mask = ((generator.random(x.shape) >= p) / (1.0 - p)).astype(
            x.data.dtype, copy=False
        )
        out_data = residual.data + x.data * mask
    else:
        mask = None
        out_data = residual.data + x.data

    def backward(grad: np.ndarray) -> None:
        residual._accumulate(_unbroadcast(grad, residual.shape))
        x._accumulate(_unbroadcast(grad if mask is None else grad * mask, x.shape))

    return Tensor._make(out_data, (x, residual), backward, op="fused_dropout_residual",
                        meta={"mask": mask})


def scaled_dot_product_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    scale: float,
    dropout_p: float = 0.0,
    training: bool = False,
    rng: np.random.Generator | None = None,
) -> tuple[Tensor, np.ndarray]:
    """Fused attention: ``softmax(q kᵀ · scale) v`` in a single graph node.

    Returns ``(context, weights)`` where ``weights`` is the plain-numpy
    softmax output (pre-dropout), exposed for the ``last_attention``
    diagnostics.  The hand-written backward saves only the softmax
    weights (plus the dropout mask when active) and reuses the q/k/v data
    arrays already owned by the inputs — the reference composition
    retains six full ``(B, H, T, T)`` intermediates across its nodes.
    """
    q_data, k_data, v_data = q.data, k.data, v.data
    scores = q_data @ np.swapaxes(k_data, -1, -2)
    scores *= scale
    weights = _softmax_data(scores, -1)
    if training and dropout_p > 0.0:
        if not 0.0 <= dropout_p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {dropout_p}")
        # Interactive fallback; repro callers thread a seeded generator.
        generator = rng if rng is not None else np.random.default_rng()  # repro: noqa[RNG001]
        mask = ((generator.random(weights.shape) >= dropout_p) / (1.0 - dropout_p)).astype(
            weights.dtype, copy=False
        )
        dropped = weights * mask
    else:
        mask = None
        dropped = weights
    out_data = dropped @ v_data

    def backward(grad: np.ndarray) -> None:
        grad_dropped = grad @ np.swapaxes(v_data, -1, -2)
        v._accumulate(np.swapaxes(dropped, -1, -2) @ grad)
        grad_weights = grad_dropped if mask is None else grad_dropped * mask
        inner = (grad_weights * weights).sum(axis=-1, keepdims=True)
        grad_scores = weights * (grad_weights - inner)
        grad_scores *= scale
        q._accumulate(grad_scores @ k_data)
        k._accumulate(np.swapaxes(grad_scores, -1, -2) @ q_data)

    return Tensor._make(out_data, (q, k, v), backward, op="fused_attention",
                        meta={"scale": scale, "mask": mask}), weights


# ----------------------------------------------------------------------
# unfused reference compositions (equivalence targets for the tests)
# ----------------------------------------------------------------------
def reference_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax as the multi-node primitive composition."""
    return x.softmax(axis=axis)


def reference_log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax as the multi-node primitive composition."""
    return x.log_softmax(axis=axis)


def reference_layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation as the multi-node primitive composition."""
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normalised = (x - mu) / (var + eps).sqrt()
    return normalised * weight + bias


def reference_gelu(x: Tensor) -> Tensor:
    """GELU (tanh approximation) as the multi-node primitive composition."""
    inner = (x + x * x * x * _GELU_COEFF) * _SQRT_2_OVER_PI
    return x * 0.5 * (inner.tanh() + 1.0)


def reference_dropout_residual(
    x: Tensor,
    residual: Tensor,
    p: float,
    training: bool,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """``residual + dropout(x)`` as separate dropout and add nodes."""
    if training and p > 0.0:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        # Interactive fallback; repro callers thread a seeded generator.
        generator = rng if rng is not None else np.random.default_rng()  # repro: noqa[RNG001]
        mask = (generator.random(x.shape) >= p) / (1.0 - p)
        return residual + x * Tensor(mask)
    return residual + x


def reference_scaled_dot_product_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    scale: float,
    dropout_p: float = 0.0,
    training: bool = False,
    rng: np.random.Generator | None = None,
) -> tuple[Tensor, np.ndarray]:
    """Attention as the multi-node primitive composition."""
    scores = (q @ k.swapaxes(-1, -2)) * scale
    weights = scores.softmax(axis=-1)
    weights_data = weights.data
    if training and dropout_p > 0.0:
        if not 0.0 <= dropout_p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {dropout_p}")
        # Interactive fallback; repro callers thread a seeded generator.
        generator = rng if rng is not None else np.random.default_rng()  # repro: noqa[RNG001]
        mask = (generator.random(weights.shape) >= dropout_p) / (1.0 - dropout_p)
        weights = weights * Tensor(mask)
    return weights @ v, weights_data
