"""Runtime lock-order checker: instrument every lock the process creates.

The static pass (:mod:`repro.analysis.concurrency`) reasons about the
lock graph it can see in the source; this module observes the graph that
actually happens.  When installed (:func:`install`, or automatically in
the test suite via ``REPRO_LOCKCHECK=1``), ``threading.Lock``,
``threading.RLock`` and ``threading.Condition`` are replaced with
factories returning instrumented wrappers that record, per thread:

* the **stack of held locks** — acquiring B while holding A adds the
  edge ``A -> B`` to the observed lock-order graph, with the acquiring
  thread and call site kept as the example;
* **hold times** — every release feeds a per-lock histogram in a
  :class:`repro.serve.metrics.MetricsRegistry`
  (``lockcheck_hold_seconds{lock=...}``), so the p99 hold time of any
  named lock is one :func:`metrics` call away;
* **spawn hazards** — :func:`check_spawn` (called by
  :class:`repro.serve.pool.ProcessPool` before starting a worker)
  records a violation when the spawning thread holds any tracked lock:
  a lock held across ``fork``/``spawn`` machinery is a classic child
  deadlock.

:func:`report` summarises the graph; :func:`find_cycles` returns every
cycle (a lock-order inversion observed at runtime, i.e. a potential
deadlock even if this run got lucky); :func:`assert_clean` raises
:class:`LockOrderError` on cycles or spawn violations — the tier-1 and
chaos suites call it at session teardown under ``make lockcheck``.

Naming
------
Locks are identified by **name**, not instance: all locks created at one
site (or registered under one :func:`named_lock` name) form one node of
the graph, which is the granularity deadlock reasoning needs — ordering
is a property of the lock *class*, not the instance.  The serve stack
registers its locks with stable names (``serve.pool``,
``serve.registry.state``, ...); anonymous locks get
``<file>:<line>`` of their creation site.

``named_lock(name, kind=..., blocking_ok=...)`` is the registration
point: it creates the lock through the (possibly patched) ``threading``
factory and tags the wrapper.  ``blocking_ok=True`` declares a lock that
*exists to serialise a blocking operation* (the registry's per-model
artifact locks, the pool's pipe-send locks); the static BLK001 rule
reads the declaration from the source and exempts those regions, while
the runtime graph still tracks their ordering.

Install early: only locks **created after** :func:`install` are
instrumented, so the test harness installs at ``conftest`` import time,
before ``repro.serve`` builds its module-level locks.
"""

from __future__ import annotations

import os
import sys
import threading
import time

__all__ = [
    "LockOrderError",
    "named_lock",
    "install",
    "uninstall",
    "installed",
    "maybe_install_from_env",
    "check_spawn",
    "held_locks",
    "observed_edges",
    "find_cycles",
    "spawn_violations",
    "metrics",
    "report",
    "assert_clean",
    "reset",
]

_ENV_FLAG = "REPRO_LOCKCHECK"

# Real factories, captured at import time so the wrappers always build on
# uninstrumented primitives even while threading.* is patched.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_CONDITION = threading.Condition


class LockOrderError(RuntimeError):
    """Observed lock-order cycle or a lock held across a process spawn."""


class _State:
    """Process-wide observed graph, guarded by one real (untracked) lock."""

    def __init__(self) -> None:
        self.lock = _REAL_LOCK()
        self.installed = False
        # (held_name, acquired_name) -> {"count", "thread", "site"}
        self.edges: dict[tuple[str, str], dict] = {}
        self.spawn_violations: list[dict] = []
        self.metrics = None  # lazy MetricsRegistry (avoids serve import cycle)


_STATE = _State()


class _Local(threading.local):
    def __init__(self) -> None:
        self.stack: list = []  # [_TrackedLock, ...] in acquisition order
        self.in_hook = False   # reentrancy guard for the hook internals


_LOCAL = _Local()


def _creation_site() -> str:
    """``file:line`` of the frame that created a lock (skipping this module)."""
    frame = sys._getframe(2)
    here = __file__
    while frame is not None and frame.f_code.co_filename == here:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - interpreter internals
        return "<unknown>"
    return f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"


def _acquire_site() -> str:
    frame = sys._getframe(2)
    here = __file__
    while frame is not None and frame.f_code.co_filename == here:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - interpreter internals
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


def _metrics_registry():
    with _STATE.lock:
        registry = _STATE.metrics
    if registry is None:
        # Imported lazily: serve.metrics must stay importable *after*
        # install() so its own locks are tracked, and analysis.lockcheck
        # must not drag repro.serve in at import time (cycle).
        from ..serve.metrics import MetricsRegistry

        registry = MetricsRegistry()
        with _STATE.lock:
            if _STATE.metrics is None:
                _STATE.metrics = registry
            registry = _STATE.metrics
    return registry


class _TrackedLock:
    """Instrumented wrapper over a real Lock/RLock.

    Context-manager compatible, Condition-compatible (it exposes the
    ``_release_save``/``_acquire_restore``/``_is_owned`` trio CPython's
    Condition probes for), and reentrancy-aware for RLocks: only the
    outermost acquire/release records graph edges and hold time.
    """

    __slots__ = ("_inner", "_reentrant", "name", "blocking_ok")

    def __init__(self, inner, reentrant: bool, name: str,
                 blocking_ok: bool = False):
        self._inner = inner
        self._reentrant = reentrant
        self.name = name
        self.blocking_ok = blocking_ok

    # -- core protocol --------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _note_acquire(self, _acquire_site())
        return acquired

    def release(self) -> None:
        self._inner.release()
        _note_release(self, full=False)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    # -- Condition compatibility ----------------------------------------
    # Condition.wait() must fully release the lock; these keep the held
    # stack truthful across the wait (the thread really does not hold it).
    def _release_save(self):
        if hasattr(self._inner, "_release_save"):
            saved = self._inner._release_save()
        else:
            self._inner.release()
            saved = None
        _note_release(self, full=True)
        return saved

    def _acquire_restore(self, saved) -> None:
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(saved)
        else:
            self._inner.acquire()
        _note_acquire(self, _acquire_site())

    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return self._inner._is_owned()
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def _at_fork_reinit(self) -> None:
        # Registered with os.register_at_fork by stdlib modules
        # (concurrent.futures, logging); the child starts unheld.
        self._inner._at_fork_reinit()

    def __getattr__(self, attr: str):
        # Anything else the stdlib probes for delegates to the real lock.
        return getattr(self._inner, attr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "RLock" if self._reentrant else "Lock"
        return f"<tracked {kind} {self.name!r}>"


class _HeldEntry:
    __slots__ = ("lock", "acquired_at", "site", "depth")

    def __init__(self, lock: _TrackedLock, site: str):
        self.lock = lock
        self.acquired_at = time.monotonic()
        self.site = site
        self.depth = 1


def _note_acquire(lock: _TrackedLock, site: str) -> None:
    local = _LOCAL
    if local.in_hook:
        return
    local.in_hook = True
    try:
        stack = local.stack
        if lock._reentrant:
            for entry in stack:
                if entry.lock is lock:
                    entry.depth += 1
                    return
        new_edges = []
        for entry in stack:
            if entry.lock.name != lock.name:
                new_edges.append((entry.lock.name, lock.name, entry.site, site))
        stack.append(_HeldEntry(lock, site))
        if new_edges:
            with _STATE.lock:
                for held_name, name, held_site, acq_site in new_edges:
                    edge = _STATE.edges.get((held_name, name))
                    if edge is None:
                        _STATE.edges[(held_name, name)] = {
                            "count": 1,
                            "thread": threading.current_thread().name,
                            "held_at": held_site,
                            "acquired_at": acq_site,
                        }
                    else:
                        edge["count"] += 1
    finally:
        local.in_hook = False


def _note_release(lock: _TrackedLock, full: bool) -> None:
    local = _LOCAL
    if local.in_hook:
        return
    local.in_hook = True
    try:
        stack = local.stack
        for index in range(len(stack) - 1, -1, -1):
            entry = stack[index]
            if entry.lock is lock:
                if lock._reentrant and not full and entry.depth > 1:
                    entry.depth -= 1
                    return
                del stack[index]
                held = time.monotonic() - entry.acquired_at
                try:
                    _metrics_registry().histogram(
                        "lockcheck_hold_seconds", lock=lock.name
                    ).observe(held)
                except Exception:  # pragma: no cover - metrics must not mask bugs
                    pass
                return
    finally:
        local.in_hook = False


# ----------------------------------------------------------------------
# factories
# ----------------------------------------------------------------------
def _make_lock(name: str | None = None, blocking_ok: bool = False) -> _TrackedLock:
    return _TrackedLock(_REAL_LOCK(), reentrant=False,
                        name=name or _creation_site(), blocking_ok=blocking_ok)


def _make_rlock(name: str | None = None, blocking_ok: bool = False) -> _TrackedLock:
    return _TrackedLock(_REAL_RLOCK(), reentrant=True,
                        name=name or _creation_site(), blocking_ok=blocking_ok)


def _make_condition(lock=None):
    if lock is None:
        lock = _make_rlock()
    return _REAL_CONDITION(lock)


def named_lock(name: str, kind: str = "lock", blocking_ok: bool = False):
    """Create a lock registered under a stable name.

    ``kind`` is ``"lock"``, ``"rlock"`` or ``"condition"``.  When the
    checker is not installed this returns a plain ``threading`` primitive
    (zero overhead); when installed, the instrumented wrapper carries the
    name into the observed graph and the hold-time histograms.

    ``blocking_ok=True`` declares that this lock's purpose is to
    serialise a blocking operation (artifact reads, pipe writes); the
    static BLK001 rule reads the flag from the call site and does not
    flag blocking calls under such a lock — ordering is still tracked.
    """
    if kind not in ("lock", "rlock", "condition"):
        raise ValueError(f"kind must be lock/rlock/condition, got {kind!r}")
    if not installed():
        if kind == "rlock":
            return _REAL_RLOCK()
        if kind == "condition":
            return _REAL_CONDITION()
        return _REAL_LOCK()
    if kind == "rlock":
        return _make_rlock(name, blocking_ok)
    if kind == "condition":
        return _REAL_CONDITION(_make_rlock(name, blocking_ok))
    return _make_lock(name, blocking_ok)


# ----------------------------------------------------------------------
# install / uninstall
# ----------------------------------------------------------------------
def install() -> None:
    """Patch ``threading.Lock``/``RLock``/``Condition`` with tracked factories.

    Idempotent.  Only locks created after this call are tracked; install
    before importing modules whose import builds locks (the test harness
    installs at conftest import time).
    """
    with _STATE.lock:
        if _STATE.installed:
            return
        _STATE.installed = True
    threading.Lock = _make_lock
    threading.RLock = _make_rlock
    threading.Condition = _make_condition


def uninstall() -> None:
    """Restore the real ``threading`` factories (existing wrappers keep working)."""
    with _STATE.lock:
        if not _STATE.installed:
            return
        _STATE.installed = False
    threading.Lock = _REAL_LOCK
    threading.RLock = _REAL_RLOCK
    threading.Condition = _REAL_CONDITION


def installed() -> bool:
    with _STATE.lock:
        return _STATE.installed


def maybe_install_from_env() -> bool:
    """Install when ``REPRO_LOCKCHECK`` is set to a truthy value."""
    flag = os.environ.get(_ENV_FLAG, "").strip().lower()
    if flag in ("", "0", "false", "no", "off"):
        return False
    install()
    return True


def reset() -> None:
    """Drop the observed graph and violations (not the install state)."""
    with _STATE.lock:
        _STATE.edges.clear()
        _STATE.spawn_violations.clear()
        _STATE.metrics = None


# ----------------------------------------------------------------------
# introspection
# ----------------------------------------------------------------------
def held_locks() -> list[str]:
    """Names of the tracked locks the *current thread* holds, oldest first."""
    return [entry.lock.name for entry in _LOCAL.stack]


def check_spawn(context: str) -> bool:
    """Record a violation when the calling thread holds any tracked lock.

    Called by :class:`repro.serve.pool.ProcessPool` immediately before
    ``Process.start()``.  Returns True when clean.
    """
    held = held_locks()
    if not held:
        return True
    with _STATE.lock:
        _STATE.spawn_violations.append({
            "context": context,
            "thread": threading.current_thread().name,
            "held": list(held),
        })
    return False


def observed_edges() -> dict[tuple[str, str], dict]:
    with _STATE.lock:
        return {key: dict(value) for key, value in _STATE.edges.items()}


def spawn_violations() -> list[dict]:
    with _STATE.lock:
        return [dict(entry) for entry in _STATE.spawn_violations]


def metrics():
    """The hold-time :class:`~repro.serve.metrics.MetricsRegistry`."""
    return _metrics_registry()


def find_cycles() -> list[list[str]]:
    """Every elementary cycle in the observed lock-order graph.

    A cycle means two threads *could* acquire the same locks in opposite
    orders — a deadlock this run merely did not lose the race to.
    """
    adjacency: dict[str, set[str]] = {}
    for held, acquired in observed_edges():
        adjacency.setdefault(held, set()).add(acquired)
        adjacency.setdefault(acquired, set())
    return _graph_cycles(adjacency)


def _graph_cycles(adjacency: dict[str, set[str]]) -> list[list[str]]:
    """Cycles via iterative DFS; each reported once, rotated to min node."""
    cycles: set[tuple[str, ...]] = set()
    for start in sorted(adjacency):
        # DFS from each node, only tracking paths, bounded by graph size.
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        while stack:
            node, path = stack.pop()
            for neighbour in sorted(adjacency.get(node, ())):
                if neighbour == start:
                    cycle = _canonical_cycle(path)
                    cycles.add(cycle)
                elif neighbour not in path and len(path) < len(adjacency):
                    stack.append((neighbour, path + [neighbour]))
    return [list(cycle) for cycle in sorted(cycles)]


def _canonical_cycle(path: list[str]) -> tuple[str, ...]:
    pivot = path.index(min(path))
    return tuple(path[pivot:] + path[:pivot])


def report() -> dict:
    """JSON-serialisable summary: locks, edges, cycles, spawn violations."""
    edges = observed_edges()
    locks = sorted({name for pair in edges for name in pair})
    return {
        "installed": installed(),
        "locks": locks,
        "edges": [
            {"from": held, "to": acquired, **info}
            for (held, acquired), info in sorted(edges.items())
        ],
        "cycles": find_cycles(),
        "spawn_violations": spawn_violations(),
    }


def assert_clean() -> None:
    """Raise :class:`LockOrderError` on any observed cycle or spawn hazard."""
    problems = []
    for cycle in find_cycles():
        ring = " -> ".join(cycle + [cycle[0]])
        problems.append(f"lock-order cycle observed at runtime: {ring}")
    for violation in spawn_violations():
        problems.append(
            f"locks held across process spawn ({violation['context']}, "
            f"thread {violation['thread']}): {', '.join(violation['held'])}"
        )
    if problems:
        raise LockOrderError("\n".join(problems))
