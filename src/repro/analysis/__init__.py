"""Static analysis and runtime sanitizers for the reproduction.

Three coordinated layers (see ``docs/analysis.md``):

* :mod:`repro.analysis.shapecheck` — pre-flight graph tracing that
  catches broadcast mismatches, dtype-policy violations, and grad-flow
  breaks before a long run starts (wired into ``Trainer.fit`` and
  registry publish via ``TFMAEConfig.preflight``);
* :mod:`repro.analysis.anomaly` — ``detect_anomaly()``, a NaN/Inf
  sanitizer that names the op, creation site, and tensor stats of the
  first non-finite value in a forward or backward pass;
* :mod:`repro.analysis.lint` — a stdlib-ast linter enforcing repo
  invariants (seeded RNG discipline, no in-place autograd mutation,
  locked module state in threaded code, ...) with per-line
  ``# repro: noqa[RULE]`` suppression;
* :mod:`repro.analysis.concurrency` — the interprocedural concurrency
  pass: global lock-order graph with cycle detection (LOCK002),
  blocking-call-under-lock detection (BLK001), and thread-local policy
  discipline (TLS001);
* :mod:`repro.analysis.lockcheck` — the dynamic complement: instrumented
  ``threading`` locks recording the *observed* lock-order graph, spawn
  hazards, and hold-time histograms (``REPRO_LOCKCHECK=1``).

CLI: ``python -m repro analyze [lint|shapecheck|concurrency] [--all] [--json]``.
"""

from .anomaly import AnomalyError, detect_anomaly, tensor_stats
from .concurrency import (
    CONCURRENCY_CODES,
    analyze_concurrency,
    lock_graph_summary,
)
from .lint import (
    LintViolation,
    format_json,
    format_text,
    lint_file,
    lint_paths,
    lint_source,
    stale_suppressions,
    suppressions_in,
)
from .rules import ALL_RULES
from .shapecheck import (
    OpRecord,
    ShapeCheckError,
    ShapeIssue,
    TraceReport,
    check_grad_flow,
    preflight_model,
    trace,
)

__all__ = [
    "AnomalyError",
    "detect_anomaly",
    "tensor_stats",
    "LintViolation",
    "ALL_RULES",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_text",
    "format_json",
    "suppressions_in",
    "stale_suppressions",
    "CONCURRENCY_CODES",
    "analyze_concurrency",
    "lock_graph_summary",
    "OpRecord",
    "ShapeIssue",
    "ShapeCheckError",
    "TraceReport",
    "trace",
    "check_grad_flow",
    "preflight_model",
]
