"""Static analysis and runtime sanitizers for the reproduction.

Three coordinated layers (see ``docs/analysis.md``):

* :mod:`repro.analysis.shapecheck` — pre-flight graph tracing that
  catches broadcast mismatches, dtype-policy violations, and grad-flow
  breaks before a long run starts (wired into ``Trainer.fit`` and
  registry publish via ``TFMAEConfig.preflight``);
* :mod:`repro.analysis.anomaly` — ``detect_anomaly()``, a NaN/Inf
  sanitizer that names the op, creation site, and tensor stats of the
  first non-finite value in a forward or backward pass;
* :mod:`repro.analysis.lint` — a stdlib-ast linter enforcing repo
  invariants (seeded RNG discipline, no in-place autograd mutation,
  locked module state in threaded code, ...) with per-line
  ``# repro: noqa[RULE]`` suppression.

CLI: ``python -m repro analyze [lint|shapecheck] [--all] [--json]``.
"""

from .anomaly import AnomalyError, detect_anomaly, tensor_stats
from .lint import (
    LintViolation,
    format_json,
    format_text,
    lint_file,
    lint_paths,
    lint_source,
)
from .rules import ALL_RULES
from .shapecheck import (
    OpRecord,
    ShapeCheckError,
    ShapeIssue,
    TraceReport,
    check_grad_flow,
    preflight_model,
    trace,
)

__all__ = [
    "AnomalyError",
    "detect_anomaly",
    "tensor_stats",
    "LintViolation",
    "ALL_RULES",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_text",
    "format_json",
    "OpRecord",
    "ShapeIssue",
    "ShapeCheckError",
    "TraceReport",
    "trace",
    "check_grad_flow",
    "preflight_model",
]
