"""Repo-invariant linter driver: parse, apply rules, report.

Usage::

    from repro.analysis import lint_paths, format_text
    violations = lint_paths(["src/repro"])
    print(format_text(violations))

or from the command line::

    python -m repro analyze lint [--json] [path ...]

Suppression
-----------
Append ``# repro: noqa[CODE]`` (comma-separated for several codes) to
the offending line.  Suppressions are per-line and per-rule — there is
deliberately no file-level or catch-all form, and every suppression in
``src/repro`` carries a justification comment explaining why the
invariant does not apply at that site.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from pathlib import Path

from .rules import ALL_RULES, LintViolation

__all__ = [
    "LintViolation",
    "suppressions_in",
    "lint_source",
    "lint_file",
    "lint_paths",
    "stale_suppressions",
    "format_text",
    "format_json",
]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]")


def suppressions_in(source: str) -> dict[int, frozenset]:
    """Map of 1-based line number -> rule codes suppressed on that line.

    Tokenized, not line-matched: only genuine ``#`` comments count, so a
    docstring *describing* the noqa syntax neither suppresses anything
    nor trips the stale-suppression check.
    """
    suppressed: dict[int, frozenset] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):
        return suppressed
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(token.string)
        if match:
            codes = frozenset(
                code.strip() for code in match.group(1).split(",") if code.strip()
            )
            suppressed[token.start[0]] = codes
    return suppressed


# Backwards-compatible private alias (pre-stale-suppression name).
_suppressions = suppressions_in


def lint_source(source: str, path: str, rules=ALL_RULES,
                respect_noqa: bool = True) -> list[LintViolation]:
    """Lint one module's source text; ``path`` scopes path-bound rules.

    ``respect_noqa=False`` returns the raw findings including suppressed
    ones — the input to :func:`stale_suppressions`.
    """
    tree = ast.parse(source, filename=path)
    suppressed = suppressions_in(source) if respect_noqa else {}
    violations = []
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for violation in rule.check(tree, path):
            if violation.rule in suppressed.get(violation.line, frozenset()):
                continue
            violations.append(violation)
    return violations


def lint_file(path: str | Path, rules=ALL_RULES) -> list[LintViolation]:
    file_path = Path(path)
    return lint_source(file_path.read_text(encoding="utf-8"), str(file_path), rules)


def lint_paths(paths, rules=ALL_RULES) -> list[LintViolation]:
    """Lint files and/or directory trees; results sorted by location."""
    violations: list[LintViolation] = []
    for path in paths:
        target = Path(path)
        if target.is_dir():
            files = sorted(target.rglob("*.py"))
        else:
            files = [target]
        for file_path in files:
            violations.extend(lint_file(file_path, rules))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def stale_suppressions(paths, rules=ALL_RULES,
                       extra_raw=None) -> list[tuple[str, int, str]]:
    """``(path, line, code)`` for every noqa that no longer suppresses anything.

    A suppression earns its keep only while the rule actually fires on
    its line; once the code is fixed (or the rule changes), the stale
    marker would silently swallow a *future* regression.  ``extra_raw``
    supplies raw (noqa-ignored) violations from analyses outside the
    per-file rules — the cross-file concurrency pass — as a list of
    :class:`LintViolation`.
    """
    raw_hits: dict[tuple[str, int], set[str]] = {}
    for violation in extra_raw or ():
        raw_hits.setdefault((violation.path, violation.line), set()).add(
            violation.rule)

    known_codes = {rule.code for rule in rules}
    for violation in extra_raw or ():
        known_codes.add(violation.rule)
    from .concurrency import CONCURRENCY_CODES  # local: avoids import cycle

    known_codes.update(CONCURRENCY_CODES)

    stale: list[tuple[str, int, str]] = []
    for path in paths:
        target = Path(path)
        files = sorted(target.rglob("*.py")) if target.is_dir() else [target]
        for file_path in files:
            source = file_path.read_text(encoding="utf-8")
            suppressed = suppressions_in(source)
            if not suppressed:
                continue
            raw = lint_source(source, str(file_path), rules, respect_noqa=False)
            hits: dict[int, set[str]] = {}
            for violation in raw:
                hits.setdefault(violation.line, set()).add(violation.rule)
            for line, codes in raw_hits.items():
                if line[0] == str(file_path):
                    hits.setdefault(line[1], set()).update(codes)
            for line, codes in sorted(suppressed.items()):
                for code in sorted(codes):
                    if code not in known_codes or code not in hits.get(line, set()):
                        stale.append((str(file_path), line, code))
    return stale


def format_text(violations) -> str:
    """One `path:line:col: CODE message` line per violation."""
    lines = [violation.format() for violation in violations]
    lines.append(f"{len(violations)} violation(s)" if violations else "clean")
    return "\n".join(lines)


def format_json(violations) -> str:
    return json.dumps([violation.to_dict() for violation in violations], indent=2)
