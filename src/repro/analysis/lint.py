"""Repo-invariant linter driver: parse, apply rules, report.

Usage::

    from repro.analysis import lint_paths, format_text
    violations = lint_paths(["src/repro"])
    print(format_text(violations))

or from the command line::

    python -m repro analyze lint [--json] [path ...]

Suppression
-----------
Append ``# repro: noqa[CODE]`` (comma-separated for several codes) to
the offending line.  Suppressions are per-line and per-rule — there is
deliberately no file-level or catch-all form, and every suppression in
``src/repro`` carries a justification comment explaining why the
invariant does not apply at that site.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path

from .rules import ALL_RULES, LintViolation

__all__ = [
    "LintViolation",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_text",
    "format_json",
]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]")


def _suppressions(source: str) -> dict[int, frozenset]:
    """Map of 1-based line number -> rule codes suppressed on that line."""
    suppressed: dict[int, frozenset] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match:
            codes = frozenset(
                code.strip() for code in match.group(1).split(",") if code.strip()
            )
            suppressed[lineno] = codes
    return suppressed


def lint_source(source: str, path: str, rules=ALL_RULES) -> list[LintViolation]:
    """Lint one module's source text; ``path`` scopes path-bound rules."""
    tree = ast.parse(source, filename=path)
    suppressed = _suppressions(source)
    violations = []
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for violation in rule.check(tree, path):
            if violation.rule in suppressed.get(violation.line, frozenset()):
                continue
            violations.append(violation)
    return violations


def lint_file(path: str | Path, rules=ALL_RULES) -> list[LintViolation]:
    file_path = Path(path)
    return lint_source(file_path.read_text(encoding="utf-8"), str(file_path), rules)


def lint_paths(paths, rules=ALL_RULES) -> list[LintViolation]:
    """Lint files and/or directory trees; results sorted by location."""
    violations: list[LintViolation] = []
    for path in paths:
        target = Path(path)
        if target.is_dir():
            files = sorted(target.rglob("*.py"))
        else:
            files = [target]
        for file_path in files:
            violations.extend(lint_file(file_path, rules))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def format_text(violations) -> str:
    """One `path:line:col: CODE message` line per violation."""
    lines = [violation.format() for violation in violations]
    lines.append(f"{len(violations)} violation(s)" if violations else "clean")
    return "\n".join(lines)


def format_json(violations) -> str:
    return json.dumps([violation.to_dict() for violation in violations], indent=2)
