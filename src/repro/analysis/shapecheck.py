"""Abstract graph checker: pre-flight shape/dtype/grad-flow validation.

Traces a module's forward (or any callable building an autograd graph)
with small deterministic inputs, replaying the *exact same* op dispatch
as ``repro.nn.tensor``/``functional``/``fused`` — the dispatch decisions
(fused vs reference kernels, dtype policy, ablation branches) are the
real ones, not a re-implementation that could drift.  Three checks run
over the traced graph:

**Broadcast mismatches** — numpy raises inside the op; the checker
catches it, walks the traceback to the innermost ``repro.nn`` frame to
name the culpable op, and re-raises as :class:`ShapeCheckError` with the
operand shapes.

**Dtype-policy violations** — any op whose floating-point inputs mix
dtypes (e.g. float64 leaking into a float32 compute path).  The
sanctioned cast points are Tensor construction (``nn.dtype`` policy) and
``Module.to_dtype``; after those, every op should see homogeneous float
dtypes, so a mix always indicates a tensor that bypassed the policy.

**Grad-flow breaks** — parameters with ``requires_grad=True`` that have
no path to the loss (a ``detach()`` or data-escape severed the graph),
or a loss that does not require grad at all.

:func:`preflight_model` packages this for detector models: synthesize a
small deterministic batch, trace ``model.loss``, check grad flow for every named
parameter, and restore any internal RNG state afterwards so the trace
never perturbs the training trajectory.  ``TFMAEConfig.preflight=True``
runs it at the top of ``Trainer.fit`` and before ``serve`` publishes an
artifact; the budget is < 100 ms on the full paper configuration (see
``docs/analysis.md``).
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field

import numpy as np

from ..nn.tensor import Tensor, op_hook

__all__ = [
    "OpRecord",
    "ShapeIssue",
    "ShapeCheckError",
    "TraceReport",
    "trace",
    "check_grad_flow",
    "preflight_model",
]


@dataclass(frozen=True)
class OpRecord:
    """One dispatched op as seen by the tracer."""

    op: str
    input_shapes: tuple
    input_dtypes: tuple
    output_shape: tuple
    output_dtype: str
    requires_grad: bool


@dataclass(frozen=True)
class ShapeIssue:
    """One violation found by the checker."""

    kind: str     # "broadcast" | "dtype_mix" | "grad_flow" | "loss_no_grad"
    op: str       # culpable op, or the parameter name for grad_flow
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.op}: {self.message}"


class ShapeCheckError(RuntimeError):
    """The traced graph violates a shape/dtype/grad-flow invariant."""

    def __init__(self, issues: list):
        self.issues = list(issues)
        lines = "\n".join(f"  {issue}" for issue in self.issues)
        super().__init__(
            f"shape check failed with {len(self.issues)} issue(s):\n{lines}"
        )


@dataclass
class TraceReport:
    """Everything the tracer saw: op records plus detected issues."""

    records: list = field(default_factory=list)
    issues: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def raise_if_issues(self) -> "TraceReport":
        if self.issues:
            raise ShapeCheckError(self.issues)
        return self

    def summary(self) -> str:
        status = "clean" if self.ok else f"{len(self.issues)} issue(s)"
        return f"{len(self.records)} ops traced, {status}"


class _Tracer:
    """Op hook recording every dispatch and flagging dtype mixes."""

    def __init__(self, report: TraceReport):
        self.report = report

    def after_forward(self, out: Tensor, parents: tuple) -> None:
        dtypes = tuple(str(p.data.dtype) for p in parents)
        self.report.records.append(OpRecord(
            op=out.op or "leaf",
            input_shapes=tuple(p.data.shape for p in parents),
            input_dtypes=dtypes,
            output_shape=out.data.shape,
            output_dtype=str(out.data.dtype),
            requires_grad=out.requires_grad,
        ))
        float_dtypes = {
            str(p.data.dtype) for p in parents
            if np.issubdtype(p.data.dtype, np.floating)
        }
        if len(float_dtypes) > 1:
            self.report.issues.append(ShapeIssue(
                kind="dtype_mix",
                op=out.op or "leaf",
                message=(
                    f"op mixes float dtypes {sorted(float_dtypes)} "
                    f"(input shapes {tuple(p.data.shape for p in parents)}); "
                    "cast at Tensor construction via the nn.dtype policy "
                    "instead of feeding mismatched operands"
                ),
            ))


def _innermost_nn_frame(error: BaseException) -> str:
    """Name of the op whose kernel raised, from the traceback."""
    import repro.nn as _nn

    nn_dir = _nn.__path__[0]
    for frame in reversed(traceback.extract_tb(error.__traceback__)):
        if frame.filename.startswith(nn_dir):
            return frame.name
    return "<unknown op>"


def trace(fn, *args, **kwargs) -> tuple:
    """Run ``fn`` under the tracer; returns ``(result, TraceReport)``.

    A shape error inside an op dispatch is converted to
    :class:`ShapeCheckError` naming the op; dtype-mix issues are collected
    in the report without interrupting the trace.
    """
    report = TraceReport()
    tracer = _Tracer(report)
    try:
        with op_hook(tracer):
            result = fn(*args, **kwargs)
    except (ValueError, IndexError) as error:
        op = _innermost_nn_frame(error)
        last = report.records[-1].op if report.records else "<start>"
        report.issues.append(ShapeIssue(
            kind="broadcast",
            op=op,
            message=f"{error} (after {len(report.records)} ops; "
                    f"last successful op: {last})",
        ))
        raise ShapeCheckError(report.issues) from error
    return result, report


def _reachable_leaves(root: Tensor) -> set:
    """ids of every tensor reachable from ``root`` through ``_parents``."""
    seen: set = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(node._parents)
    return seen


def check_grad_flow(loss: Tensor, named_parameters, report: TraceReport | None = None) -> TraceReport:
    """Verify every trainable parameter has a graph path to ``loss``.

    ``named_parameters`` is an iterable of ``(name, Parameter)`` pairs
    (e.g. ``module.named_parameters()``).  Issues are appended to
    ``report`` (a fresh one by default) and returned — call
    :meth:`TraceReport.raise_if_issues` to make them fatal.
    """
    if report is None:
        report = TraceReport()
    if not loss.requires_grad:
        report.issues.append(ShapeIssue(
            kind="loss_no_grad",
            op="loss",
            message="the loss does not require grad; backward would be a no-op "
                    "(built under no_grad, or every input is detached)",
        ))
        return report
    reachable = _reachable_leaves(loss)
    for name, param in named_parameters:
        if param.requires_grad and id(param) not in reachable:
            report.issues.append(ShapeIssue(
                kind="grad_flow",
                op=name,
                message="trainable parameter is not reachable from the loss; "
                        "a detach() or .data escape severed the graph",
            ))
    return report


# ----------------------------------------------------------------------
# model pre-flight
# ----------------------------------------------------------------------
def _collect_generators(root) -> list:
    """Every np.random.Generator reachable through the module tree.

    Walks ``__dict__`` attributes (descending into child modules, plain
    helper objects such as maskers, and dict containers) so a pre-flight
    trace can snapshot and restore all internal RNG state.
    """
    generators: list = []
    seen: set = {id(root)}
    stack = [root]
    while stack:
        obj = stack.pop()
        attrs = getattr(obj, "__dict__", None)
        if attrs is None:
            continue
        for value in attrs.values():
            if isinstance(value, dict):
                candidates = list(value.values())
            else:
                candidates = [value]
            for candidate in candidates:
                if id(candidate) in seen:
                    continue
                seen.add(id(candidate))
                if isinstance(candidate, np.random.Generator):
                    generators.append(candidate)
                elif hasattr(candidate, "__dict__"):
                    stack.append(candidate)
    return generators


def preflight_model(model, batch_size: int = 1, raise_on_issue: bool = True) -> TraceReport:
    """Trace ``model.loss`` on a synthetic batch and run all three checks.

    ``model`` needs ``n_features``, ``config.window_size``, a
    ``loss(windows) -> (Tensor, metrics)`` method, and
    ``named_parameters()`` — the contract of
    :class:`~repro.core.model.TFMAEModel` and the nn-based baselines.

    Internal RNG state (maskers, dropout) is snapshotted before the trace
    and restored after, so running the pre-flight does not change the
    subsequent training trajectory; parameter gradients are untouched
    (the trace never calls backward).
    """
    import copy

    generators = _collect_generators(model)
    saved_states = [copy.deepcopy(g.bit_generator.state) for g in generators]
    probe_rng = np.random.default_rng(0)
    windows = probe_rng.standard_normal(
        (batch_size, model.config.window_size, model.n_features)
    )
    try:
        (loss, _metrics), report = trace(model.loss, windows)
        check_grad_flow(loss, model.named_parameters(), report)
    finally:
        for generator, state in zip(generators, saved_states):
            generator.bit_generator.state = state
    if raise_on_issue:
        report.raise_if_issues()
    return report
