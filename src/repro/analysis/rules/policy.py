"""TLS001: the ``set_*``/``use_*`` thread-local policy discipline.

The policy trios (``nn/fused``: ``set_fused``/``use_fused``, ``nn/jit``:
``set_jit``/``use_jit``, ``nn/jit_train``: ``set_train_jit``/
``use_train_jit``, ``nn/dtype``: ``set_default_dtype``/
``default_dtype``) pair a process-wide default with a thread-local,
context-manager-scoped override.  Three misuses are flagged: a bare
``use_*(...)`` expression that builds the context manager and never
enters it (silently a no-op), ``with set_*(...)`` (the setter is not a
context manager), and ``set_*`` calls inside the serving stack, where a
process-global flip races every other request thread.

Per-file, so it runs under ``analyze lint`` as well as
``analyze concurrency``.
"""

from __future__ import annotations

import ast

from .base import Rule

__all__ = ["TLS_CODE", "ThreadLocalPolicyRule"]

TLS_CODE = "TLS001"


#: context managers that must be entered / setters that must not be.
_USE_NAMES = frozenset({"use_fused", "use_jit", "use_train_jit", "default_dtype"})
_SET_NAMES = frozenset({"set_fused", "set_jit", "set_train_jit",
                        "set_default_dtype"})
#: path fragments of the serving stack, where process-global policy
#: flips race concurrent request threads.
_SERVING_FRAGMENTS = ("/serve/", "streaming.py", "/robustness/")


def _tail_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class ThreadLocalPolicyRule(Rule):
    """TLS001: the ``set_*``/``use_*`` policy trios, used as designed."""

    code = TLS_CODE
    summary = ("thread-local policy misuse: un-entered use_* context "
               "manager, with set_*(), or process-global set_* inside "
               "the serving stack")

    def check(self, tree: ast.Module, path: str):
        normalized = path.replace("\\", "/")
        in_serving = any(fragment in normalized
                         for fragment in _SERVING_FRAGMENTS)
        reported: set[tuple[int, int]] = set()

        for node in ast.walk(tree):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                name = _tail_name(node.value.func)
                if name in _USE_NAMES:
                    yield self.violation(
                        path, node,
                        f"{name}(...) builds a context manager that is "
                        f"never entered — a silent no-op; write "
                        f"`with {name}(...):`",
                    )
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        name = _tail_name(item.context_expr.func)
                        if name in _SET_NAMES:
                            reported.add((item.context_expr.lineno,
                                          item.context_expr.col_offset))
                            yield self.violation(
                                path, item.context_expr,
                                f"`with {name}(...)` — the setter mutates "
                                f"the process-wide default and is not a "
                                f"context manager; use the thread-local "
                                f"`use_*`/`default_dtype` override",
                            )
            if in_serving and isinstance(node, ast.Call):
                name = _tail_name(node.func)
                if name in _SET_NAMES \
                        and (node.lineno, node.col_offset) not in reported:
                    yield self.violation(
                        path, node,
                        f"{name}(...) flips a process-global policy "
                        f"inside the serving stack, racing every other "
                        f"request thread; use the scoped "
                        f"`use_*`/`default_dtype` context managers",
                    )
