"""EXC001: no bare ``except:`` clauses.

A bare ``except:`` swallows ``KeyboardInterrupt``/``SystemExit`` and
``MemoryError`` along with the error it meant to handle — in this repo
that turns a Ctrl-C during a long CPU training run into a silently
corrupted training loop instead of a clean exit, and hides divergence
signals the robustness guards depend on.  Catch the narrowest concrete
exception; use ``except Exception`` only at documented top-level
boundaries (request handlers, worker loops) where crashing the thread is
worse than logging.
"""

from __future__ import annotations

import ast

from .base import Rule


class BareExceptRule(Rule):
    code = "EXC001"
    summary = "bare except: swallows KeyboardInterrupt/SystemExit"

    def check(self, tree: ast.Module, path: str):
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    path, node,
                    "bare except: catches KeyboardInterrupt/SystemExit too; "
                    "name the exception type (or Exception at a documented "
                    "thread boundary)",
                )
