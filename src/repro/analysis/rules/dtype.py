"""F64001: no float64 pinning inside compute_dtype-scoped paths.

The model's ``compute_dtype`` policy (see ``nn/dtype.py`` and
``docs/performance.md``) promises that everything between Tensor
construction and score extraction runs in ONE dtype, chosen per model.
An ``astype(np.float64, ...)`` or ``dtype=np.float64`` pin inside a
policy-scoped file silently re-promotes a float32 path — correctness
survives but the 2x memory/throughput win evaporates, and mixed-dtype
ops appear downstream (which :mod:`repro.analysis.shapecheck` then
flags at trace time).

Scope: the nn compute kernels and the core model — the files whose code
executes under ``nn.default_dtype(compute_dtype)``.  Sanctioned float64
domains are *excluded* from the scope: ``nn/dtype.py`` itself,
``gradcheck`` (finite differences need float64), the maskers (FFT
analysis happens outside the graph), and score post-processing (scores
are float64 by contract — suppress those sites with a justification).

Dtype *comparisons* (``x.dtype == np.float64``) are policy dispatch, not
pinning, and do not fire the rule — only ``astype`` arguments and
``dtype=`` keywords do.
"""

from __future__ import annotations

import ast

from .base import Rule, dotted_name

_FLOAT64_NAMES = frozenset({"np.float64", "numpy.float64"})

#: Files executing under the compute_dtype policy.
_SCOPED_SUFFIXES = (
    "nn/functional.py",
    "nn/fused.py",
    "nn/attention.py",
    "nn/transformer.py",
    "nn/layers.py",
    "core/model.py",
)


def _is_float64(node: ast.AST) -> bool:
    if dotted_name(node) in _FLOAT64_NAMES:
        return True
    return isinstance(node, ast.Constant) and node.value == "float64"


class Float64Rule(Rule):
    code = "F64001"
    summary = "float64 pinned inside a compute_dtype-scoped path"

    def applies_to(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return normalized.endswith(_SCOPED_SUFFIXES)

    def check(self, tree: ast.Module, path: str):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "astype"
                and node.args
                and _is_float64(node.args[0])
            ):
                yield self.violation(
                    path, node,
                    "astype(np.float64) re-promotes a compute_dtype-scoped "
                    "array; use the policy dtype (resolve via nn.dtype) or "
                    "suppress with a contract justification",
                )
                continue
            for keyword in node.keywords:
                if keyword.arg == "dtype" and _is_float64(keyword.value):
                    yield self.violation(
                        path, node,
                        "dtype=np.float64 pins precision inside a "
                        "compute_dtype-scoped path; derive the dtype from the "
                        "policy instead",
                    )
                    break
