"""LOCK001: module-level mutable state in threaded code needs a lock.

The serving stack (``repro.serve``) and the streaming detector run user
requests on worker-pool threads; a module-level dict/list/set mutated at
request time is a data race unless the module also declares the
synchronisation discipline protecting it — a ``threading.Lock``/
``RLock`` at module level, or ``threading.local`` when the state is
meant to be per-thread.

The rule is scoped to ``serve``/``streaming`` modules and flags
module-level assignments of mutable containers (literals or ``dict()``/
``list()``/``set()``/``OrderedDict()``/``defaultdict()``/``deque()``
calls) when the module declares no module-level lock or thread-local.
``__all__``-style dunder metadata is exempt (import-time only, never
mutated after).
"""

from __future__ import annotations

import ast

from .base import Rule, dotted_name

_CONTAINER_CALLS = frozenset({
    "dict", "list", "set", "OrderedDict", "defaultdict", "deque",
    "collections.OrderedDict", "collections.defaultdict", "collections.deque",
})

_LOCK_CALLS = frozenset({
    "threading.Lock", "threading.RLock", "threading.local",
    "Lock", "RLock", "local",
    # The lockcheck-aware factory (repro.analysis.lockcheck) declares
    # the discipline just as loudly as a raw threading primitive.
    "named_lock", "lockcheck.named_lock",
})


def _is_mutable_container(value: ast.AST) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        return name in _CONTAINER_CALLS
    return False


def _declares_lock(tree: ast.Module) -> bool:
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [node.value]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.value]
        for value in targets:
            if isinstance(value, ast.Call) and dotted_name(value.func) in _LOCK_CALLS:
                return True
    return False


class UnlockedStateRule(Rule):
    code = "LOCK001"
    summary = "module-level mutable container in threaded code without a lock"

    def applies_to(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return "/serve/" in normalized or normalized.endswith("streaming.py")

    def check(self, tree: ast.Module, path: str):
        if _declares_lock(tree):
            return
        for node in tree.body:
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign):
                value, targets = node.value, [node.target]
            else:
                continue
            if value is None or not _is_mutable_container(value):
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if all(name.startswith("__") and name.endswith("__") for name in names):
                continue  # dunder metadata (__all__ etc.), import-time only
            label = ", ".join(names) or "<unpacked>"
            yield self.violation(
                path, node,
                f"module-level mutable container {label!r} in threaded "
                "serve/streaming code with no module-level threading.Lock/"
                "RLock/local declaring its synchronisation discipline",
            )
