"""MUT001: no in-place mutation of autograd-reachable arrays.

``Tensor.data`` buffers are shared by every node that views them; the
backward closures capture them by reference and replay them when
``backward()`` runs.  Mutating one in place (``t.data[...] = x``,
``t.data += x``, ``t.data.fill(0)``) silently corrupts gradients of any
graph built before the mutation — the classic "in-place operation
modified a variable needed for gradient computation", except numpy
cannot detect it at runtime, so we forbid it statically.

Rebinding (``t.data = new_array``) is allowed: the optimizer's parameter
update rebinds leaves after backward has consumed the graph, which never
aliases a captured buffer.
"""

from __future__ import annotations

import ast

from .base import Rule

#: ndarray methods that mutate the receiver in place.
_MUTATING_METHODS = frozenset({
    "fill", "sort", "put", "partition", "itemset", "setfield", "resize",
    "byteswap", "setflags",
})


def _touches_data(node: ast.AST) -> bool:
    """True when the expression reads through a ``.data`` attribute."""
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "data"
        for sub in ast.walk(node)
    )


class InPlaceMutationRule(Rule):
    code = "MUT001"
    summary = "in-place mutation of a .data buffer reachable from autograd"

    def check(self, tree: ast.Module, path: str):
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and _touches_data(target.value):
                        yield self.violation(
                            path, target,
                            "subscript assignment into a .data buffer mutates "
                            "an array captured by backward closures; build a "
                            "new array and rebind instead",
                        )
            elif isinstance(node, ast.AugAssign):
                target = node.target
                is_data_attr = isinstance(target, ast.Attribute) and target.attr == "data"
                is_data_sub = isinstance(target, ast.Subscript) and _touches_data(target.value)
                if is_data_attr or is_data_sub:
                    yield self.violation(
                        path, target,
                        "augmented assignment on a .data buffer mutates in "
                        "place; use `x.data = x.data <op> y` to rebind",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                    and _touches_data(func.value)
                ):
                    yield self.violation(
                        path, func,
                        f".data.{func.attr}() mutates the buffer in place and "
                        "corrupts gradients of any live graph over it",
                    )
