"""Repo-invariant lint rules (stdlib-ast based).

Each rule encodes an invariant this codebase relies on but Python cannot
enforce — see ``docs/analysis.md`` for the catalogue with rationale.
Adding a rule: subclass :class:`~repro.analysis.rules.base.Rule`, give it
a unique ``code``, and append an instance to :data:`ALL_RULES`.
"""

from .base import LintViolation, Rule
from .detach import DetachRule
from .dtype import Float64Rule
from .exceptions import BareExceptRule
from .jit import JitTensorRule
from .mutation import InPlaceMutationRule
from .policy import ThreadLocalPolicyRule
from .rng import GlobalRandomRule
from .state import UnlockedStateRule

__all__ = ["LintViolation", "Rule", "ALL_RULES"]

#: Every active rule, instantiated once; order fixes report ordering.
ALL_RULES: tuple[Rule, ...] = (
    GlobalRandomRule(),
    InPlaceMutationRule(),
    UnlockedStateRule(),
    BareExceptRule(),
    DetachRule(),
    Float64Rule(),
    JitTensorRule(),
    ThreadLocalPolicyRule(),
)
