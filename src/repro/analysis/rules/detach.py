"""DET001: no silent graph detach via ``Tensor(other.data)``.

Wrapping an existing tensor's buffer in a fresh ``Tensor`` (or
``as_tensor``) creates a node with no parents: gradients stop there
*silently* — training appears to run but a whole subgraph never learns
(the grad-flow break :mod:`repro.analysis.shapecheck` hunts at runtime;
this rule catches it at review time).  When detaching is intended, say
so: call ``.detach()``, whose name documents the intent and which this
rule whitelists (any call inside a function literally named ``detach``
is exempt, so the canonical implementation site stays clean).

Numeric-only uses of ``.data`` (reading values for metrics, shapes,
serialisation) are fine — the rule only fires when the buffer is fed
back into a ``Tensor`` constructor.
"""

from __future__ import annotations

import ast

from .base import Rule, dotted_name

_CONSTRUCTORS = frozenset({"Tensor", "as_tensor", "nn.Tensor", "tensor.Tensor"})


def _reads_data(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "data"
        for sub in ast.walk(node)
    )


class DetachRule(Rule):
    code = "DET001"
    summary = "Tensor(x.data) silently detaches the autograd graph"

    def check(self, tree: ast.Module, path: str):
        # Track enclosing function names so `def detach(...)` bodies are
        # whitelisted — the one sanctioned construction site.
        stack: list[str] = []

        def visit(node: ast.AST):
            is_func = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            if is_func:
                stack.append(node.name)
            if (
                isinstance(node, ast.Call)
                and dotted_name(node.func) in _CONSTRUCTORS
                and any(_reads_data(arg) for arg in node.args)
                and "detach" not in stack
            ):
                yield self.violation(
                    path, node,
                    "re-wrapping a .data buffer in Tensor() drops the graph "
                    "silently; call .detach() to document the cut, or keep "
                    "the original tensor",
                )
            for child in ast.iter_child_nodes(node):
                yield from visit(child)
            if is_func:
                stack.pop()

        yield from visit(tree)
