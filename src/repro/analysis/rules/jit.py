"""JIT001: no Tensor construction inside tape-replay code paths.

The whole point of :mod:`repro.nn.jit` is that *replay* touches raw
``numpy`` arrays only — tapes are traced once through the interpreted
graph, then re-executed with zero ``Tensor`` wrapping, zero autograd
node construction, and zero op-hook dispatch.  A ``Tensor(...)`` or
``as_tensor(...)`` call creeping into the jit module re-introduces
exactly the per-op overhead the tape exists to remove, and (worse) can
silently route replay back through the graph where a hook might observe
phantom ops.

Scope: ``nn/jit.py`` and ``nn/jit_train.py``.  Tracing itself never
needs to *build* tensors — it observes a forward the caller already ran;
resolution works on ``.data`` buffers by identity.  The train-step tape
additionally replays backward and the optimizer update, which likewise
must stay on raw buffers.  If a future change genuinely needs a Tensor
inside either jit module (e.g. a fallback that re-enters the interpreted
path by calling back into model code), construct it at the call site
outside the jit modules or suppress with a justification.
"""

from __future__ import annotations

import ast

from .base import Rule, dotted_name

_CONSTRUCTORS = frozenset({"Tensor", "as_tensor", "nn.Tensor", "tensor.Tensor"})


class JitTensorRule(Rule):
    code = "JIT001"
    summary = "Tensor constructed inside tape-replay code"

    def applies_to(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return normalized.endswith(("nn/jit.py", "nn/jit_train.py"))

    def check(self, tree: ast.Module, path: str):
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and dotted_name(node.func) in _CONSTRUCTORS
            ):
                yield self.violation(
                    path, node,
                    "tape trace/replay must stay on raw numpy arrays; "
                    "constructing a Tensor here re-adds the graph and "
                    "dispatch overhead the tape removes",
                )
