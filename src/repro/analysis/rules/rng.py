"""RNG001: no global numpy randomness — thread a seeded Generator.

Reproducibility is a first-class claim of this repo (same seed, same
tables).  The legacy ``np.random.*`` module functions draw from hidden
process-global state that any import or thread can perturb, and an
unseeded ``np.random.default_rng()`` is fresh entropy on every call —
both make results irreproducible and untestable.  Every random draw in
``src/repro`` must come from an ``np.random.Generator`` threaded in by
the caller (ultimately from a config seed).

Suppress only for documented opt-in fallbacks (e.g. a layer whose
``rng=None`` default exists for interactive use while every repro code
path passes a generator) with ``# repro: noqa[RNG001]`` plus a
justification comment.
"""

from __future__ import annotations

import ast

from .base import Rule, dotted_name

#: np.random attributes that are construction/seeding machinery, not draws.
_ALLOWED_ATTRS = frozenset({
    "default_rng", "Generator", "BitGenerator", "SeedSequence",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64", "RandomState",
})

_NUMPY_ALIASES = ("np.random", "numpy.random")


class GlobalRandomRule(Rule):
    code = "RNG001"
    summary = "global numpy randomness (legacy np.random.* or unseeded default_rng())"

    def check(self, tree: ast.Module, path: str):
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                base = dotted_name(node.value)
                if base in _NUMPY_ALIASES and node.attr not in _ALLOWED_ATTRS:
                    yield self.violation(
                        path, node,
                        f"legacy global np.random.{node.attr} draws from hidden "
                        "process state; thread an np.random.Generator instead",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name in (f"{alias}.default_rng" for alias in _NUMPY_ALIASES)
                    and not node.args
                    and not node.keywords
                ):
                    yield self.violation(
                        path, node,
                        "unseeded np.random.default_rng() is fresh entropy on "
                        "every call; pass a seed or accept a Generator",
                    )
