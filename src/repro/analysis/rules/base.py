"""Shared machinery for lint rules."""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = ["LintViolation", "Rule", "dotted_name"]


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Rule:
    """One repo invariant checked over a module's AST.

    Subclasses set ``code`` (stable identifier used in reports and
    ``# repro: noqa[CODE]`` suppressions) and ``summary``, and implement
    :meth:`check`.  :meth:`applies_to` scopes the rule to a path subset;
    the default is every file under the linted tree.
    """

    code: str = ""
    summary: str = ""

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, tree: ast.Module, path: str):
        """Yield :class:`LintViolation` for every hit in ``tree``."""
        raise NotImplementedError

    def violation(self, path: str, node: ast.AST, message: str) -> LintViolation:
        return LintViolation(
            rule=self.code,
            path=path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
