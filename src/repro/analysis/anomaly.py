"""Autograd anomaly sanitizer: pinpoint the op that created a NaN/Inf.

A non-finite value born deep inside a training step surfaces far away —
as a NaN loss several ops later, or as poisoned Adam moments an epoch
later.  :class:`detect_anomaly` instruments the autograd engine (via the
thread-local op hooks of :mod:`repro.nn.tensor`) so that

* every op's **forward output** is checked for NaN/Inf the moment the
  node is created, and
* every node's **backward** is checked the moment it runs: after a node's
  backward closure executes, the gradients it accumulated into its
  parents are scanned.

The first violation raises :class:`AnomalyError` naming the op, the
Python creation site of the offending node, and the tensor's statistics.
Because gradients start finite (the seed gradient is checked too) and the
scan runs after *every* backward step, the first non-finite gradient is
always attributed to the node whose backward just produced it — never to
a downstream consumer.

Creation sites are captured as raw ``(file, line, function)`` frames at
op-record time (cheap; no source I/O) and formatted lazily only when an
anomaly fires, which is what keeps the documented overhead below 3x a
TFMAE training step (see ``docs/analysis.md``).

Integration: set ``TFMAEConfig.detect_anomaly=True`` and
:class:`~repro.core.trainer.TFMAETrainer` wraps each batch in this
context; an :class:`AnomalyError` is converted by
:meth:`repro.robustness.guards.DivergenceGuard.check_anomaly` into a
rollback report that names the culpable op.
"""

from __future__ import annotations

import sys

import numpy as np

from ..nn.tensor import Tensor, op_hook

__all__ = ["AnomalyError", "detect_anomaly", "tensor_stats"]

#: Frames of user code kept per creation site.
_SITE_DEPTH = 10

#: Stack frames skipped when capturing a site: _capture_site itself,
#: after_forward, the hook loop in Tensor._make, and the op method.
_SITE_SKIP = 3


def tensor_stats(array: np.ndarray) -> str:
    """Compact numeric summary used in anomaly reports."""
    finite = array[np.isfinite(array)]
    n_nan = int(np.isnan(array).sum())
    n_inf = int(np.isinf(array).sum())
    if finite.size:
        span = f"finite range [{finite.min():.4g}, {finite.max():.4g}]"
    else:
        span = "no finite values"
    return (
        f"shape={array.shape} dtype={array.dtype} "
        f"nan={n_nan} inf={n_inf} {span}"
    )


def _capture_site() -> tuple:
    """Raw (file, line, function) frames of the op's creation site.

    Walks ``f_back`` directly instead of ``traceback.extract_stack`` —
    no source-line lookup, so the per-op cost stays in the microseconds.
    """
    frame = sys._getframe(_SITE_SKIP)
    site = []
    while frame is not None and len(site) < _SITE_DEPTH:
        code = frame.f_code
        site.append((code.co_filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
    return tuple(site)


def _format_site(site: tuple | None) -> str:
    if not site:
        return "  (creation site not recorded)"
    return "\n".join(
        f'  File "{filename}", line {lineno}, in {function}'
        for filename, lineno, function in site
    )


class AnomalyError(RuntimeError):
    """A NaN/Inf appeared in a forward output or backward gradient.

    Attributes
    ----------
    op:
        Name of the op whose forward (``phase="forward"``) or backward
        (``phase="backward"``) produced the non-finite values.
    phase:
        ``"forward"`` or ``"backward"``.
    stats:
        Numeric summary of the offending array.
    site:
        Raw creation-site frames of the culpable node.
    """

    def __init__(self, op: str, phase: str, stats: str, site: tuple | None,
                 detail: str = ""):
        self.op = op
        self.phase = phase
        self.stats = stats
        self.site = site
        prefix = f"{detail} " if detail else ""
        super().__init__(
            f"{prefix}non-finite values in the {phase} of op {op!r}: {stats}\n"
            f"op created at:\n{_format_site(site)}"
        )


class _AnomalySanitizer:
    """The op hook installed by :class:`detect_anomaly`."""

    def __init__(self, check_forward: bool = True):
        self.check_forward = check_forward

    # Called by Tensor._make for every dispatched op on this thread.
    def after_forward(self, out: Tensor, parents: tuple) -> None:
        out._site = _capture_site()
        if self.check_forward and not np.all(np.isfinite(out.data)):
            raise AnomalyError(
                out.op or "leaf", "forward", tensor_stats(out.data), out._site
            )

    # Called by Tensor.backward right after `node`'s backward closure ran.
    def after_backward(self, node: Tensor) -> None:
        for parent in node._parents:
            grad = parent.grad
            if grad is not None and not np.all(np.isfinite(grad)):
                raise AnomalyError(
                    node.op or "leaf",
                    "backward",
                    tensor_stats(grad),
                    node._site,
                    detail=f"gradient flowing into parent of {node.op!r}:",
                )


class detect_anomaly:
    """Context manager enabling NaN/Inf sanitization on this thread.

    >>> from repro.analysis import detect_anomaly
    >>> with detect_anomaly():
    ...     loss, _ = model.loss(batch)       # doctest: +SKIP
    ...     loss.backward()

    Parameters
    ----------
    check_forward:
        Also scan every forward output (default).  Disable to check only
        backward gradients at roughly half the overhead.

    Raises
    ------
    AnomalyError
        At the first op whose forward output or backward gradients
        contain NaN/Inf, naming the op and its creation stack.
    """

    def __init__(self, check_forward: bool = True):
        self._hook = _AnomalySanitizer(check_forward=check_forward)
        self._ctx = None

    def __enter__(self) -> "detect_anomaly":
        self._ctx = op_hook(self._hook)
        self._ctx.__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        self._ctx.__exit__(*exc_info)
        self._ctx = None
