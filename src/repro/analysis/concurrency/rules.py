"""Concurrency rules over the tree-wide facts.

``LOCK002`` — lock-order inversion
    The union of every function's direct and call-transitive lock
    acquisitions forms one global "A held while acquiring B" graph; any
    cycle in it means two code paths can take the same locks in opposite
    orders, i.e. a deadlock waiting for the right interleaving.  Every
    edge that participates in a cycle is reported at its source site.

``BLK001`` — blocking call under a lock
    A call classified as blocking (file/socket/queue I/O, sleeps,
    subprocess, shared-memory attach, process spawn — see
    :mod:`.facts`) while any lock is held turns that lock into a
    convoy: every other thread needing it waits out the I/O.  Locks
    declared ``named_lock(..., blocking_ok=True)`` are exempt — their
    stated purpose is to serialise exactly that blocking operation — but
    their ordering is still tracked by LOCK002.

``TLS001`` — thread-local policy discipline
    The ``set_*``/``use_*`` policy trios (``nn/fused``, ``nn/jit``,
    ``nn/jit_train``, ``nn/dtype``) pair a process-wide default with a
    thread-local, context-manager override.  Three misuses are flagged:
    a bare ``use_*(...)`` expression that builds the context manager and
    never enters it (silently a no-op), ``with set_*(...)`` (the setter
    is not a context manager; the ``with`` raises at runtime or, worse,
    the "scope" never ends), and ``set_*`` calls inside the serving
    stack, where a process-global flip races every other request thread.
"""

from __future__ import annotations

from ..rules.base import LintViolation
from ..rules.policy import TLS_CODE, ThreadLocalPolicyRule
from .facts import TreeFacts

__all__ = [
    "LOCK_ORDER_CODE",
    "BLOCKING_CODE",
    "TLS_CODE",
    "ThreadLocalPolicyRule",
    "lock_order_violations",
    "blocking_violations",
    "build_edges",
    "find_cycle_edges",
]

LOCK_ORDER_CODE = "LOCK002"
BLOCKING_CODE = "BLK001"


# ----------------------------------------------------------------------
# interprocedural closure
# ----------------------------------------------------------------------
def close_summaries(tree: TreeFacts) -> tuple[dict, dict]:
    """Fixpoint of (locks-acquired, blocking-reasons) per function.

    ``locks[fn]`` is every lock ``fn`` may acquire, directly or through
    any resolvable callee; ``reasons[fn]`` likewise for blocking work.
    """
    locks: dict[tuple[str, str], set[str]] = {}
    reasons: dict[tuple[str, str], set[str]] = {}
    functions = {}
    for mod in tree.modules.values():
        for qualname, fn in mod.functions.items():
            key = (mod.module, qualname)
            functions[key] = fn
            locks[key] = {event.lock_id for event in fn.acquires}
            reasons[key] = {event.reason for event in fn.blocks}

    def lookup(target: tuple[str, str]):
        if target in functions:
            return target
        init = (target[0], target[1] + ".__init__")
        return init if init in functions else None

    changed = True
    while changed:
        changed = False
        for key, fn in functions.items():
            for call in fn.calls:
                if call.target is None:
                    continue
                callee = lookup(call.target)
                if callee is None or callee == key:
                    continue
                if not locks[callee] <= locks[key]:
                    locks[key] |= locks[callee]
                    changed = True
                if not reasons[callee] <= reasons[key]:
                    reasons[key] |= reasons[callee]
                    changed = True
    return locks, reasons


def build_edges(tree: TreeFacts) -> dict[tuple[str, str], list[dict]]:
    """Global "held -> acquired" edges with their source sites."""
    locks, _reasons = close_summaries(tree)

    def lookup(target):
        if target in locks:
            return target
        init = (target[0], target[1] + ".__init__")
        return init if init in locks else None

    edges: dict[tuple[str, str], list[dict]] = {}

    def add(a: str, b: str, path: str, line: int, col: int, via: str) -> None:
        if a == b:
            return  # reentrancy on one lock class, not an ordering edge
        edges.setdefault((a, b), []).append(
            {"path": path, "line": line, "col": col, "via": via})

    for mod in tree.modules.values():
        for fn in mod.functions.values():
            for event in fn.acquires:
                for held in event.held:
                    add(held, event.lock_id, fn.path, event.line, event.col,
                        f"{fn.module}.{fn.qualname}")
            for call in fn.calls:
                if not call.held or call.target is None:
                    continue
                callee = lookup(call.target)
                if callee is None:
                    continue
                for acquired in locks[callee]:
                    for held in call.held:
                        add(held, acquired, fn.path, call.line, call.col,
                            f"call to {call.display}")
    return edges


def find_cycle_edges(
    edges: dict[tuple[str, str], list[dict]],
) -> dict[tuple[str, str], list[str]]:
    """Edges participating in a cycle -> the SCC (lock set) they close."""
    adjacency: dict[str, set[str]] = {}
    for (a, b) in edges:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set())
    component = _tarjan_scc(adjacency)
    members: dict[int, list[str]] = {}
    for node, comp in component.items():
        members.setdefault(comp, []).append(node)
    cyclic = {}
    for (a, b), _sites in edges.items():
        if component[a] == component[b] and len(members[component[a]]) > 1:
            cyclic[(a, b)] = sorted(members[component[a]])
    return cyclic


def _tarjan_scc(adjacency: dict[str, set[str]]) -> dict[str, int]:
    """Iterative Tarjan; node -> strongly-connected-component id."""
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    component: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    comp_counter = [0]

    for root in sorted(adjacency):
        if root in index_of:
            continue
        work = [(root, iter(sorted(adjacency[root])))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, neighbours = work[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in index_of:
                    index_of[neighbour] = low[neighbour] = counter[0]
                    counter[0] += 1
                    stack.append(neighbour)
                    on_stack.add(neighbour)
                    work.append((neighbour, iter(sorted(adjacency[neighbour]))))
                    advanced = True
                    break
                if neighbour in on_stack:
                    low[node] = min(low[node], index_of[neighbour])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                comp = comp_counter[0]
                comp_counter[0] += 1
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = comp
                    if member == node:
                        break
    return component


# ----------------------------------------------------------------------
# violation emission
# ----------------------------------------------------------------------
def lock_order_violations(tree: TreeFacts) -> list[LintViolation]:
    edges = build_edges(tree)
    cyclic = find_cycle_edges(edges)
    violations = []
    seen = set()
    for (a, b), scc in sorted(cyclic.items()):
        for site in edges[(a, b)]:
            key = (site["path"], site["line"], a, b)
            if key in seen:
                continue
            seen.add(key)
            ring = " -> ".join(scc + [scc[0]])
            violations.append(LintViolation(
                rule=LOCK_ORDER_CODE,
                path=site["path"],
                line=site["line"],
                col=site["col"],
                message=(
                    f"lock-order inversion: acquires '{b}' while holding "
                    f"'{a}' ({site['via']}), closing cycle {ring}; impose "
                    f"a single acquisition order"
                ),
            ))
    return violations


def blocking_violations(tree: TreeFacts) -> list[LintViolation]:
    _locks, reasons = close_summaries(tree)

    def lookup(target):
        if target in reasons:
            return target
        init = (target[0], target[1] + ".__init__")
        return init if init in reasons else None

    def guarded(held: tuple[str, ...]) -> list[str]:
        """Held locks that are NOT declared blocking_ok."""
        return [lock for lock in held if not tree.blocking_ok(lock)]

    violations = []
    for mod in tree.modules.values():
        for fn in mod.functions.values():
            direct_sites = set()
            for event in fn.blocks:
                locked = guarded(event.held)
                direct_sites.add((event.line, event.col))
                if not locked:
                    continue
                violations.append(LintViolation(
                    rule=BLOCKING_CODE, path=fn.path,
                    line=event.line, col=event.col,
                    message=(
                        f"blocking call ({event.reason}) while holding "
                        f"lock(s) {', '.join(repr(l) for l in locked)}; move "
                        f"the I/O outside the critical section or declare "
                        f"the lock blocking_ok"
                    ),
                ))
            for call in fn.calls:
                if not call.held or call.target is None:
                    continue
                if (call.line, call.col) in direct_sites:
                    continue  # already reported as a direct blocking call
                callee = lookup(call.target)
                if callee is None or not reasons[callee]:
                    continue
                locked = guarded(call.held)
                if not locked:
                    continue
                blocking = ", ".join(sorted(reasons[callee]))
                violations.append(LintViolation(
                    rule=BLOCKING_CODE, path=fn.path,
                    line=call.line, col=call.col,
                    message=(
                        f"call to {call.display} performs blocking work "
                        f"({blocking}) while holding lock(s) "
                        f"{', '.join(repr(l) for l in locked)}"
                    ),
                ))
    return violations


# TLS001 lives in rules/policy.py (per-file, so it also runs under
# ``analyze lint``); re-exported here so the concurrency layer is one
# import surface.
