"""Per-module concurrency facts: locks, regions, blocking calls, call edges.

This is the extraction half of the static concurrency analyzer (the
global fixpoint and the rules live in :mod:`.rules`).  For every module
it records:

* **lock declarations** — ``threading.Lock/RLock/Condition`` and
  :func:`repro.analysis.lockcheck.named_lock` construction sites, mapped
  to stable lock identities (below);
* **per-function facts** — for each function/method: the lock-acquire
  events (``with lock:`` and ``lock.acquire()``) together with the locks
  lexically held at that point, the blocking calls (file/socket/queue
  I/O, sleeps, subprocess, shared-memory attach, process spawn) with the
  same held-set, and an approximate outgoing call list (self-methods,
  module functions, imported names) so :mod:`.rules` can close the facts
  transitively.

Lock identity
-------------
Deadlock analysis cares about lock *classes*, not instances, so ids are
canonical names: a ``named_lock("serve.pool")`` literal is its own id;
``self._lock`` assigned in class ``C`` of module ``m`` becomes
``m.C._lock``; a module-level ``LOCK = threading.Lock()`` becomes
``m.LOCK``.  A lock-looking attribute that cannot be traced to a
declaration resolves through the global attribute map when the attribute
name is unique tree-wide, else falls back to the spelled expression
(``attr:handle.send_lock``) — approximate, but it never merges two
unrelated locks into one node, so it cannot invent a cycle.

Everything here is conservative in the direction of *missing* facts
rather than fabricating them: an unresolvable call contributes no edges,
a lock we cannot name contributes a private node.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from ..rules.base import dotted_name

__all__ = [
    "LockDecl",
    "AcquireEvent",
    "BlockEvent",
    "CallEvent",
    "FunctionFacts",
    "ModuleFacts",
    "TreeFacts",
    "collect_module",
    "module_name_for",
]

_LOCKISH_NAME = re.compile(r"lock|mutex|cond|sema", re.IGNORECASE)

#: ``threading`` constructors recognised as lock declarations.
_LOCK_CTORS = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "condition",
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
}

# --- blocking-call tables -------------------------------------------------
#: dotted-name suffix -> reason (matched against the full dotted callee).
_BLOCKING_EXACT = {
    "time.sleep": "time.sleep",
    "os.system": "subprocess execution",
    "json.dump": "file write (json.dump)",
    "np.load": "artifact read (np.load)",
    "numpy.load": "artifact read (np.load)",
    "np.save": "artifact write",
    "np.savez": "artifact write",
    "np.savez_compressed": "artifact write",
    "numpy.savez_compressed": "artifact write",
}
_BLOCKING_PREFIXES = {
    "subprocess.": "subprocess execution",
    "socket.": "socket I/O",
}
#: bare callable names that block wherever they appear.
_BLOCKING_BARE = {
    "open": "file I/O (open)",
    "save_training_state": "artifact write",
    "load_training_state": "artifact read",
    "load_metadata": "artifact read",
    "SharedMemory": "shared-memory attach/create",
}
#: attribute names that block regardless of receiver.
_BLOCKING_ATTRS = {
    "sleep": "sleep",
    "read_text": "file I/O",
    "write_text": "file I/O",
    "read_bytes": "file I/O",
    "write_bytes": "file I/O",
    "glob": "directory I/O",
    "rglob": "directory I/O",
    "iterdir": "directory I/O",
    "mkdir": "directory I/O",
    "recv": "pipe/socket recv",
    "recv_bytes": "pipe/socket recv",
    "accept": "socket accept",
    "connect": "socket connect",
    "sendall": "socket send",
    "save_training_state": "artifact write",
    "load_training_state": "artifact read",
    "load_metadata": "artifact read",
    "SharedMemory": "shared-memory attach/create",
}
#: attribute names that block only on receivers whose last segment
#: contains one of the listed substrings (``self._queue.get`` blocks,
#: ``config.get`` does not).
_RECEIVER_GATED: dict[str, tuple[tuple[str, ...], str]] = {
    "get": (("queue", "inbox"), "queue.get"),
    "put": (("queue", "inbox"), "queue.put"),
    "join": (("proc", "thread", "worker", "supervisor", "receiver"),
             "thread/process join"),
    "send": (("conn", "sock", "pipe", "chan"), "pipe/socket send"),
    "wait": (("event", "gate", "cond", "stop", "done"), "event/condition wait"),
    "wait_for": (("cond",), "condition wait"),
    "start": (("proc",), "process spawn"),
    "result": (("future", "fut", "pending"), "future wait"),
}


@dataclass(frozen=True)
class LockDecl:
    """One lock identity, with where and how it was declared."""

    lock_id: str
    kind: str  # lock | rlock | condition
    blocking_ok: bool
    path: str
    line: int


@dataclass(frozen=True)
class AcquireEvent:
    lock_id: str
    line: int
    col: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class BlockEvent:
    reason: str
    line: int
    col: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class CallEvent:
    target: tuple[str, str] | None  # (module, qualname) when resolved
    display: str
    line: int
    col: int
    held: tuple[str, ...]


@dataclass
class FunctionFacts:
    module: str
    qualname: str
    path: str
    acquires: list[AcquireEvent] = field(default_factory=list)
    blocks: list[BlockEvent] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)


@dataclass
class ModuleFacts:
    module: str
    path: str
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    decls: list[LockDecl] = field(default_factory=list)
    #: attr/name -> lock_id, for this module's own declarations.
    local_locks: dict[tuple[str | None, str], str] = field(default_factory=dict)
    #: local name -> (module, attr-or-None) import bindings.
    imports: dict[str, tuple[str, str | None]] = field(default_factory=dict)
    #: functions (qualname) returning a named lock -> that lock id.
    lock_returns: dict[str, str] = field(default_factory=dict)
    classes: set[str] = field(default_factory=set)


class TreeFacts:
    """All modules' facts plus the cross-module resolution maps."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleFacts] = {}
        #: attribute name -> set of lock ids declared under it, tree-wide.
        self.attr_locks: dict[str, set[str]] = {}
        #: lock_id -> LockDecl (first declaration wins).
        self.decls: dict[str, LockDecl] = {}

    def add(self, mod: ModuleFacts) -> None:
        self.modules[mod.module] = mod
        for decl in mod.decls:
            self.decls.setdefault(decl.lock_id, decl)
        for (_cls, attr), lock_id in mod.local_locks.items():
            self.attr_locks.setdefault(attr, set()).add(lock_id)

    def blocking_ok(self, lock_id: str) -> bool:
        decl = self.decls.get(lock_id)
        return decl is not None and decl.blocking_ok

    def function(self, target: tuple[str, str]) -> FunctionFacts | None:
        mod = self.modules.get(target[0])
        if mod is None:
            return None
        fn = mod.functions.get(target[1])
        if fn is None:
            fn = mod.functions.get(target[1] + ".__init__")
        return fn


def module_name_for(path: str, root: str | None = None) -> str:
    """Dotted module name for a file path.

    Files inside a ``repro`` tree are named from the last ``repro``
    component (``.../src/repro/serve/pool.py`` -> ``repro.serve.pool``);
    anything else is named relative to ``root`` so test fixtures resolve
    their own absolute imports.
    """
    from pathlib import Path

    parts = list(Path(path).with_suffix("").parts)
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    elif root is not None:
        try:
            parts = list(Path(path).with_suffix("").relative_to(Path(root)).parts)
        except ValueError:
            parts = [Path(path).stem]
    else:
        parts = [Path(path).stem]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or Path(path).stem


# ----------------------------------------------------------------------
# declaration extraction (phase A)
# ----------------------------------------------------------------------
def _lock_ctor_of(node: ast.AST) -> tuple[str, str | None, bool] | None:
    """(kind, literal_name, blocking_ok) when ``node`` constructs a lock."""
    if not isinstance(node, ast.Call):
        return None
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    if dotted in _LOCK_CTORS:
        return (_LOCK_CTORS[dotted], None, False)
    if dotted == "named_lock" or dotted.endswith(".named_lock"):
        name = None
        if node.args and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            name = node.args[0].value
        kind, blocking_ok = "lock", False
        for keyword in node.keywords:
            if keyword.arg == "kind" and isinstance(keyword.value, ast.Constant):
                kind = str(keyword.value.value)
            if keyword.arg == "blocking_ok" \
                    and isinstance(keyword.value, ast.Constant):
                blocking_ok = bool(keyword.value.value)
        return (kind, name, blocking_ok)
    return None


class _DeclCollector(ast.NodeVisitor):
    """Find every lock declaration in a module (phase A)."""

    def __init__(self, mod: ModuleFacts):
        self.mod = mod
        self._class: str | None = None

    def _declare(self, cls: str | None, attr: str, ctor, node: ast.AST) -> str:
        kind, literal, blocking_ok = ctor
        if literal:
            lock_id = literal
        elif cls:
            lock_id = f"{self.mod.module}.{cls}.{attr}"
        else:
            lock_id = f"{self.mod.module}.{attr}"
        self.mod.decls.append(LockDecl(lock_id, kind, blocking_ok,
                                       self.mod.path, node.lineno))
        self.mod.local_locks[(cls, attr)] = lock_id
        return lock_id

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        outer, self._class = self._class, node.name
        self.mod.classes.add(node.name)
        self.generic_visit(node)
        self._class = outer

    def visit_Assign(self, node: ast.Assign) -> None:
        ctor = _lock_ctor_of(node.value)
        if ctor:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._declare(self._class, target.id, ctor, node)
                elif (isinstance(target, ast.Attribute)
                      and isinstance(target.value, ast.Name)
                      and target.value.id == "self"):
                    self._declare(self._class, target.attr, ctor, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # Locks handed over as keyword arguments at construction sites
        # (e.g. ``_WorkerHandle(..., send_lock=named_lock(...))``) still
        # declare the attribute they will live under.
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            ctor = _lock_ctor_of(keyword.value)
            if ctor:
                self._declare(None, keyword.arg, ctor, keyword.value)
        # A standalone named_lock() literal declares its id even when the
        # assignment target is not a plain name (dict values, returns).
        ctor = _lock_ctor_of(node)
        if ctor and ctor[1]:
            kind, literal, blocking_ok = ctor
            self.mod.decls.append(LockDecl(literal, kind, blocking_ok,
                                           self.mod.path, node.lineno))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        qualname = f"{self._class}.{node.name}" if self._class else node.name
        # Helper methods that *return* a lock (``_name_lock``): remember
        # the named_lock literal inside so call sites resolve to it.
        if _LOCKISH_NAME.search(node.name):
            for sub in ast.walk(node):
                ctor = _lock_ctor_of(sub)
                if ctor and ctor[1]:
                    self.mod.lock_returns[qualname] = ctor[1]
                    break
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.mod.imports[local] = (
                alias.name if alias.asname else alias.name.split(".")[0],
                None,
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            parts = self.mod.module.split(".")
            parts = parts[: len(parts) - node.level]
            base = ".".join(parts + ([node.module] if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            self.mod.imports[alias.asname or alias.name] = (base, alias.name)


# ----------------------------------------------------------------------
# function walking (phase B)
# ----------------------------------------------------------------------
class _FunctionWalker:
    """Walk one function body tracking the lexically-held lock set."""

    def __init__(self, tree: TreeFacts, mod: ModuleFacts,
                 qualname: str, cls: str | None):
        self.tree = tree
        self.mod = mod
        self.cls = cls
        self.facts = FunctionFacts(mod.module, qualname, mod.path)
        self.aliases: dict[str, str] = {}

    # -- lock resolution -----------------------------------------------
    def resolve_lock(self, expr: ast.AST) -> str | None:
        if isinstance(expr, ast.Name):
            if expr.id in self.aliases:
                return self.aliases[expr.id]
            lock_id = self.mod.local_locks.get((None, expr.id))
            if lock_id:
                return lock_id
            if _LOCKISH_NAME.search(expr.id):
                return f"{self.mod.module}.{expr.id}"
            return None
        if isinstance(expr, ast.Attribute):
            attr = expr.attr
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                lock_id = self.mod.local_locks.get((self.cls, attr))
                if lock_id:
                    return lock_id
            if not _LOCKISH_NAME.search(attr):
                return None
            for (cls, name), lock_id in self.mod.local_locks.items():
                if name == attr:
                    return lock_id
            candidates = self.tree.attr_locks.get(attr, set())
            if len(candidates) == 1:
                return next(iter(candidates))
            spelled = dotted_name(expr)
            return f"attr:{spelled or attr}"
        if isinstance(expr, ast.Call):
            # ``with self._name_lock(name):`` — a lock-returning helper.
            func = expr.func
            if isinstance(func, ast.Attribute) and _LOCKISH_NAME.search(func.attr):
                if isinstance(func.value, ast.Name) and func.value.id == "self" \
                        and self.cls:
                    qualname = f"{self.cls}.{func.attr}"
                    if qualname in self.mod.lock_returns:
                        return self.mod.lock_returns[qualname]
                    return f"{self.mod.module}.{qualname}()"
            return None
        if isinstance(expr, ast.Subscript):
            base = self.resolve_lock(expr.value)
            return f"{base}[]" if base else None
        return None

    # -- call resolution -----------------------------------------------
    def resolve_call(self, func: ast.AST) -> tuple[tuple[str, str] | None, str]:
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.mod.imports:
                module, attr = self.mod.imports[name]
                if attr is not None:
                    return (module, attr), f"{module}.{attr}"
                return None, name
            if name in self.mod.functions or f"{name}.__init__" in self.mod.functions:
                return (self.mod.module, name), f"{self.mod.module}.{name}"
            return None, name
        if isinstance(func, ast.Attribute):
            spelled = dotted_name(func) or func.attr
            if isinstance(func.value, ast.Name):
                base = func.value.id
                if base == "self" and self.cls:
                    return ((self.mod.module, f"{self.cls}.{func.attr}"),
                            f"{self.mod.module}.{self.cls}.{func.attr}")
                if base in self.mod.imports:
                    module, attr = self.mod.imports[base]
                    if attr is None:
                        return (module, func.attr), f"{module}.{func.attr}"
                    # from x import Klass; Klass.method(...)
                    return ((module, f"{attr}.{func.attr}"),
                            f"{module}.{attr}.{func.attr}")
            return None, spelled
        return None, "<call>"

    # -- blocking classification ----------------------------------------
    def blocking_reason(self, call: ast.Call, held: tuple[str, ...]) -> str | None:
        func = call.func
        dotted = dotted_name(func)
        if dotted:
            for suffix, reason in _BLOCKING_EXACT.items():
                if dotted == suffix or dotted.endswith("." + suffix):
                    return reason
            for prefix, reason in _BLOCKING_PREFIXES.items():
                if dotted.startswith(prefix) or f".{prefix}" in dotted + ".":
                    return reason
        if isinstance(func, ast.Name):
            if func.id in _BLOCKING_BARE:
                return _BLOCKING_BARE[func.id]
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        receiver = func.value
        segment = receiver.attr if isinstance(receiver, ast.Attribute) else (
            receiver.id if isinstance(receiver, ast.Name) else "")
        if attr in ("wait", "wait_for"):
            # ``cond.wait()`` with the condition's own lock held is the
            # condition-variable idiom (wait releases it) — never flag.
            receiver_lock = self.resolve_lock(receiver)
            if receiver_lock is not None and receiver_lock in held:
                return None
        if attr in _BLOCKING_ATTRS:
            return _BLOCKING_ATTRS[attr]
        gated = _RECEIVER_GATED.get(attr)
        if gated is not None:
            substrings, reason = gated
            lowered = segment.lower()
            if any(sub in lowered for sub in substrings):
                return reason
        return None

    # -- statement walking ----------------------------------------------
    def walk(self, body: list[ast.stmt]) -> None:
        self._body(body, ())

    def _body(self, stmts, held: tuple[str, ...]) -> tuple[str, ...]:
        for stmt in stmts:
            held = self._stmt(stmt, held)
        return held

    def _stmt(self, stmt: ast.stmt, held: tuple[str, ...]) -> tuple[str, ...]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return held  # collected separately; runs in another context
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                # The with-item expression runs BEFORE the lock is held.
                self._expr(item.context_expr, inner)
                lock_id = self.resolve_lock(item.context_expr)
                if lock_id is not None:
                    self.facts.acquires.append(AcquireEvent(
                        lock_id, item.context_expr.lineno,
                        item.context_expr.col_offset, inner))
                    inner = inner + (lock_id,)
            self._body(stmt.body, inner)
            return held
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if isinstance(call.func, ast.Attribute):
                if call.func.attr == "acquire":
                    lock_id = self.resolve_lock(call.func.value)
                    if lock_id is not None:
                        for arg in call.args:
                            self._expr(arg, held)
                        self.facts.acquires.append(AcquireEvent(
                            lock_id, call.lineno, call.col_offset, held))
                        return held + (lock_id,)
                if call.func.attr == "release":
                    lock_id = self.resolve_lock(call.func.value)
                    if lock_id is not None and lock_id in held:
                        index = len(held) - 1 - held[::-1].index(lock_id)
                        return held[:index] + held[index + 1:]
            self._expr(call, held)
            return held
        if isinstance(stmt, ast.Try):
            for handler in stmt.handlers:
                self._body(handler.body, held)
            self._body(stmt.orelse, held)
            after = self._body(stmt.body, held)
            return self._body(stmt.finalbody, after)
        if isinstance(stmt, ast.If):
            self._expr(stmt.test, held)
            self._body(stmt.body, held)
            self._body(stmt.orelse, held)
            return held
        if isinstance(stmt, ast.While):
            self._expr(stmt.test, held)
            self._body(stmt.body, held)
            self._body(stmt.orelse, held)
            return held
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, held)
            self._body(stmt.body, held)
            self._body(stmt.orelse, held)
            return held
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value, held)
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                target = stmt.targets[0].id
                ctor = _lock_ctor_of(stmt.value)
                if ctor:
                    _kind, literal, _ok = ctor
                    self.aliases[target] = literal or f"{self.mod.module}.{target}"
                else:
                    resolved = (self.resolve_lock(stmt.value)
                                if _LOCKISH_NAME.search(target) else None)
                    if resolved:
                        self.aliases[target] = resolved
            return held
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child, held)
        return held

    def _expr(self, expr: ast.AST, held: tuple[str, ...]) -> None:
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue  # runs later, in an unknown lock context
            if isinstance(node, ast.Call):
                self._call(node, held)
            stack.extend(ast.iter_child_nodes(node))

    def _call(self, call: ast.Call, held: tuple[str, ...]) -> None:
        target, display = self.resolve_call(call.func)
        self.facts.calls.append(CallEvent(
            target, display, call.lineno, call.col_offset, held))
        reason = self.blocking_reason(call, held)
        if reason is not None:
            self.facts.blocks.append(BlockEvent(
                reason, call.lineno, call.col_offset, held))


def _nested_defs(node) -> list:
    """Immediate nested defs of ``node``, not crossing def boundaries."""
    found = []
    stack = [child for stmt in node.body for child in [stmt]]
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            found.append(sub)
            continue
        if isinstance(sub, (ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(sub))
    return found


class _FunctionCollector(ast.NodeVisitor):
    """Run a :class:`_FunctionWalker` over every def in the module."""

    def __init__(self, tree: TreeFacts, mod: ModuleFacts):
        self.tree = tree
        self.mod = mod
        self._class: str | None = None
        self._prefix: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        outer, self._class = self._class, node.name
        self.generic_visit(node)
        self._class = outer

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function(node)

    def _function(self, node) -> None:
        parts = self._prefix + ([self._class] if self._class else []) + [node.name]
        qualname = ".".join(parts)
        walker = _FunctionWalker(self.tree, self.mod, qualname, self._class)
        walker.walk(node.body)
        self.mod.functions[qualname] = walker.facts
        # Nested defs run with their own (empty) held set but still get
        # their blocking/acquire facts collected.
        outer_prefix, outer_class = self._prefix, self._class
        self._prefix, self._class = parts, None
        for sub in _nested_defs(node):
            self._function(sub)
        self._prefix, self._class = outer_prefix, outer_class

    def generic_visit(self, node):
        # Only descend into module/class bodies looking for defs; the
        # walker handles function interiors itself.
        if isinstance(node, (ast.Module, ast.ClassDef)):
            super().generic_visit(node)


def collect_module(source: str, path: str, module: str,
                   tree_facts: TreeFacts) -> ModuleFacts:
    """Phase-A declarations for one module (call before phase B)."""
    mod = ModuleFacts(module=module, path=path)
    parsed = ast.parse(source, filename=path)
    _DeclCollector(mod).visit(parsed)
    mod._parsed = parsed  # cached for phase B
    return mod


def walk_module(mod: ModuleFacts, tree_facts: TreeFacts) -> None:
    """Phase-B function walking, once every module's declarations exist."""
    _FunctionCollector(tree_facts, mod).visit(mod._parsed)
