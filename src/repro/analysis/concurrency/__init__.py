"""Static concurrency analysis: lock order, blocking under lock, TLS policy.

The third analysis layer (after the repo linter and the shape checker):
an interprocedural pass over the whole tree that builds the global
lock-acquisition graph and checks three invariants a per-file linter
cannot see::

    from repro.analysis import analyze_concurrency, format_text
    print(format_text(analyze_concurrency(["src/repro"])))

or ``python -m repro analyze concurrency [--json]``.  Violations reuse
the linter's :class:`~repro.analysis.rules.base.LintViolation` shape,
reporters, and per-line ``# repro: noqa[CODE]`` suppression policy
(every in-tree suppression carries a justification comment).

Rules: ``LOCK002`` (lock-order inversion — a cycle in the "A held while
acquiring B" graph), ``BLK001`` (blocking I/O while holding a lock that
is not declared ``blocking_ok``), ``TLS001`` (misuse of the
``set_*``/``use_*`` thread-local policy trios; this one is per-file and
also runs under ``analyze lint``).  The dynamic complement — observing
the graph the process actually builds — is
:mod:`repro.analysis.lockcheck`.
"""

from __future__ import annotations

from pathlib import Path

from ..lint import suppressions_in
from ..rules.base import LintViolation
from .facts import TreeFacts, collect_module, module_name_for, walk_module
from .rules import (
    BLOCKING_CODE,
    LOCK_ORDER_CODE,
    TLS_CODE,
    ThreadLocalPolicyRule,
    blocking_violations,
    build_edges,
    find_cycle_edges,
    lock_order_violations,
)

__all__ = [
    "LOCK_ORDER_CODE",
    "BLOCKING_CODE",
    "TLS_CODE",
    "CONCURRENCY_CODES",
    "ThreadLocalPolicyRule",
    "collect_tree",
    "analyze_concurrency",
    "lock_graph_summary",
]

CONCURRENCY_CODES = (LOCK_ORDER_CODE, BLOCKING_CODE, TLS_CODE)


def _python_files(paths) -> list[tuple[Path, str]]:
    """(file, root) pairs; root anchors module naming for loose trees."""
    files: list[tuple[Path, str]] = []
    for path in paths:
        target = Path(path)
        if target.is_dir():
            files.extend((f, str(target)) for f in sorted(target.rglob("*.py")))
        else:
            files.append((target, str(target.parent)))
    return files


def collect_tree(paths) -> tuple[TreeFacts, dict[str, str]]:
    """Parse every file into :class:`TreeFacts`; also return path->source."""
    tree = TreeFacts()
    sources: dict[str, str] = {}
    modules = []
    for file_path, root in _python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        path = str(file_path)
        sources[path] = source
        module = module_name_for(path, root)
        mod = collect_module(source, path, module, tree)
        tree.add(mod)
        modules.append(mod)
    for mod in modules:  # phase B needs every declaration in place
        walk_module(mod, tree)
    return tree, sources


def analyze_concurrency(paths, respect_noqa: bool = True) -> list[LintViolation]:
    """Run LOCK002 + BLK001 + TLS001 over ``paths``; sorted violations."""
    tree, sources = collect_tree(paths)
    violations = lock_order_violations(tree) + blocking_violations(tree)

    tls_rule = ThreadLocalPolicyRule()
    import ast as _ast

    for path, source in sources.items():
        parsed = _ast.parse(source, filename=path)
        violations.extend(tls_rule.check(parsed, path))

    if respect_noqa:
        kept = []
        suppression_cache = {
            path: suppressions_in(source) for path, source in sources.items()
        }
        for violation in violations:
            codes = suppression_cache.get(violation.path, {}).get(
                violation.line, frozenset())
            if violation.rule not in codes:
                kept.append(violation)
        violations = kept

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def lock_graph_summary(paths) -> dict:
    """The global lock-order graph: nodes, edges, cycles (JSON-shaped)."""
    tree, _sources = collect_tree(paths)
    edges = build_edges(tree)
    cyclic = find_cycle_edges(edges)
    locks = sorted({name for pair in edges for name in pair}
                   | set(tree.decls))
    return {
        "locks": locks,
        "edges": [
            {"from": a, "to": b, "sites": sites}
            for (a, b), sites in sorted(edges.items())
        ],
        "cycles": sorted({tuple(scc) for scc in cyclic.values()}),
    }
