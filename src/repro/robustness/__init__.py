"""``repro.robustness`` — fault tolerance for training and streaming.

The deployments that motivate the paper (Section I: water treatment,
spacecraft, server fleets) are exactly the settings where long training
runs die mid-epoch and live telemetry arrives corrupted.  This subpackage
makes both hot paths survivable:

* :mod:`~repro.robustness.checkpoint` — atomic training-state
  checkpoints (model + optimizer + RNG + metadata) with config
  fingerprinting, powering ``--resume``;
* :mod:`~repro.robustness.guards` — divergence detection (non-finite
  loss/gradients, loss explosion) driving rollback + learning-rate
  backoff in the trainer;
* :mod:`~repro.robustness.faults` — :class:`FaultPolicy`, the streaming
  degradation contract (impute, clamp, reject, fall back) consumed by
  :class:`~repro.streaming.StreamingDetector`;
* :mod:`~repro.robustness.chaos` — :class:`ChaosHarness`, fault
  injection against a live ``repro.serve`` stack (corrupt/truncated
  artifacts, slow loads, transient failures, worker exceptions, queue
  saturation) asserting the graceful-degradation contract.
"""

from ..nn.serialization import CheckpointError
from .chaos import CHAOS_FAULTS, ChaosHarness
from .checkpoint import CheckpointManager, config_fingerprint, fingerprint_mismatches
from .faults import FaultPolicy, sanitize_observation
from .guards import DivergenceGuard, GuardReport, TrainingDivergedError

__all__ = [
    "CheckpointError",
    "CheckpointManager",
    "config_fingerprint",
    "fingerprint_mismatches",
    "DivergenceGuard",
    "GuardReport",
    "TrainingDivergedError",
    "FaultPolicy",
    "sanitize_observation",
    "CHAOS_FAULTS",
    "ChaosHarness",
]
