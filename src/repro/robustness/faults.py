"""Streaming fault policy: what to do with corrupted telemetry.

Live sensors drop out (NaN bursts), stick, spike to non-physical values,
or change scale; a scoring service that raises on the first bad packet
is useless in precisely the incidents it exists for.  A
:class:`FaultPolicy` tells :class:`~repro.streaming.StreamingDetector`
how to degrade instead:

* **impute** — replace NaN/Inf components with the per-feature median of
  the rolling context buffer (the best label-free local estimate);
* **clamp** — squash values beyond ``clamp_sigma`` buffer standard
  deviations back to the boundary, defanging non-physical spikes while
  leaving the (large but finite) anomaly signal measurable;
* **reject** — dimension-mismatched or (with imputation disabled)
  non-finite observations produce a flagged event instead of an
  exception and never enter the buffer;
* **fall back** — when the primary detector's ``score`` raises or goes
  non-finite, a cheap secondary detector (e.g. a classical baseline)
  takes over, with periodic recovery probes of the primary.

Every intervention is recorded in the emitted
:class:`~repro.streaming.StreamEvent`'s ``flags`` so downstream alerting
can distinguish a clean score from a degraded one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..detector import BaseDetector

__all__ = ["FaultPolicy", "sanitize_observation"]


@dataclass(frozen=True)
class FaultPolicy:
    """Degradation contract for :class:`~repro.streaming.StreamingDetector`.

    Parameters
    ----------
    impute_nonfinite:
        Replace NaN/Inf components from the rolling buffer instead of
        rejecting the observation.
    clamp_sigma:
        Clamp each feature to ``mean ± clamp_sigma·std`` of the buffer;
        ``None`` disables clamping.  Use values well above the anomaly
        magnitudes you care about (e.g. 20) so detection survives.
    fallback:
        A fitted, threshold-calibrated detector that scores the window
        when the primary raises or returns a non-finite score.  ``None``
        means degraded updates emit ``score=nan`` flagged events.
    recovery_every:
        While degraded, retry the primary every this many updates; on
        success the stream flips back and flags the event ``recovered``.
    """

    impute_nonfinite: bool = True
    clamp_sigma: float | None = None
    fallback: BaseDetector | None = None
    recovery_every: int = 25

    def __post_init__(self) -> None:
        if self.clamp_sigma is not None and self.clamp_sigma <= 0:
            raise ValueError(f"clamp_sigma must be positive, got {self.clamp_sigma}")
        if self.recovery_every < 1:
            raise ValueError(f"recovery_every must be >= 1, got {self.recovery_every}")
        if self.fallback is not None and self.fallback.threshold_ is None:
            raise ValueError(
                "fallback detector must be fit and threshold-calibrated "
                "before use in a FaultPolicy"
            )


def sanitize_observation(
    observation: np.ndarray,
    context: np.ndarray | None,
    policy: FaultPolicy,
) -> tuple[np.ndarray | None, tuple[str, ...]]:
    """Apply impute/clamp repairs to one observation.

    Parameters
    ----------
    observation:
        1-D feature vector, possibly containing NaN/Inf.
    context:
        ``(n, features)`` stack of the (already finite) rolling buffer,
        or ``None``/empty before any history exists.
    policy:
        The active :class:`FaultPolicy`.

    Returns
    -------
    ``(repaired, flags)`` — ``repaired`` is ``None`` when the policy
    rejects the observation outright.
    """
    obs = np.array(observation, dtype=np.float64)
    flags: list[str] = []
    bad = ~np.isfinite(obs)
    if bad.any():
        if not policy.impute_nonfinite:
            return None, ("rejected_nonfinite",)
        if context is not None and len(context):
            fill = np.median(context, axis=0)
        else:
            fill = np.zeros_like(obs)
        obs[bad] = fill[bad]
        flags.append("imputed")
    if policy.clamp_sigma is not None and context is not None and len(context) >= 2:
        mean = context.mean(axis=0)
        std = context.std(axis=0) + 1e-8
        clipped = np.clip(
            obs, mean - policy.clamp_sigma * std, mean + policy.clamp_sigma * std
        )
        if np.any(clipped != obs):
            flags.append("clamped")
        obs = clipped
    return obs, tuple(flags)
