"""Training-state checkpoint management for crash/resume.

A :class:`CheckpointManager` owns one rolling checkpoint file inside a
directory.  Every :meth:`~CheckpointManager.save` goes through
:func:`repro.nn.serialization.atomic_savez`, so the previous checkpoint
survives any crash mid-write; :meth:`~CheckpointManager.load` restores
model weights, optimizer state and the JSON metadata (epoch, RNG state,
probe AUC, config fingerprint) in one call.

Config fingerprints guard against resuming with silently different
hyper-parameters: the trainer stores :func:`config_fingerprint` at save
time and refuses (with the differing field names) when the resuming
config disagrees on anything that changes the optimisation trajectory.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import numpy as np

from ..nn.module import Module
from ..nn.optim import Optimizer
from ..nn.serialization import (
    CheckpointError,
    load_training_state,
    save_training_state,
)

__all__ = ["CheckpointManager", "config_fingerprint", "fingerprint_mismatches"]


def config_fingerprint(config, exclude: tuple[str, ...] = ()) -> dict:
    """JSON-serialisable snapshot of a config dataclass's fields.

    ``exclude`` names run-control fields (resume flags, epoch budgets,
    checkpoint locations) that may legitimately differ between the run
    that wrote a checkpoint and the run resuming from it.
    """
    if dataclasses.is_dataclass(config):
        raw = dataclasses.asdict(config)
    elif isinstance(config, dict):
        raw = dict(config)
    else:
        raise TypeError(f"cannot fingerprint {type(config).__name__}")
    # Round-trip-stable representation: JSON has no int/float distinction
    # guarantees across dump/load, so normalise values to str for compare.
    return {
        key: repr(value) for key, value in sorted(raw.items()) if key not in exclude
    }


def fingerprint_mismatches(saved: dict, current: dict) -> list[str]:
    """Field names whose values differ between two fingerprints."""
    keys = set(saved) | set(current)
    return sorted(
        key for key in keys if saved.get(key) != current.get(key)
    )


class CheckpointManager:
    """One rolling, atomically-written training checkpoint in a directory.

    Parameters
    ----------
    directory:
        Where the checkpoint lives; created on first save.
    filename:
        Archive name inside ``directory``.
    """

    DEFAULT_FILENAME = "training_state.npz"

    def __init__(self, directory: str | Path, filename: str = DEFAULT_FILENAME):
        self.directory = Path(directory)
        self.path = self.directory / filename

    def exists(self) -> bool:
        return self.path.exists()

    def save(
        self,
        model: Module,
        optimizer: Optimizer | None,
        metadata: dict,
        extra_arrays: dict[str, np.ndarray] | None = None,
    ) -> Path:
        """Atomically persist the full training state."""
        return save_training_state(
            self.path, model, optimizer, metadata=metadata, extra_arrays=extra_arrays
        )

    def load(
        self,
        model: Module,
        optimizer: Optimizer | None = None,
    ) -> tuple[dict, dict[str, np.ndarray]]:
        """Restore the checkpoint into ``model``/``optimizer``.

        Returns ``(metadata, extra_arrays)``; raises
        :class:`~repro.nn.serialization.CheckpointError` when absent or
        incompatible.
        """
        if not self.exists():
            raise CheckpointError(f"no checkpoint found at {self.path}")
        return load_training_state(self.path, model, optimizer)

    def verify_config(self, metadata: dict, config, exclude: tuple[str, ...] = ()) -> None:
        """Raise when the checkpoint was written under a different config."""
        saved = metadata.get("config_fingerprint")
        if saved is None:
            return
        mismatches = fingerprint_mismatches(saved, config_fingerprint(config, exclude))
        if mismatches:
            raise CheckpointError(
                f"checkpoint {self.path} was written with a different config; "
                f"differing fields: {', '.join(mismatches)}. Delete the "
                "checkpoint directory or restore the original settings."
            )
