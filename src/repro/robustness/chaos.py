"""Fault-injection (chaos) harness for the serve stack.

The serving guarantees worth having are the ones that hold while things
break: a corrupt artifact must quarantine and fall back, a slow disk
must not stall healthy models, a crashing worker must fail only the
requests it held, a full queue must shed load instead of queueing
unboundedly.  This harness injects exactly those faults into a *live*
:class:`~repro.serve.server.InferenceServer` — through seams the serve
stack exposes for the purpose, never by monkey-patching internals it
doesn't own — so the chaos suite (``make chaos``) and
``benchmarks/bench_lifecycle_recovery.py`` can assert graceful
degradation end to end.

Fault taxonomy (:data:`CHAOS_FAULTS`):

``corrupt_artifact`` / ``truncated_artifact``
    The live version's ``.npz`` is overwritten with garbage / truncated
    mid-archive.  Expected: typed error (never a raw zip traceback),
    artifact quarantined to ``<root>/quarantine/``, previous version
    served when one exists.
``slow_load``
    Every artifact read of the targeted models stalls.  Expected: other
    models keep serving (per-name load locks), the stalled model's
    requests complete once the read finishes.
``transient_load_failure``
    Reads raise :class:`~repro.serve.errors.TransientFault` N times (or
    forever).  Expected: capped-exponential-backoff retries absorb short
    bursts; persistent failure opens the per-model circuit breaker,
    which serves the last-good resident version or answers 503 with
    ``Retry-After``.
``worker_exception``
    The batcher's detector resolution raises mid-batch.  Expected: only
    the affected requests error (500), the worker survives, subsequent
    requests score normally.
``queue_saturation``
    Workers are gated shut and the bounded queue filled.  Expected:
    further submits shed immediately (429 ``Overloaded``), nothing is
    lost — every parked request completes once the gate opens.
``worker_process_kill``
    A process-pool worker is SIGKILLed mid-service (``--procs`` tier
    only).  Expected: the supervisor detects the death, fails only that
    worker's in-flight requests as retryable, re-routes its shard on
    the consistent-hash ring, respawns through the slot's circuit
    breaker, and routes the shard back — models on other workers keep
    serving throughout.

All injectors are reversible; use the harness as a context manager so
``clear()`` restores the pristine server even when an assertion fails.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from pathlib import Path

import numpy as np

from ..serve.errors import Overloaded, TransientFault
from ..serve.server import InferenceServer

__all__ = ["CHAOS_FAULTS", "ChaosHarness"]

#: The fault taxonomy: name → (target, expected degradation).  Shared by
#: the chaos tests, the recovery bench, and the docs fault matrix.
CHAOS_FAULTS: dict[str, dict[str, str]] = {
    "corrupt_artifact": {
        "target": "registry",
        "expect": "typed error; artifact quarantined; previous version served",
    },
    "truncated_artifact": {
        "target": "registry",
        "expect": "typed error (no raw zipfile traceback); quarantine + fallback",
    },
    "slow_load": {
        "target": "registry",
        "expect": "healthy models unaffected; stalled model completes after the read",
    },
    "transient_load_failure": {
        "target": "registry",
        "expect": "backoff retries absorb bursts; persistent failure opens the breaker",
    },
    "worker_exception": {
        "target": "scheduler",
        "expect": "only held requests fail; worker survives; next batch scores",
    },
    "queue_saturation": {
        "target": "scheduler",
        "expect": "immediate shed (429); parked requests all complete on release",
    },
    "worker_process_kill": {
        "target": "pool",
        "expect": "death detected; shard re-routed; worker respawned through "
                  "the slot breaker; healthy models keep serving throughout",
    },
}


class ChaosHarness:
    """Inject faults into a live server; restore everything on exit.

    >>> with ChaosHarness(server) as chaos:          # doctest: +SKIP
    ...     chaos.corrupt_artifact("tfmae")
    ...     # assert the next /score falls back to the prior version
    """

    def __init__(self, server: InferenceServer):
        self.server = server
        self.registry = server.registry
        self.batcher = server.batcher
        #: The process-pool tier, when the server runs one (``--procs``).
        self.pool = getattr(server, "pool", None)
        self._original_detector_for = self.batcher.detector_for
        self._gate: threading.Event | None = None
        self._parked: list[Future] = []

    def __enter__(self) -> "ChaosHarness":
        return self

    def __exit__(self, *exc_info) -> None:
        self.clear()

    # ------------------------------------------------------------------
    # artifact faults
    # ------------------------------------------------------------------
    def corrupt_artifact(self, name: str, version: str | None = None,
                         truncate: bool = False) -> Path:
        """Damage the (live) artifact on disk and evict it from memory.

        ``truncate=True`` cuts the archive mid-member — the fault that
        historically surfaced as a raw ``zipfile.BadZipFile`` — instead
        of overwriting with garbage bytes.  Cache and last-good entries
        are evicted so the next load actually reads the damaged file.
        """
        if version is None:
            version = self.registry.live_version(name)
        path = self.registry._artifact_path(name, version)
        if truncate:
            data = path.read_bytes()
            path.write_bytes(data[: max(16, len(data) // 3)])
        else:
            path.write_bytes(b"\x00chaos is not an npz archive\x00" * 8)
        self.evict(name, version)
        return path

    def evict(self, name: str, version: str | None = None) -> None:
        """Drop cached instances so the next load hits the disk."""
        with self.registry._lock:
            if version is None:
                for key in [k for k in self.registry._cache if k[0] == name]:
                    del self.registry._cache[key]
            else:
                self.registry._cache.pop((name, version), None)
            self.registry._last_good.pop(name, None)

    # ------------------------------------------------------------------
    # load-path faults (registry seam)
    # ------------------------------------------------------------------
    def inject_slow_load(self, delay: float, models: set[str] | None = None) -> None:
        """Stall every artifact read of the targeted models by ``delay``s."""

        def hook(name: str, version: str) -> None:
            if models is None or name in models:
                time.sleep(delay)

        self.registry.load_fault_hook = hook

    def inject_transient_load_failures(
        self, times: int | None = 1, models: set[str] | None = None
    ) -> dict:
        """Make artifact reads raise :class:`TransientFault`.

        ``times`` bounds the total number of injected failures
        (``None`` = fail forever, the breaker-opening scenario).  Returns
        the mutable state dict; ``state["injected"]`` counts firings.
        """
        state = {"left": times, "injected": 0}
        lock = threading.Lock()

        def hook(name: str, version: str) -> None:
            if models is not None and name not in models:
                return
            with lock:
                if state["left"] is not None and state["left"] <= 0:
                    return
                if state["left"] is not None:
                    state["left"] -= 1
                state["injected"] += 1
            raise TransientFault(
                f"chaos: injected transient load failure for {name}:{version}"
            )

        self.registry.load_fault_hook = hook
        return state

    def clear_load_faults(self) -> None:
        self.registry.load_fault_hook = None

    # ------------------------------------------------------------------
    # scheduler faults
    # ------------------------------------------------------------------
    def inject_worker_exception(
        self, times: int = 1, models: set[str] | None = None
    ) -> dict:
        """Make detector resolution raise inside the worker, ``times`` times.

        Exercises the batcher's failure isolation: the exception must be
        forwarded to exactly the requests in the failing group, and the
        worker thread must survive to score the next batch.
        """
        state = {"left": times, "injected": 0}
        lock = threading.Lock()
        original = self._original_detector_for

        def chaotic(model_key: str):
            name = model_key.partition(":")[0]
            if models is None or name in models:
                with lock:
                    if state["left"] > 0:
                        state["left"] -= 1
                        state["injected"] += 1
                        raise RuntimeError(
                            f"chaos: injected worker exception for {model_key!r}"
                        )
            return original(model_key)

        self.batcher.detector_for = chaotic
        return state

    def saturate_queue(self, model_key: str, window: np.ndarray) -> int:
        """Gate the workers shut and fill the bounded queue to capacity.

        Submits requests until the batcher sheds (:class:`Overloaded`);
        they park behind the gate.  Returns how many were accepted.
        :meth:`release_queue` opens the gate and waits for every parked
        score — asserting that saturation sheds *new* load but never
        loses *accepted* load.
        """
        self._gate = threading.Event()
        original = self._original_detector_for
        gate = self._gate
        parked_workers: list[None] = []
        lock = threading.Lock()

        def gated(key: str):
            with lock:
                parked_workers.append(None)
            gate.wait()
            return original(key)

        self.batcher.detector_for = gated
        self._parked = []
        workers = len(self.batcher._workers)
        while True:
            try:
                self._parked.append(self.batcher.submit(model_key, window))
            except Overloaded:
                # The first Overloaded is not saturation yet: workers may
                # still be draining the queue into their (gate-blocked)
                # batches, freeing capacity.  Only when every worker is
                # parked behind the gate AND the queue is full again does
                # the next submit shed deterministically.
                if (len(parked_workers) >= workers
                        and self.batcher.queue_depth >= self.batcher.max_queue):
                    break
                time.sleep(0.005)
        return len(self._parked)

    def release_queue(self, timeout: float = 30.0) -> list[float]:
        """Open the gate; block until every parked request scores."""
        if self._gate is not None:
            self._gate.set()
        self.batcher.detector_for = self._original_detector_for
        scores = [future.result(timeout=timeout) for future in self._parked]
        self._parked = []
        self._gate = None
        return scores

    # ------------------------------------------------------------------
    # process-pool faults
    # ------------------------------------------------------------------
    def kill_worker(self, model: str | None = None, slot: str | None = None) -> dict:
        """SIGKILL one pool worker — the one serving ``model``, or ``slot``.

        Requires the server to run the process tier.  Returns
        ``{"slot", "pid"}`` identifying the victim, for
        :meth:`wait_for_respawn`.
        """
        if self.pool is None:
            raise RuntimeError(
                "worker_process_kill needs the process-pool tier; start the "
                "server with procs > 0"
            )
        if slot is None:
            slot = self.pool.worker_for(model if model is not None else "")
        pid = self.pool.kill_worker(slot)
        return {"slot": slot, "pid": pid}

    def wait_for_respawn(self, victim: dict, timeout: float = 15.0) -> bool:
        """Block until the killed slot is live again under a new pid."""
        if self.pool is None:
            return False
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            worker = self.pool.status()["workers"].get(victim["slot"])
            if (worker is not None and worker["alive"]
                    and worker["pid"] != victim["pid"]):
                return True
            time.sleep(0.05)
        return False

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Remove every injected fault and unblock anything parked."""
        self.registry.load_fault_hook = None
        if self._gate is not None:
            self._gate.set()
            self._gate = None
        self.batcher.detector_for = self._original_detector_for
