"""Divergence detection for the training loop.

Adversarial objectives (Eq. 15) can run away: a bad batch or an
aggressive learning rate produces NaN/Inf losses or exploding gradients
that, without a guard, silently poison every subsequent update (Adam's
moment buffers never forget a NaN).  :class:`DivergenceGuard` watches
three signals —

* per-batch loss finiteness,
* per-batch gradient finiteness,
* epoch-mean loss explosion relative to the best epoch seen —

and reports the first violation so the trainer can roll back to the last
good checkpoint and retry with a smaller learning rate.  Bounded retries
that all diverge end in :class:`TrainingDivergedError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..nn.module import Parameter

__all__ = ["TrainingDivergedError", "GuardReport", "DivergenceGuard"]


class TrainingDivergedError(RuntimeError):
    """Training diverged and exhausted its rollback/backoff retries."""


@dataclass(frozen=True)
class GuardReport:
    """One detected divergence: what tripped and where."""

    reason: str   # "non_finite_loss" | "non_finite_gradient" | "loss_explosion" | "anomaly"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.reason}: {self.detail}"


class DivergenceGuard:
    """Stateful divergence detector for one training run.

    Parameters
    ----------
    explosion_factor:
        An epoch whose mean loss exceeds ``explosion_factor`` times the
        magnitude of the best epoch-mean loss counts as diverged;
        ``None`` disables the explosion check (non-finite checks stay
        on).  The default is deliberately loose — it catches runaway
        adversarial training, not ordinary noise.
    check_gradients:
        Also scan parameter gradients for NaN/Inf after each backward
        pass.  O(#parameters) per batch; disable on very large models.
    """

    def __init__(self, explosion_factor: float | None = 1e4, check_gradients: bool = True):
        if explosion_factor is not None and explosion_factor <= 1.0:
            raise ValueError(f"explosion_factor must exceed 1, got {explosion_factor}")
        self.explosion_factor = explosion_factor
        self.check_gradients = check_gradients
        self._best_epoch_loss: float | None = None

    @property
    def best_epoch_loss(self) -> float | None:
        """Reference loss for the explosion check (checkpointed/restored)."""
        return self._best_epoch_loss

    @best_epoch_loss.setter
    def best_epoch_loss(self, value: float | None) -> None:
        self._best_epoch_loss = value

    def check_batch_loss(self, value: float) -> GuardReport | None:
        if not math.isfinite(value):
            return GuardReport("non_finite_loss", f"batch loss is {value}")
        return None

    def check_batch_gradients(self, parameters: Iterable[Parameter]) -> GuardReport | None:
        if not self.check_gradients:
            return None
        for i, param in enumerate(parameters):
            grad = param.grad
            if grad is not None and not np.all(np.isfinite(grad)):
                name = getattr(param, "name", None) or f"parameter[{i}]"
                return GuardReport("non_finite_gradient", f"gradient of {name} has NaN/Inf")
        return None

    def report_anomaly(self, error: BaseException) -> GuardReport:
        """Wrap an :class:`repro.analysis.AnomalyError` as a rollback report.

        The sanitizer already attributed the NaN/Inf to the op that
        produced it (forward output or backward gradient), so the report
        carries the culpable op instead of the generic "some gradient has
        NaN" the batch checks can offer.
        """
        op = getattr(error, "op", "<unknown>")
        phase = getattr(error, "phase", "unknown")
        stats = getattr(error, "stats", "")
        return GuardReport(
            "anomaly",
            f"non-finite values in the {phase} of op {op!r} ({stats})",
        )

    def check_epoch_loss(self, epoch_loss: float) -> GuardReport | None:
        """Track the best epoch loss and flag explosions relative to it."""
        if not math.isfinite(epoch_loss):
            return GuardReport("non_finite_loss", f"epoch mean loss is {epoch_loss}")
        if (
            self.explosion_factor is not None
            and self._best_epoch_loss is not None
            and epoch_loss > self.explosion_factor * max(abs(self._best_epoch_loss), 1e-8)
        ):
            return GuardReport(
                "loss_explosion",
                f"epoch mean loss {epoch_loss:.6g} exceeds "
                f"{self.explosion_factor:g}x the best epoch loss "
                f"{self._best_epoch_loss:.6g}",
            )
        if self._best_epoch_loss is None or epoch_loss < self._best_epoch_loss:
            self._best_epoch_loss = epoch_loss
        return None
