"""Threshold-free ranking metrics: ROC-AUC and average precision.

The paper reports P/R/F1 at a calibrated threshold; ranking metrics are
the standard complement when comparing score quality independent of the
threshold protocol, and the ablation analyses in this reproduction use
them to separate "worse scores" from "worse threshold transfer".
"""

from __future__ import annotations

import numpy as np

__all__ = ["roc_auc", "average_precision"]


def _validate(scores: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels).reshape(-1).astype(bool)
    if scores.shape != labels.shape:
        raise ValueError(f"scores {scores.shape} and labels {labels.shape} must align")
    if labels.all() or not labels.any():
        raise ValueError("labels must contain both classes")
    return scores, labels


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank (Mann-Whitney) formulation.

    Ties receive the usual half-credit through midranks.
    """
    scores, labels = _validate(scores, labels)
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    sorted_scores = scores[order]
    # Midranks for tied groups.
    position = 0
    while position < len(sorted_scores):
        stop = position
        while stop + 1 < len(sorted_scores) and sorted_scores[stop + 1] == sorted_scores[position]:
            stop += 1
        ranks[order[position : stop + 1]] = 0.5 * (position + stop) + 1.0
        position = stop + 1
    n_pos = labels.sum()
    n_neg = labels.size - n_pos
    rank_sum = ranks[labels].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def average_precision(scores: np.ndarray, labels: np.ndarray) -> float:
    """Average precision (area under the precision-recall curve).

    Computed as the sum over positives of precision at each positive,
    descending by score (ties broken stably).
    """
    scores, labels = _validate(scores, labels)
    order = np.argsort(-scores, kind="mergesort")
    sorted_labels = labels[order]
    cumulative_hits = np.cumsum(sorted_labels)
    precision_at_k = cumulative_hits / np.arange(1, labels.size + 1)
    return float(precision_at_k[sorted_labels].sum() / sorted_labels.sum())
