"""Anomaly-score post-processing.

Raw per-observation scores are noisy; deployments commonly smooth them
before thresholding and de-bounce alarms so one incident does not page
forty times.  These utilities are deliberately detector-agnostic.
"""

from __future__ import annotations

import numpy as np

from .classification import anomaly_segments

__all__ = ["ewma_smooth", "moving_average_smooth", "debounce_alarms"]


def ewma_smooth(scores: np.ndarray, alpha: float = 0.2) -> np.ndarray:
    """Exponentially weighted moving average of the score stream.

    ``alpha`` is the weight of the newest score; smaller = smoother.
    Causal (uses only past scores), so it is streaming-safe.
    """
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    smoothed = np.empty_like(scores)
    state = scores[0] if scores.size else 0.0
    for index, value in enumerate(scores):
        state = alpha * value + (1.0 - alpha) * state
        smoothed[index] = state
    return smoothed


def moving_average_smooth(scores: np.ndarray, window: int = 5) -> np.ndarray:
    """Trailing moving average with edge-shortened windows (causal)."""
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    cumulative = np.cumsum(scores)
    out = np.empty_like(scores)
    for index in range(scores.size):
        lo = max(0, index - window + 1)
        total = cumulative[index] - (cumulative[lo - 1] if lo > 0 else 0.0)
        out[index] = total / (index - lo + 1)
    return out


def debounce_alarms(
    alarms: np.ndarray,
    merge_gap: int = 5,
    min_length: int = 1,
) -> np.ndarray:
    """Clean a binary alarm stream for paging.

    Merges alarm runs separated by fewer than ``merge_gap`` quiet steps
    (one incident, not several) and drops runs shorter than
    ``min_length`` (blips).
    """
    alarms = np.asarray(alarms).astype(bool)
    if merge_gap < 0 or min_length < 1:
        raise ValueError("merge_gap must be >= 0 and min_length >= 1")
    segments = anomaly_segments(alarms)
    merged: list[tuple[int, int]] = []
    for start, stop in segments:
        if merged and start - merged[-1][1] <= merge_gap:
            merged[-1] = (merged[-1][0], stop)
        else:
            merged.append((start, stop))
    out = np.zeros(alarms.shape[0], dtype=np.int64)
    for start, stop in merged:
        if stop - start >= min_length:
            out[start:stop] = 1
    return out
