"""Score-distribution diagnostics for the distribution-shift analysis.

Figures 1 (right) and 9 of the paper compare the cumulative distribution
of anomaly scores on the validation vs. test split: a reconstruction model
(TimesNet) shows a wide gap — the threshold generalises poorly — while
TFMAE's contrastive criterion keeps the two curves close.  This module
provides the CDF and gap measures used to regenerate those figures.
"""

from __future__ import annotations

import numpy as np

__all__ = ["empirical_cdf", "cdf_gap", "ks_distance"]


def empirical_cdf(scores: np.ndarray, grid: np.ndarray | None = None, grid_size: int = 200) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``scores`` evaluated on a common grid.

    Returns ``(grid, cdf)`` where ``cdf[i]`` is the fraction of scores
    ``<= grid[i]``.  Passing the same ``grid`` for two score sets makes
    their curves directly comparable (Fig. 9).
    """
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if scores.size == 0:
        raise ValueError("cannot compute a CDF of empty scores")
    if grid is None:
        grid = np.linspace(scores.min(), scores.max(), grid_size)
    sorted_scores = np.sort(scores)
    cdf = np.searchsorted(sorted_scores, grid, side="right") / scores.size
    return grid, cdf


def cdf_gap(scores_a: np.ndarray, scores_b: np.ndarray, grid_size: int = 200) -> float:
    """Mean absolute vertical gap between two score CDFs on a shared grid.

    Quantifies the validation-vs-test separation in Fig. 9: a large gap
    means the threshold learned on validation misbehaves on test.
    """
    a = np.asarray(scores_a, dtype=np.float64).reshape(-1)
    b = np.asarray(scores_b, dtype=np.float64).reshape(-1)
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    grid = np.linspace(lo, hi, grid_size)
    _, cdf_a = empirical_cdf(a, grid)
    _, cdf_b = empirical_cdf(b, grid)
    return float(np.mean(np.abs(cdf_a - cdf_b)))


def ks_distance(scores_a: np.ndarray, scores_b: np.ndarray, grid_size: int = 512) -> float:
    """Kolmogorov-Smirnov distance (max vertical CDF gap) between score sets."""
    a = np.asarray(scores_a, dtype=np.float64).reshape(-1)
    b = np.asarray(scores_b, dtype=np.float64).reshape(-1)
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    grid = np.linspace(lo, hi, grid_size)
    _, cdf_a = empirical_cdf(a, grid)
    _, cdf_b = empirical_cdf(b, grid)
    return float(np.max(np.abs(cdf_a - cdf_b)))
