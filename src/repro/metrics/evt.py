"""Extreme-value-theory thresholding (POT, after Siffer et al., KDD 2017).

The paper's reference [51] motivates windowed local statistics with the
SPOT stream detector; this module provides the batch Peaks-Over-Threshold
variant as an alternative to the fixed-ratio rule of Eq. 17: fit a
generalised Pareto distribution (GPD) to the excesses over a high initial
quantile of the (anomaly-free) calibration scores, then place the final
threshold at the level exceeded with a target probability ``q``.

Compared with :func:`repro.metrics.threshold.ratio_threshold`, POT
extrapolates beyond the observed score range, which matters when the
calibration split is short — exactly the regime of this reproduction's
bench datasets.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import genpareto

__all__ = ["pot_threshold"]


def pot_threshold(
    scores: np.ndarray,
    q: float = 1e-3,
    initial_quantile: float = 98.0,
    min_excesses: int = 20,
) -> float:
    """Peaks-over-threshold anomaly threshold.

    Parameters
    ----------
    scores:
        Calibration anomaly scores (validation split).
    q:
        Target exceedance probability of the final threshold — roughly
        the tolerated false-alarm rate per observation.
    initial_quantile:
        Percentile of ``scores`` used as the GPD fitting threshold ``t``.
    min_excesses:
        Below this many excesses the GPD fit is unreliable and the
        function falls back to the empirical ``1 - q`` quantile.

    Returns
    -------
    float
        The threshold ``z_q`` with ``P(score > z_q) ~= q`` under the
        fitted tail model.
    """
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if scores.size == 0:
        raise ValueError("cannot derive a threshold from empty scores")
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q}")
    if not 50.0 <= initial_quantile < 100.0:
        raise ValueError(f"initial_quantile must be in [50, 100), got {initial_quantile}")

    t = float(np.percentile(scores, initial_quantile))
    excesses = scores[scores > t] - t
    if excesses.size < min_excesses or np.allclose(excesses, excesses[0] if excesses.size else 0.0):
        # Too little tail information for a stable fit.
        return float(np.quantile(scores, 1.0 - q))

    # Fit GPD to excesses with location pinned at zero.
    shape, _, scale = genpareto.fit(excesses, floc=0.0)
    n = scores.size
    n_excess = excesses.size
    # Quantile extrapolation: z_q = t + (sigma/xi) * ((q*n/N_t)^(-xi) - 1).
    ratio = q * n / n_excess
    if abs(shape) < 1e-9:
        z = t + scale * np.log(1.0 / ratio)
    else:
        z = t + (scale / shape) * (ratio ** (-shape) - 1.0)
    if not np.isfinite(z) or z <= t:
        return float(np.quantile(scores, 1.0 - q))
    return float(z)
