"""Detection metrics: precision, recall, F1 and the point-adjustment protocol.

The paper (Section V-A.2) follows the standard point-adjustment (PA)
evaluation of Xu et al. / Su et al.: if any observation inside a
contiguous ground-truth anomaly segment is detected, the entire segment
counts as detected.  Metrics are then computed on the adjusted
predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "point_adjust",
    "precision_recall_f1",
    "DetectionMetrics",
    "evaluate_detection",
    "anomaly_segments",
]


@dataclass(frozen=True)
class DetectionMetrics:
    """Precision/recall/F1 triple, in fractions (not percent)."""

    precision: float
    recall: float
    f1: float

    def as_percent(self) -> tuple[float, float, float]:
        return (100.0 * self.precision, 100.0 * self.recall, 100.0 * self.f1)

    def __str__(self) -> str:
        p, r, f1 = self.as_percent()
        return f"P={p:.2f}% R={r:.2f}% F1={f1:.2f}%"


def anomaly_segments(labels: np.ndarray) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` runs of 1s in a binary label array."""
    labels = np.asarray(labels).astype(bool)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    padded = np.concatenate([[False], labels, [False]])
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    return [(int(changes[i]), int(changes[i + 1])) for i in range(0, len(changes), 2)]


def point_adjust(predictions: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Apply the point-adjustment protocol.

    For every contiguous ground-truth anomaly segment that contains at
    least one positive prediction, mark the whole segment as predicted.
    Predictions outside labelled segments are left unchanged.

    Returns a new array; inputs are not modified.
    """
    predictions = np.asarray(predictions).astype(bool)
    labels = np.asarray(labels).astype(bool)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    adjusted = predictions.copy()
    for start, stop in anomaly_segments(labels):
        if adjusted[start:stop].any():
            adjusted[start:stop] = True
    return adjusted.astype(np.int64)


def precision_recall_f1(predictions: np.ndarray, labels: np.ndarray) -> DetectionMetrics:
    """Pointwise precision/recall/F1 of binary predictions."""
    predictions = np.asarray(predictions).astype(bool)
    labels = np.asarray(labels).astype(bool)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    true_positive = float(np.sum(predictions & labels))
    predicted_positive = float(predictions.sum())
    actual_positive = float(labels.sum())
    precision = true_positive / predicted_positive if predicted_positive else 0.0
    recall = true_positive / actual_positive if actual_positive else 0.0
    if precision + recall == 0.0:
        return DetectionMetrics(precision, recall, 0.0)
    f1 = 2.0 * precision * recall / (precision + recall)
    return DetectionMetrics(precision, recall, f1)


def evaluate_detection(
    predictions: np.ndarray,
    labels: np.ndarray,
    adjust: bool = True,
) -> DetectionMetrics:
    """Full paper protocol: optional point adjustment, then P/R/F1."""
    if adjust:
        predictions = point_adjust(predictions, labels)
    return precision_recall_f1(predictions, labels)
