"""Evaluation metrics: detection accuracy, thresholding, score distributions."""

from .classification import (
    DetectionMetrics,
    anomaly_segments,
    evaluate_detection,
    point_adjust,
    precision_recall_f1,
)
from .distribution import cdf_gap, empirical_cdf, ks_distance
from .evt import pot_threshold
from .postprocess import debounce_alarms, ewma_smooth, moving_average_smooth
from .range_based import range_precision_recall
from .ranking import average_precision, roc_auc
from .threshold import apply_threshold, best_f1_threshold, ratio_threshold

__all__ = [
    "DetectionMetrics",
    "anomaly_segments",
    "point_adjust",
    "precision_recall_f1",
    "evaluate_detection",
    "ratio_threshold",
    "apply_threshold",
    "best_f1_threshold",
    "empirical_cdf",
    "cdf_gap",
    "ks_distance",
    "roc_auc",
    "average_precision",
    "pot_threshold",
    "range_precision_recall",
    "ewma_smooth",
    "moving_average_smooth",
    "debounce_alarms",
]
