"""Range-based precision and recall (Tatbul et al., NeurIPS 2018).

Point adjustment (the paper's protocol) is generous: one hit anywhere in
a long segment yields full credit.  Range-based metrics grade each
predicted/true *range* by existence, overlap size and positional bias,
giving a stricter and more informative picture for segment anomalies
(SWaT-style attacks).  This module implements the flat-bias variant used
by most follow-up work:

* recall per true range = ``alpha * existence + (1 - alpha) * overlap``
* precision per predicted range = its overlap fraction with true ranges
* both averaged over ranges, combined into an F1.
"""

from __future__ import annotations

import numpy as np

from .classification import DetectionMetrics, anomaly_segments

__all__ = ["range_precision_recall"]


def _overlap_fraction(segment: tuple[int, int], others: list[tuple[int, int]]) -> float:
    """Fraction of ``segment`` covered by the union of ``others``."""
    start, stop = segment
    length = stop - start
    if length <= 0:
        return 0.0
    covered = 0
    for other_start, other_stop in others:
        lo = max(start, other_start)
        hi = min(stop, other_stop)
        if hi > lo:
            covered += hi - lo
    return covered / length


def range_precision_recall(
    predictions: np.ndarray,
    labels: np.ndarray,
    alpha: float = 0.5,
) -> DetectionMetrics:
    """Range-based precision/recall/F1 with flat positional bias.

    Parameters
    ----------
    predictions, labels:
        Binary arrays of equal length.
    alpha:
        Weight of the existence reward in recall (0 = pure overlap,
        1 = pure existence; Tatbul et al. default 0.5).

    Returns
    -------
    DetectionMetrics
        Range-based P/R/F1 (fractions).
    """
    predictions = np.asarray(predictions).astype(bool)
    labels = np.asarray(labels).astype(bool)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")

    predicted_ranges = anomaly_segments(predictions)
    true_ranges = anomaly_segments(labels)

    if not true_ranges:
        recall = 0.0
    else:
        recall_terms = []
        for true_range in true_ranges:
            overlap = _overlap_fraction(true_range, predicted_ranges)
            existence = 1.0 if overlap > 0 else 0.0
            recall_terms.append(alpha * existence + (1.0 - alpha) * overlap)
        recall = float(np.mean(recall_terms))

    if not predicted_ranges:
        precision = 0.0
    else:
        precision_terms = [
            _overlap_fraction(predicted_range, true_ranges)
            for predicted_range in predicted_ranges
        ]
        precision = float(np.mean(precision_terms))

    if precision + recall == 0.0:
        return DetectionMetrics(precision, recall, 0.0)
    f1 = 2.0 * precision * recall / (precision + recall)
    return DetectionMetrics(precision, recall, f1)
