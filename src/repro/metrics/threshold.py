"""Threshold selection.

The paper pre-determines the threshold ``delta`` so that ``r%`` of the
(validation) data is flagged anomalous (Section V-A.4), with ``r`` chosen
per dataset.  A best-F1 oracle sweep is also provided for analysis — it is
never used in the headline tables, only to measure how much the threshold
choice costs each method.
"""

from __future__ import annotations

import numpy as np

from .classification import evaluate_detection

__all__ = ["ratio_threshold", "apply_threshold", "best_f1_threshold"]


def ratio_threshold(scores: np.ndarray, anomaly_ratio: float) -> float:
    """Threshold flagging the top ``anomaly_ratio`` percent of ``scores``.

    Parameters
    ----------
    scores:
        Anomaly scores from the validation (or combined train+validation)
        split.
    anomaly_ratio:
        Percentage ``r`` in (0, 100); e.g. ``0.9`` flags the highest 0.9%.
    """
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if scores.size == 0:
        raise ValueError("cannot derive a threshold from empty scores")
    if not 0.0 < anomaly_ratio < 100.0:
        raise ValueError(f"anomaly_ratio must be in (0, 100), got {anomaly_ratio}")
    return float(np.percentile(scores, 100.0 - anomaly_ratio))


def apply_threshold(scores: np.ndarray, threshold: float) -> np.ndarray:
    """Binary predictions: 1 where ``score >= threshold`` (paper Eq. 17)."""
    return (np.asarray(scores) >= threshold).astype(np.int64)


def best_f1_threshold(
    scores: np.ndarray,
    labels: np.ndarray,
    num_candidates: int = 200,
    adjust: bool = True,
) -> tuple[float, float]:
    """Oracle threshold maximising (point-adjusted) F1.

    Sweeps ``num_candidates`` quantiles of the score distribution and
    returns ``(threshold, f1)``.  For analysis only — it peeks at labels.
    """
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must be aligned")
    quantiles = np.linspace(0.0, 100.0, num_candidates, endpoint=False)
    best = (float(scores.max()) + 1.0, 0.0)
    for q in quantiles:
        threshold = float(np.percentile(scores, q))
        metrics = evaluate_detection(apply_threshold(scores, threshold), labels, adjust=adjust)
        if metrics.f1 > best[1]:
            best = (threshold, metrics.f1)
    return best
