"""TFMAE reproduction: Temporal-Frequency Masked Autoencoders for Time
Series Anomaly Detection (Fang et al., ICDE 2024).

Quickstart
----------
>>> from repro import TFMAE, TFMAEConfig, get_dataset, evaluate_detector
>>> dataset = get_dataset("NIPS-TS-Global", scale=0.05)
>>> detector = TFMAE(TFMAEConfig(epochs=3, anomaly_ratio=5.0))
>>> result = evaluate_detector(detector, dataset)      # doctest: +SKIP

Subpackages
-----------
``repro.nn``
    From-scratch numpy autograd/Transformer substrate (replaces PyTorch).
``repro.masking``
    Window-based temporal and amplitude-based frequency masking.
``repro.core``
    The TFMAE model, trainer and detector.
``repro.datasets``
    The seven benchmark datasets (synthetic surrogates) and utilities.
``repro.baselines``
    The 14 comparison methods of Table III.
``repro.metrics`` / ``repro.eval``
    Detection metrics, thresholds and the shared evaluation protocol.
``repro.robustness``
    Fault tolerance: checkpoint/resume, divergence guards, and graceful
    streaming degradation under corrupted telemetry.
``repro.serve``
    Micro-batched inference serving: model registry, batching scheduler
    with backpressure, JSON-over-HTTP front end, and metrics.
"""

from .core import TFMAE, TFMAEConfig, preset_for
from .datasets import get_dataset, available_datasets
from .detector import BaseDetector
from .eval import evaluate_detector, format_results_table, profile_detector
from .metrics import evaluate_detection
from .ensemble import EnsembleDetector
from .robustness import CheckpointError, FaultPolicy, TrainingDivergedError
from .streaming import StreamingDetector

__version__ = "1.0.0"

__all__ = [
    "TFMAE",
    "TFMAEConfig",
    "preset_for",
    "get_dataset",
    "available_datasets",
    "BaseDetector",
    "evaluate_detector",
    "format_results_table",
    "profile_detector",
    "evaluate_detection",
    "StreamingDetector",
    "EnsembleDetector",
    "FaultPolicy",
    "CheckpointError",
    "TrainingDivergedError",
    "__version__",
]
