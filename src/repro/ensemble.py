"""Score-level detector ensembling.

Production deployments rarely bet on one detector: combining a
pattern-sensitive model (TFMAE) with a cheap pointwise one (IForest)
covers each other's blind spots.  Raw anomaly scores live on wildly
different scales (KL divergence vs. isolation depth vs. reconstruction
MSE), so the ensemble first maps each member's scores through a
normaliser fit on that member's validation scores, then aggregates.

Normalisers
-----------
``rank``
    Empirical CDF position of the score among the calibration scores —
    robust to arbitrary monotone scale differences (default).
``zscore``
    Standard score against calibration mean/std — preserves magnitude,
    sensitive to heavy tails.

Aggregators: ``mean``, ``max`` or explicit weights.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from .detector import BaseDetector, check_finite_series

__all__ = ["EnsembleDetector"]


class _RankNormaliser:
    def fit(self, scores: np.ndarray) -> "_RankNormaliser":
        self.sorted_ = np.sort(np.asarray(scores, dtype=np.float64).reshape(-1))
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        position = np.searchsorted(self.sorted_, scores, side="right")
        return position / (self.sorted_.size + 1.0)


class _ZScoreNormaliser:
    def fit(self, scores: np.ndarray) -> "_ZScoreNormaliser":
        scores = np.asarray(scores, dtype=np.float64).reshape(-1)
        self.mean_ = float(scores.mean())
        self.std_ = float(scores.std()) or 1.0
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        return (scores - self.mean_) / self.std_


_NORMALISERS = {"rank": _RankNormaliser, "zscore": _ZScoreNormaliser}


class EnsembleDetector(BaseDetector):
    """Combine several detectors at the score level.

    Parameters
    ----------
    members:
        Detector instances (not yet fit).
    normaliser:
        ``"rank"`` (default) or ``"zscore"``.
    aggregate:
        ``"mean"`` or ``"max"`` over normalised member scores.
    weights:
        Optional per-member weights for the mean aggregator.
    """

    name = "Ensemble"

    def __init__(
        self,
        members: Sequence[BaseDetector],
        normaliser: Literal["rank", "zscore"] = "rank",
        aggregate: Literal["mean", "max"] = "mean",
        weights: Sequence[float] | None = None,
        anomaly_ratio: float = 0.9,
    ):
        super().__init__(anomaly_ratio=anomaly_ratio)
        if not members:
            raise ValueError("ensemble needs at least one member")
        if normaliser not in _NORMALISERS:
            raise ValueError(f"unknown normaliser: {normaliser}")
        if aggregate not in ("mean", "max"):
            raise ValueError(f"unknown aggregator: {aggregate}")
        if weights is not None:
            if len(weights) != len(members):
                raise ValueError("weights must match the number of members")
            if aggregate != "mean":
                raise ValueError("weights only apply to the mean aggregator")
        self.members = list(members)
        self.normaliser_kind = normaliser
        self.aggregate = aggregate
        self.weights = None if weights is None else np.asarray(weights, dtype=np.float64)
        self._normalisers: list[object] = []
        self.name = "Ensemble(" + "+".join(m.name for m in self.members) + ")"

    def fit(self, train: np.ndarray, validation: np.ndarray | None = None) -> "EnsembleDetector":
        if train.ndim != 2:
            raise ValueError(f"train must be (time, features), got shape {train.shape}")
        calibration = validation if validation is not None else train
        self._normalisers = []
        for member in self.members:
            member.fit(train)
            normaliser = _NORMALISERS[self.normaliser_kind]()
            normaliser.fit(member.score(calibration))
            self._normalisers.append(normaliser)
        self._fitted = True
        if validation is not None:
            self.calibrate_threshold(validation)
        return self

    def _fit(self, train: np.ndarray) -> None:  # pragma: no cover - fit() overridden
        raise NotImplementedError

    def score(self, series: np.ndarray) -> np.ndarray:
        self._require_fitted()
        series = check_finite_series(series, name="ensemble scoring input")
        stacked = np.stack([
            normaliser.transform(member.score(series))
            for member, normaliser in zip(self.members, self._normalisers)
        ])
        if self.aggregate == "max":
            return stacked.max(axis=0)
        if self.weights is not None:
            weights = self.weights / self.weights.sum()
            return (stacked * weights[:, None]).sum(axis=0)
        return stacked.mean(axis=0)
