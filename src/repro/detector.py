"""Common anomaly-detector interface.

Every method in the reproduction — TFMAE and all 14 baselines — implements
this contract so the evaluation harness (Table III and the ablations) can
treat them uniformly:

* :meth:`BaseDetector.fit` trains on the (unlabeled) training split;
* :meth:`BaseDetector.score` maps a series to one non-negative anomaly
  score per observation;
* :meth:`BaseDetector.calibrate_threshold` fixes ``delta`` so that ``r%``
  of validation observations exceed it (paper Section V-A.4);
* :meth:`BaseDetector.predict` applies Eq. 17.

Detectors receive already z-scored data; normalisation lives in the
dataset layer so every method sees identical inputs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .metrics.threshold import apply_threshold, ratio_threshold

__all__ = ["BaseDetector", "check_finite_series"]


def check_finite_series(series: np.ndarray, name: str = "series") -> np.ndarray:
    """Reject NaN/Inf inputs with a clear error instead of letting them
    propagate into opaque numpy failures or silently non-finite scores.

    Every detector's ``score`` calls this on entry; streaming callers that
    must survive corrupted telemetry repair it first via
    :class:`repro.robustness.FaultPolicy`.
    """
    series = np.asarray(series)
    # Hot-path form of ``isfinite(series).all()``: a min/max scan needs no
    # boolean temporary, and the result is equivalent — NaN propagates
    # through ``minimum.reduce``/``maximum.reduce``, +/-Inf survives to the
    # extremes.  (Non-real dtypes take the straightforward path.)
    if series.dtype.kind in "fiub":
        finite = series.size == 0 or (
            bool(np.isfinite(series.min())) and bool(np.isfinite(series.max()))
        )
    else:
        finite = bool(np.all(np.isfinite(series)))
    if not finite:
        raise ValueError(
            f"{name} contains NaN/Inf values; impute or drop them first "
            "(streaming callers can use repro.robustness.FaultPolicy)"
        )
    return series


class BaseDetector(ABC):
    """Abstract anomaly detector with the shared threshold protocol."""

    #: Human-readable method name used in printed tables.
    name: str = "detector"

    def __init__(self, anomaly_ratio: float = 0.9):
        if not 0.0 < anomaly_ratio < 100.0:
            raise ValueError(f"anomaly_ratio must be in (0, 100), got {anomaly_ratio}")
        self.anomaly_ratio = anomaly_ratio
        self.threshold_: float | None = None
        self._fitted = False

    # ------------------------------------------------------------------
    # to be provided by each method
    # ------------------------------------------------------------------
    @abstractmethod
    def _fit(self, train: np.ndarray) -> None:
        """Train on the ``(time, features)`` training split."""

    @abstractmethod
    def score(self, series: np.ndarray) -> np.ndarray:
        """Per-observation anomaly scores, shape ``(time,)``."""

    # ------------------------------------------------------------------
    # shared protocol
    # ------------------------------------------------------------------
    def fit(self, train: np.ndarray, validation: np.ndarray | None = None) -> "BaseDetector":
        """Train and, when a validation split is given, calibrate ``delta``."""
        if train.ndim != 2:
            raise ValueError(f"train must be (time, features), got shape {train.shape}")
        check_finite_series(train, name="training data")
        self._fit(train)
        self._fitted = True
        if validation is not None:
            self.calibrate_threshold(validation)
        return self

    def calibrate_threshold(self, validation: np.ndarray) -> float:
        """Set ``delta`` to flag ``anomaly_ratio``% of validation points."""
        self._require_fitted()
        scores = self.score(validation)
        self.threshold_ = ratio_threshold(scores, self.anomaly_ratio)
        return self.threshold_

    def score_last(self, windows: np.ndarray) -> np.ndarray:
        """Score of the *final* observation of each window, shape ``(B,)``.

        This is the batched form of the online-scoring primitive: both
        :meth:`repro.streaming.StreamingDetector.update_many` and the
        ``repro.serve`` micro-batcher coalesce many rolling windows into
        one call here.  The contract is exact equivalence —
        ``score_last(windows)[i] == score(windows[i])[-1]`` bitwise — so
        batched and sequential scoring are interchangeable.

        The base implementation loops; detectors with a vectorized
        window scorer (TFMAE) override it with a true batched forward
        pass while preserving the equivalence contract.
        """
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim == 2:
            windows = windows[None]
        if windows.ndim != 3:
            raise ValueError(
                f"windows must be (batch, time, features), got shape {windows.shape}"
            )
        # Validate on entry, exactly as score() does: a NaN window must
        # raise here rather than flow through streaming/serving as a
        # silently non-finite score (the detector contract).
        windows = check_finite_series(windows, name=f"{self.name} windows")
        return np.array([float(self.score(window)[-1]) for window in windows])

    def predict(self, series: np.ndarray) -> np.ndarray:
        """Binary anomaly labels via the calibrated threshold (Eq. 17)."""
        self._require_fitted()
        if self.threshold_ is None:
            raise RuntimeError(
                "threshold not calibrated; fit with a validation split or call "
                "calibrate_threshold() first"
            )
        return apply_threshold(self.score(series), self.threshold_)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{self.name} must be fit before use")
