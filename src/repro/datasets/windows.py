"""Windowing utilities shared by TFMAE, all baselines, and the benches.

The evaluation protocol (paper Table III) feeds every method fixed-length
windows of 100 observations.  Training uses non-overlapping windows;
scoring also uses non-overlapping windows so each observation receives
exactly one score, with a final overlapping window covering any tail
shorter than the window size.

Window extraction is **zero-copy**: :func:`sliding_windows` returns a
read-only strided view built with ``numpy.lib.stride_tricks
.sliding_window_view`` instead of materialising ``(num_windows, size,
features)`` copies.  Every consumer in the library only reads windows
(training batches are gathered by fancy indexing, which copies exactly
the batch it needs); call ``.copy()`` on the result if you must mutate.

:func:`batched_window_scores` is the shared chunked scorer: it drives a
window-scoring function over a big window stack in bounded-memory chunks
and is the single implementation behind ``TFMAE.score``,
``TFMAE.score_last``, the streaming fast path and (through
``score_last``) the serving micro-batcher.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sliding_windows",
    "non_overlapping_windows",
    "batched_window_scores",
    "score_series",
]


def sliding_windows(series: np.ndarray, size: int, stride: int) -> np.ndarray:
    """Extract windows of ``size`` at every ``stride`` along the time axis.

    Parameters
    ----------
    series:
        ``(time, features)`` array.
    size, stride:
        Window length and hop; the tail shorter than ``size`` is dropped.

    Returns
    -------
    numpy.ndarray
        ``(num_windows, size, features)`` **read-only zero-copy view** of
        ``series`` (empty when the series is shorter than ``size``).
        Mutating consumers must ``.copy()`` first.
    """
    if series.ndim != 2:
        raise ValueError(f"expected (time, features), got shape {series.shape}")
    if size < 1 or stride < 1:
        raise ValueError("size and stride must be positive")
    time = series.shape[0]
    if time < size:
        return np.empty((0, size, series.shape[1]), dtype=series.dtype)
    # (num_full, features, size) view -> transpose to (num_full, size,
    # features); transposing and slicing a view stays a view.
    view = np.lib.stride_tricks.sliding_window_view(series, size, axis=0)
    return view.transpose(0, 2, 1)[::stride]


def non_overlapping_windows(series: np.ndarray, size: int) -> np.ndarray:
    """Non-overlapping windows (stride == size); read-only zero-copy view."""
    return sliding_windows(series, size, stride=size)


def batched_window_scores(
    windows: np.ndarray, score_fn, batch_size: int = 64
) -> np.ndarray:
    """Apply ``score_fn`` over ``(B, size, features)`` windows in chunks.

    ``score_fn`` maps a batch of windows to one score row per window (any
    trailing shape); chunking bounds peak memory to ``batch_size`` windows
    of model activations while producing output identical to a single
    full-batch call (every model scores windows row-independently).

    Multi-chunk runs write every chunk's scores straight into one
    preallocated output array instead of accumulating per-chunk arrays
    and concatenating; a single-chunk call (the serving batch-of-one
    path included) returns ``score_fn``'s result as-is — zero copies.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    count = len(windows)
    if count == 0:
        return np.empty((0,), dtype=np.float64)
    first = np.asarray(score_fn(windows[:batch_size]))
    if count <= batch_size:
        return first
    out = np.empty((count,) + first.shape[1:], dtype=first.dtype)
    out[: len(first)] = first
    for start in range(batch_size, count, batch_size):
        out[start : start + batch_size] = score_fn(windows[start : start + batch_size])
    return out


def score_series(series: np.ndarray, size: int, score_fn, batch_size: int = 64) -> np.ndarray:
    """Produce one anomaly score per observation of an arbitrary series.

    ``score_fn`` maps a batch of windows ``(B, size, N)`` to per-position
    scores ``(B, size)``.  Full non-overlapping windows cover the prefix;
    a final window aligned to the series end covers the tail, from which
    only the previously unscored suffix is kept.  Series shorter than the
    window are scored via a single front-padded window (edge-replicated).

    All windows are zero-copy views into ``series``; the model runs over
    them in ``batch_size`` chunks (under the model's own ``no_grad``).

    Returns
    -------
    numpy.ndarray
        ``(time,)`` scores aligned with the input observations.
    """
    time = series.shape[0]
    scores = np.empty(time, dtype=np.float64)

    if time < size:
        pad = np.repeat(series[:1], size - time, axis=0)
        window = np.concatenate([pad, series], axis=0)[None]
        scores[:] = score_fn(window)[0, size - time :]
        return scores

    windows = non_overlapping_windows(series, size)
    covered = len(windows) * size
    scores[:covered] = batched_window_scores(
        windows, score_fn, batch_size=batch_size
    ).reshape(-1)

    if covered < time:
        tail_window = series[time - size :][None]
        tail_scores = score_fn(tail_window)[0]
        scores[covered:] = tail_scores[size - (time - covered) :]
    return scores
