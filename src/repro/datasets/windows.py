"""Windowing utilities shared by TFMAE, all baselines, and the benches.

The evaluation protocol (paper Table III) feeds every method fixed-length
windows of 100 observations.  Training uses non-overlapping windows;
scoring also uses non-overlapping windows so each observation receives
exactly one score, with a final overlapping window covering any tail
shorter than the window size.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sliding_windows", "non_overlapping_windows", "score_series"]


def sliding_windows(series: np.ndarray, size: int, stride: int) -> np.ndarray:
    """Extract windows of ``size`` at every ``stride`` along the time axis.

    Parameters
    ----------
    series:
        ``(time, features)`` array.
    size, stride:
        Window length and hop; the tail shorter than ``size`` is dropped.

    Returns
    -------
    numpy.ndarray
        ``(num_windows, size, features)``; empty when the series is
        shorter than ``size``.
    """
    if series.ndim != 2:
        raise ValueError(f"expected (time, features), got shape {series.shape}")
    if size < 1 or stride < 1:
        raise ValueError("size and stride must be positive")
    time = series.shape[0]
    if time < size:
        return np.empty((0, size, series.shape[1]), dtype=series.dtype)
    starts = range(0, time - size + 1, stride)
    return np.stack([series[s : s + size] for s in starts])


def non_overlapping_windows(series: np.ndarray, size: int) -> np.ndarray:
    """Non-overlapping windows (stride == size)."""
    return sliding_windows(series, size, stride=size)


def score_series(series: np.ndarray, size: int, score_fn, batch_size: int = 64) -> np.ndarray:
    """Produce one anomaly score per observation of an arbitrary series.

    ``score_fn`` maps a batch of windows ``(B, size, N)`` to per-position
    scores ``(B, size)``.  Full non-overlapping windows cover the prefix;
    a final window aligned to the series end covers the tail, from which
    only the previously unscored suffix is kept.  Series shorter than the
    window are scored via a single front-padded window (edge-replicated).

    Returns
    -------
    numpy.ndarray
        ``(time,)`` scores aligned with the input observations.
    """
    time = series.shape[0]
    scores = np.empty(time, dtype=np.float64)

    if time < size:
        pad = np.repeat(series[:1], size - time, axis=0)
        window = np.concatenate([pad, series], axis=0)[None]
        scores[:] = score_fn(window)[0, size - time :]
        return scores

    windows = non_overlapping_windows(series, size)
    for start in range(0, len(windows), batch_size):
        batch = windows[start : start + batch_size]
        batch_scores = score_fn(batch)
        begin = start * size
        scores[begin : begin + batch.shape[0] * size] = batch_scores.reshape(-1)

    covered = len(windows) * size
    if covered < time:
        tail_window = series[time - size :][None]
        tail_scores = score_fn(tail_window)[0]
        scores[covered:] = tail_scores[size - (time - covered) :]
    return scores
