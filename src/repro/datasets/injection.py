"""Anomaly injection library.

Implements the behaviour-driven anomaly taxonomy of Lai et al. (NeurIPS
2021), the source of the paper's NIPS-TS benchmarks and of its anomaly
vocabulary: *point* anomalies (global, contextual) and *pattern* anomalies
(shapelet, seasonal, trend).  Every injector mutates a copy of the input
and returns the new series together with a binary label array.

All injectors operate on one channel of shape ``(time,)``; multivariate
generators call them per channel.  Randomness flows through an explicit
``numpy.random.Generator`` so datasets are fully reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "inject_global",
    "inject_contextual",
    "inject_shapelet",
    "inject_seasonal",
    "inject_trend",
    "random_positions",
    "random_segments",
]


def random_positions(length: int, count: int, rng: np.random.Generator, margin: int = 1) -> np.ndarray:
    """Sample ``count`` distinct positions in ``[margin, length - margin)``."""
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    candidates = np.arange(margin, length - margin)
    if count > candidates.size:
        raise ValueError(f"cannot place {count} anomalies in {candidates.size} slots")
    return np.sort(rng.choice(candidates, size=count, replace=False))


def random_segments(
    length: int,
    count: int,
    segment_length: int,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Sample ``count`` non-overlapping ``[start, stop)`` segments."""
    if count <= 0:
        return []
    segments: list[tuple[int, int]] = []
    attempts = 0
    while len(segments) < count and attempts < 1000 * count:
        attempts += 1
        start = int(rng.integers(0, max(1, length - segment_length)))
        stop = start + segment_length
        if all(stop <= s or start >= e for s, e in segments):
            segments.append((start, stop))
    segments.sort()
    return segments


def inject_global(
    channel: np.ndarray,
    positions: np.ndarray,
    rng: np.random.Generator,
    magnitude: float = 6.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Global point anomalies: values far outside the global range.

    Each selected observation is pushed ``magnitude`` global standard
    deviations away from the global mean, with random sign.
    """
    out = channel.copy()
    labels = np.zeros(channel.shape[0], dtype=np.int64)
    if positions.size == 0:
        return out, labels
    mean, std = channel.mean(), channel.std() + 1e-8
    signs = rng.choice([-1.0, 1.0], size=positions.size)
    jitter = rng.uniform(0.8, 1.4, size=positions.size)
    out[positions] = mean + signs * magnitude * jitter * std
    labels[positions] = 1
    return out, labels


def inject_contextual(
    channel: np.ndarray,
    positions: np.ndarray,
    rng: np.random.Generator,
    magnitude: float = 3.0,
    context: int = 20,
) -> tuple[np.ndarray, np.ndarray]:
    """Contextual point anomalies: abnormal relative to the local window.

    The deviation is measured against the mean/std of the surrounding
    ``context`` observations, so the result can be unremarkable globally
    but clearly out of place locally.
    """
    out = channel.copy()
    labels = np.zeros(channel.shape[0], dtype=np.int64)
    time = channel.shape[0]
    for position in positions:
        lo = max(0, position - context)
        hi = min(time, position + context)
        local = channel[lo:hi]
        local_std = local.std() + 1e-8
        sign = rng.choice([-1.0, 1.0])
        out[position] = local.mean() + sign * magnitude * rng.uniform(0.8, 1.4) * local_std
        labels[position] = 1
    return out, labels


def inject_shapelet(
    channel: np.ndarray,
    segments: list[tuple[int, int]],
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Shapelet anomalies: replace segments with a different basic shape.

    The replacement keeps the local mean and amplitude but swaps the
    waveform (flat line or square wave), producing the short-lived pattern
    deviations the amplitude-based frequency mask targets.
    """
    out = channel.copy()
    labels = np.zeros(channel.shape[0], dtype=np.int64)
    for start, stop in segments:
        segment = channel[start:stop]
        amplitude = segment.std() + 1e-8
        base = segment.mean()
        length = stop - start
        if rng.random() < 0.5:
            shape = np.full(length, base)  # flatline
        else:
            period = max(2, length // 4)
            shape = base + amplitude * np.sign(np.sin(2 * np.pi * np.arange(length) / period))
        out[start:stop] = shape
        labels[start:stop] = 1
    return out, labels


def inject_seasonal(
    channel: np.ndarray,
    segments: list[tuple[int, int]],
    rng: np.random.Generator,
    factor_range: tuple[float, float] = (2.0, 3.0),
) -> tuple[np.ndarray, np.ndarray]:
    """Seasonal anomalies: locally compress (speed up) the oscillation.

    The segment is resampled at ``factor`` times its normal rate, changing
    the local frequency content while preserving amplitude — the NIPS-TS-
    Seasonal construction.
    """
    out = channel.copy()
    labels = np.zeros(channel.shape[0], dtype=np.int64)
    time = channel.shape[0]
    for start, stop in segments:
        factor = rng.uniform(*factor_range)
        length = stop - start
        source_stop = min(time, start + int(length * factor))
        source = channel[start:source_stop]
        resampled = np.interp(
            np.linspace(0, source.shape[0] - 1, length),
            np.arange(source.shape[0]),
            source,
        )
        out[start:stop] = resampled
        labels[start:stop] = 1
    return out, labels


def inject_trend(
    channel: np.ndarray,
    segments: list[tuple[int, int]],
    rng: np.random.Generator,
    slope_scale: float = 0.05,
) -> tuple[np.ndarray, np.ndarray]:
    """Trend anomalies: add a linear drift over each segment.

    The drift accumulates to several standard deviations by segment end,
    then the series snaps back — a transient trend shift.
    """
    out = channel.copy()
    labels = np.zeros(channel.shape[0], dtype=np.int64)
    std = channel.std() + 1e-8
    for start, stop in segments:
        length = stop - start
        slope = rng.choice([-1.0, 1.0]) * slope_scale * std * rng.uniform(0.8, 1.4)
        out[start:stop] = out[start:stop] + slope * np.arange(length)
        labels[start:stop] = 1
    return out, labels
