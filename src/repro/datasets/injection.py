"""Anomaly injection library.

Implements the behaviour-driven anomaly taxonomy of Lai et al. (NeurIPS
2021), the source of the paper's NIPS-TS benchmarks and of its anomaly
vocabulary: *point* anomalies (global, contextual) and *pattern* anomalies
(shapelet, seasonal, trend).  Every injector mutates a copy of the input
and returns the new series together with a binary label array.

All injectors operate on one channel of shape ``(time,)``; multivariate
generators call them per channel.  Randomness flows through an explicit
``numpy.random.Generator`` so datasets are fully reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "inject_global",
    "inject_contextual",
    "inject_shapelet",
    "inject_seasonal",
    "inject_trend",
    "random_positions",
    "random_segments",
    "inject_nan_burst",
    "inject_stuck_at",
    "inject_dropout_gap",
    "inject_spike_corruption",
    "inject_scale_drift",
    "STREAM_FAULTS",
    "inject_stream_fault",
    "DRIFT_SCENARIOS",
    "inject_drift",
]


def random_positions(length: int, count: int, rng: np.random.Generator, margin: int = 1) -> np.ndarray:
    """Sample ``count`` distinct positions in ``[margin, length - margin)``."""
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    candidates = np.arange(margin, length - margin)
    if count > candidates.size:
        raise ValueError(f"cannot place {count} anomalies in {candidates.size} slots")
    return np.sort(rng.choice(candidates, size=count, replace=False))


def random_segments(
    length: int,
    count: int,
    segment_length: int,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Sample ``count`` non-overlapping ``[start, stop)`` segments."""
    if count <= 0:
        return []
    segments: list[tuple[int, int]] = []
    attempts = 0
    while len(segments) < count and attempts < 1000 * count:
        attempts += 1
        start = int(rng.integers(0, max(1, length - segment_length)))
        stop = start + segment_length
        if all(stop <= s or start >= e for s, e in segments):
            segments.append((start, stop))
    segments.sort()
    return segments


def inject_global(
    channel: np.ndarray,
    positions: np.ndarray,
    rng: np.random.Generator,
    magnitude: float = 6.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Global point anomalies: values far outside the global range.

    Each selected observation is pushed ``magnitude`` global standard
    deviations away from the global mean, with random sign.
    """
    out = channel.copy()
    labels = np.zeros(channel.shape[0], dtype=np.int64)
    if positions.size == 0:
        return out, labels
    mean, std = channel.mean(), channel.std() + 1e-8
    signs = rng.choice([-1.0, 1.0], size=positions.size)
    jitter = rng.uniform(0.8, 1.4, size=positions.size)
    out[positions] = mean + signs * magnitude * jitter * std
    labels[positions] = 1
    return out, labels


def inject_contextual(
    channel: np.ndarray,
    positions: np.ndarray,
    rng: np.random.Generator,
    magnitude: float = 3.0,
    context: int = 20,
) -> tuple[np.ndarray, np.ndarray]:
    """Contextual point anomalies: abnormal relative to the local window.

    The deviation is measured against the mean/std of the surrounding
    ``context`` observations, so the result can be unremarkable globally
    but clearly out of place locally.
    """
    out = channel.copy()
    labels = np.zeros(channel.shape[0], dtype=np.int64)
    time = channel.shape[0]
    for position in positions:
        lo = max(0, position - context)
        hi = min(time, position + context)
        local = channel[lo:hi]
        local_std = local.std() + 1e-8
        sign = rng.choice([-1.0, 1.0])
        out[position] = local.mean() + sign * magnitude * rng.uniform(0.8, 1.4) * local_std
        labels[position] = 1
    return out, labels


def inject_shapelet(
    channel: np.ndarray,
    segments: list[tuple[int, int]],
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Shapelet anomalies: replace segments with a different basic shape.

    The replacement keeps the local mean and amplitude but swaps the
    waveform (flat line or square wave), producing the short-lived pattern
    deviations the amplitude-based frequency mask targets.
    """
    out = channel.copy()
    labels = np.zeros(channel.shape[0], dtype=np.int64)
    for start, stop in segments:
        segment = channel[start:stop]
        amplitude = segment.std() + 1e-8
        base = segment.mean()
        length = stop - start
        if rng.random() < 0.5:
            shape = np.full(length, base)  # flatline
        else:
            period = max(2, length // 4)
            shape = base + amplitude * np.sign(np.sin(2 * np.pi * np.arange(length) / period))
        out[start:stop] = shape
        labels[start:stop] = 1
    return out, labels


def inject_seasonal(
    channel: np.ndarray,
    segments: list[tuple[int, int]],
    rng: np.random.Generator,
    factor_range: tuple[float, float] = (2.0, 3.0),
) -> tuple[np.ndarray, np.ndarray]:
    """Seasonal anomalies: locally compress (speed up) the oscillation.

    The segment is resampled at ``factor`` times its normal rate, changing
    the local frequency content while preserving amplitude — the NIPS-TS-
    Seasonal construction.
    """
    out = channel.copy()
    labels = np.zeros(channel.shape[0], dtype=np.int64)
    time = channel.shape[0]
    for start, stop in segments:
        factor = rng.uniform(*factor_range)
        length = stop - start
        source_stop = min(time, start + int(length * factor))
        source = channel[start:source_stop]
        resampled = np.interp(
            np.linspace(0, source.shape[0] - 1, length),
            np.arange(source.shape[0]),
            source,
        )
        out[start:stop] = resampled
        labels[start:stop] = 1
    return out, labels


def inject_trend(
    channel: np.ndarray,
    segments: list[tuple[int, int]],
    rng: np.random.Generator,
    slope_scale: float = 0.05,
) -> tuple[np.ndarray, np.ndarray]:
    """Trend anomalies: add a linear drift over each segment.

    The drift accumulates to several standard deviations by segment end,
    then the series snaps back — a transient trend shift.
    """
    out = channel.copy()
    labels = np.zeros(channel.shape[0], dtype=np.int64)
    std = channel.std() + 1e-8
    for start, stop in segments:
        length = stop - start
        slope = rng.choice([-1.0, 1.0]) * slope_scale * std * rng.uniform(0.8, 1.4)
        out[start:stop] = out[start:stop] + slope * np.arange(length)
        labels[start:stop] = 1
    return out, labels


# ---------------------------------------------------------------------------
# Stream-fault taxonomy (telemetry corruption, not anomalies)
# ---------------------------------------------------------------------------
# The injectors above model *behavioural* anomalies — real events a
# detector should flag.  The injectors below model *sensor/transport
# faults*: malformed telemetry that a production scoring service must
# survive (see repro.robustness.FaultPolicy and
# benchmarks/bench_robustness_faults.py).  Same contract: one channel in,
# (corrupted, mask) out, where the mask marks corrupted positions.


def inject_nan_burst(
    channel: np.ndarray,
    segments: list[tuple[int, int]],
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """NaN burst: the sensor reports nothing for a contiguous stretch."""
    out = channel.astype(np.float64).copy()
    mask = np.zeros(channel.shape[0], dtype=np.int64)
    for start, stop in segments:
        out[start:stop] = np.nan
        mask[start:stop] = 1
    return out, mask


def inject_stuck_at(
    channel: np.ndarray,
    segments: list[tuple[int, int]],
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Stuck-at sensor: the last value before the fault repeats verbatim."""
    out = channel.copy()
    mask = np.zeros(channel.shape[0], dtype=np.int64)
    for start, stop in segments:
        out[start:stop] = channel[max(0, start - 1)]
        mask[start:stop] = 1
    return out, mask


def inject_dropout_gap(
    channel: np.ndarray,
    segments: list[tuple[int, int]],
    rng: np.random.Generator,
    fill: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Dropout gap: the channel collapses to a default reading (usually 0),
    the classic signature of a disconnected transducer."""
    out = channel.copy()
    mask = np.zeros(channel.shape[0], dtype=np.int64)
    for start, stop in segments:
        out[start:stop] = fill
        mask[start:stop] = 1
    return out, mask


def inject_spike_corruption(
    channel: np.ndarray,
    positions: np.ndarray,
    rng: np.random.Generator,
    magnitude: float = 1e3,
) -> tuple[np.ndarray, np.ndarray]:
    """Spike corruption: isolated non-physical readings (bit flips, ADC
    glitches) orders of magnitude outside the signal range."""
    out = channel.copy()
    mask = np.zeros(channel.shape[0], dtype=np.int64)
    if positions.size == 0:
        return out, mask
    std = channel.std() + 1e-8
    signs = rng.choice([-1.0, 1.0], size=positions.size)
    out[positions] = channel.mean() + signs * magnitude * std
    mask[positions] = 1
    return out, mask


def inject_scale_drift(
    channel: np.ndarray,
    segments: list[tuple[int, int]],
    rng: np.random.Generator,
    factor_range: tuple[float, float] = (4.0, 8.0),
) -> tuple[np.ndarray, np.ndarray]:
    """Scale drift: a gain/unit error multiplies the signal for a stretch
    (e.g. a firmware update switching raw counts for engineering units)."""
    out = channel.copy()
    mask = np.zeros(channel.shape[0], dtype=np.int64)
    for start, stop in segments:
        factor = rng.uniform(*factor_range) * rng.choice([1.0, -1.0])
        out[start:stop] = channel[start:stop] * factor
        mask[start:stop] = 1
    return out, mask


#: Registry of the stream-fault taxonomy; values are ``(kind, injector)``
#: where ``kind`` is ``"segment"`` or ``"point"``.
STREAM_FAULTS: dict[str, tuple[str, object]] = {
    "nan_burst": ("segment", inject_nan_burst),
    "stuck_at": ("segment", inject_stuck_at),
    "dropout_gap": ("segment", inject_dropout_gap),
    "spike_corruption": ("point", inject_spike_corruption),
    "scale_drift": ("segment", inject_scale_drift),
}


# ---------------------------------------------------------------------------
# Drift scenarios (persistent distribution shift, not anomalies or faults)
# ---------------------------------------------------------------------------
# A third regime next to anomalies (transient events to *flag*) and stream
# faults (corruption to *survive*): drift is a persistent change in the
# data-generating process that silently invalidates the calibrated
# threshold (the Fig. 9 failure mode, made permanent).  The serving
# lifecycle (repro.serve.lifecycle.DriftMonitor) must notice it and
# refresh the model; these scenarios are its test vectors.  Each shifts
# the distribution from an onset point to the end of the series.

#: Drift-scenario names accepted by :func:`inject_drift`.
DRIFT_SCENARIOS: tuple[str, ...] = (
    "level_shift",
    "variance_drift",
    "trend_drift",
    "seasonal_drift",
    "noise_drift",
)


def inject_drift(
    series: np.ndarray,
    scenario: str,
    rng: np.random.Generator,
    onset_fraction: float = 0.5,
    severity: float = 2.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply a persistent distribution shift to a ``(time, features)`` series.

    From ``onset_fraction`` of the timeline onward, every channel shifts
    according to ``scenario``; ``severity`` scales the shift in units of
    the per-channel pre-onset standard deviation.  Returns
    ``(drifted, mask)`` where ``mask`` marks the drifted suffix — ground
    truth for drift-detection tests, *not* anomaly labels (under drift,
    the shifted regime is the new normal).

    Scenarios: ``level_shift`` (constant offset), ``variance_drift``
    (amplitude rescaled about the pre-onset mean), ``trend_drift``
    (accumulating linear ramp), ``seasonal_drift`` (oscillation resampled
    at a faster rate), ``noise_drift`` (added Gaussian noise).
    """
    if scenario not in DRIFT_SCENARIOS:
        raise ValueError(
            f"unknown drift scenario {scenario!r}; known: {sorted(DRIFT_SCENARIOS)}"
        )
    if series.ndim != 2:
        raise ValueError(f"expected (time, features), got shape {series.shape}")
    if not 0.0 < onset_fraction < 1.0:
        raise ValueError(f"onset_fraction must be in (0, 1), got {onset_fraction}")
    time, features = series.shape
    onset = max(1, min(time - 1, int(round(onset_fraction * time))))
    out = series.astype(np.float64).copy()
    mask = np.zeros(time, dtype=np.int64)
    mask[onset:] = 1
    tail = time - onset
    for channel in range(features):
        before = out[:onset, channel]
        std = before.std() + 1e-8
        mean = before.mean()
        if scenario == "level_shift":
            out[onset:, channel] += rng.choice([-1.0, 1.0]) * severity * std
        elif scenario == "variance_drift":
            factor = 1.0 + severity
            out[onset:, channel] = mean + (out[onset:, channel] - mean) * factor
        elif scenario == "trend_drift":
            ramp = np.arange(tail) / max(1, tail)
            out[onset:, channel] += rng.choice([-1.0, 1.0]) * severity * std * ramp * 3.0
        elif scenario == "seasonal_drift":
            factor = 1.0 + severity
            source = out[onset:, channel]
            positions = (np.arange(tail) * factor) % max(1, tail - 1)
            out[onset:, channel] = np.interp(positions, np.arange(tail), source)
        elif scenario == "noise_drift":
            out[onset:, channel] += rng.normal(0.0, severity * std, size=tail)
    return out, mask


def inject_stream_fault(
    series: np.ndarray,
    fault: str,
    rng: np.random.Generator,
    fault_fraction: float = 0.05,
    segment_length: int = 25,
    channel_fraction: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Corrupt a multivariate ``(time, features)`` series with one fault type.

    A random subset of channels (at least one, ``channel_fraction`` of the
    total) receives the fault over roughly ``fault_fraction`` of the
    timeline.  Returns ``(corrupted, mask)`` where ``mask`` has shape
    ``(time,)`` and marks observations with at least one corrupted
    component — the ground truth for measuring degradation, *not* an
    anomaly label.
    """
    if fault not in STREAM_FAULTS:
        raise ValueError(
            f"unknown stream fault {fault!r}; known: {sorted(STREAM_FAULTS)}"
        )
    if series.ndim != 2:
        raise ValueError(f"expected (time, features), got shape {series.shape}")
    kind, injector = STREAM_FAULTS[fault]
    time, features = series.shape
    out = series.astype(np.float64).copy()
    mask = np.zeros(time, dtype=np.int64)
    n_channels = max(1, int(round(channel_fraction * features)))
    channels = rng.choice(features, size=n_channels, replace=False)
    for channel_index in channels:
        if kind == "point":
            count = max(1, int(fault_fraction * time))
            positions = random_positions(time, count, rng)
            corrupted, channel_mask = injector(out[:, channel_index], positions, rng)
        else:
            length = min(segment_length, max(2, time // 4))
            count = max(1, int(fault_fraction * time / length))
            segments = random_segments(time, count, length, rng)
            corrupted, channel_mask = injector(out[:, channel_index], segments, rng)
        out[:, channel_index] = corrupted
        mask |= channel_mask
    return out, mask
