"""Benchmark datasets: containers, generators, anomaly injection, windowing."""

from .base import StandardScaler, TimeSeriesDataset
from .io import (
    load_dataset_csv,
    load_dataset_npz,
    save_dataset_csv,
    save_dataset_npz,
)
from .injection import (
    STREAM_FAULTS,
    inject_contextual,
    inject_global,
    inject_seasonal,
    inject_shapelet,
    inject_stream_fault,
    inject_trend,
    random_positions,
    random_segments,
)
from .profiles import (
    PROFILE_SPECS,
    DatasetSpec,
    make_msl,
    make_psm,
    make_smap,
    make_smd,
    make_swat,
)
from .registry import DATASET_GENERATORS, available_datasets, get_dataset
from .synthetic import make_nips_ts_global, make_nips_ts_seasonal, sinusoidal_base
from .windows import non_overlapping_windows, score_series, sliding_windows

__all__ = [
    "TimeSeriesDataset",
    "StandardScaler",
    "save_dataset_npz",
    "load_dataset_npz",
    "save_dataset_csv",
    "load_dataset_csv",
    "inject_global",
    "inject_contextual",
    "inject_shapelet",
    "inject_seasonal",
    "inject_trend",
    "inject_stream_fault",
    "STREAM_FAULTS",
    "random_positions",
    "random_segments",
    "DatasetSpec",
    "PROFILE_SPECS",
    "make_msl",
    "make_smap",
    "make_psm",
    "make_smd",
    "make_swat",
    "make_nips_ts_global",
    "make_nips_ts_seasonal",
    "sinusoidal_base",
    "DATASET_GENERATORS",
    "get_dataset",
    "available_datasets",
    "sliding_windows",
    "non_overlapping_windows",
    "score_series",
]
