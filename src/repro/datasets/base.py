"""Dataset container and normalisation.

A :class:`TimeSeriesDataset` bundles the train/validation/test splits and
test labels in the layout every experiment consumes.  Normalisation
statistics are always fit on the training split only — fitting on test
data would leak the distribution shift the paper studies (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["TimeSeriesDataset", "StandardScaler"]


class StandardScaler:
    """Per-feature z-score normalisation fit on the training split."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, series: np.ndarray) -> "StandardScaler":
        if series.ndim != 2:
            raise ValueError(f"expected (time, features), got shape {series.shape}")
        self.mean_ = series.mean(axis=0)
        std = series.std(axis=0)
        # Constant channels (common in SWaT-style actuator data) would
        # otherwise divide by zero.
        self.std_ = np.where(std < 1e-8, 1.0, std)
        return self

    def transform(self, series: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler must be fit before transform")
        return (series - self.mean_) / self.std_

    def fit_transform(self, series: np.ndarray) -> np.ndarray:
        return self.fit(series).transform(series)

    def inverse_transform(self, series: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler must be fit before inverse_transform")
        return series * self.std_ + self.mean_


@dataclass(frozen=True)
class TimeSeriesDataset:
    """Train/validation/test splits plus test labels.

    Attributes
    ----------
    name:
        Dataset identifier (e.g. ``"MSL"``); keys into the paper presets.
    train, validation, test:
        ``(time, features)`` float arrays.
    test_labels:
        ``(time,)`` binary array aligned with ``test``; 1 marks anomalies.
    train_labels:
        Optional labels for the training split (synthetic generators keep
        them for diagnostics; real protocols train unsupervised).
    """

    name: str
    train: np.ndarray
    validation: np.ndarray
    test: np.ndarray
    test_labels: np.ndarray
    train_labels: np.ndarray | None = None

    def __post_init__(self) -> None:
        for split_name in ("train", "validation", "test"):
            split = getattr(self, split_name)
            if split.ndim != 2:
                raise ValueError(f"{split_name} must be (time, features), got {split.shape}")
        if self.test_labels.shape[0] != self.test.shape[0]:
            raise ValueError(
                f"test_labels length {self.test_labels.shape[0]} != test length {self.test.shape[0]}"
            )
        widths = {self.train.shape[1], self.validation.shape[1], self.test.shape[1]}
        if len(widths) != 1:
            raise ValueError(f"splits disagree on feature count: {widths}")

    @property
    def n_features(self) -> int:
        return self.train.shape[1]

    @property
    def anomaly_ratio(self) -> float:
        """Fraction of test observations labelled anomalous."""
        return float(self.test_labels.mean())

    def normalised(self) -> "TimeSeriesDataset":
        """Return a copy z-scored with statistics from the training split."""
        scaler = StandardScaler().fit(self.train)
        return replace(
            self,
            train=scaler.transform(self.train),
            validation=scaler.transform(self.validation),
            test=scaler.transform(self.test),
        )

    def summary(self) -> dict[str, object]:
        """Statistics row matching the paper's Table II."""
        return {
            "dataset": self.name,
            "dimension": self.n_features,
            "train": self.train.shape[0],
            "validation": self.validation.shape[0],
            "test": self.test.shape[0],
            "anomaly_ratio_pct": round(100.0 * self.anomaly_ratio, 1),
        }
