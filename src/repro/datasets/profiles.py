"""Statistically matched surrogates for the five real-world benchmarks.

The paper evaluates on MSL, SMAP (NASA telemetry), PSM (eBay server
metrics), SMD (internet server machines) and SWaT (water-treatment
testbed).  Those dumps are not redistributable offline, so each generator
here synthesises a multivariate series that matches the published
characteristics the evaluation actually depends on:

* dimension, split lengths and anomaly ratio from Table II (lengths are
  multiplied by a ``scale`` factor so CPU benches stay tractable);
* the domain's channel behaviours (periodic sensors, sawtooth tank levels,
  binary actuators/commands, bursty rates, smooth drifting baselines);
* the anomaly taxonomy: correlated multi-channel events mixing point
  (global/contextual) and pattern (shapelet/seasonal/trend) anomalies,
  with long contiguous attack segments for SWaT and point-heavy telemetry
  glitches for the NASA sets;
* light unlabeled contamination of the training split — the "abnormal
  bias" of Challenge I — and a mild level shift between training and test
  regimes for SMAP, the dataset the paper uses to illustrate distribution
  shift (Fig. 1/9).

Every generator is a pure function of ``(seed, scale)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import TimeSeriesDataset
from .injection import (
    inject_contextual,
    inject_global,
    inject_seasonal,
    inject_shapelet,
    inject_trend,
)

__all__ = [
    "make_msl",
    "make_smap",
    "make_psm",
    "make_smd",
    "make_swat",
    "DatasetSpec",
    "PROFILE_SPECS",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of a benchmark dataset (paper Table II)."""

    name: str
    dimension: int
    train_len: int
    val_len: int
    test_len: int
    anomaly_ratio: float  # fraction of test observations


PROFILE_SPECS: dict[str, DatasetSpec] = {
    "MSL": DatasetSpec("MSL", 55, 46_653, 11_664, 73_729, 0.105),
    "PSM": DatasetSpec("PSM", 25, 105_984, 26_497, 87_841, 0.278),
    "SMD": DatasetSpec("SMD", 38, 566_724, 141_681, 708_420, 0.042),
    "SWaT": DatasetSpec("SWaT", 51, 396_000, 99_000, 449_919, 0.121),
    "SMAP": DatasetSpec("SMAP", 25, 108_146, 27_037, 427_617, 0.128),
}


# ----------------------------------------------------------------------
# channel primitives
# ----------------------------------------------------------------------
def _periodic_channel(length: int, rng: np.random.Generator) -> np.ndarray:
    period = rng.uniform(30, 200)
    phase = rng.uniform(0, 2 * np.pi)
    amplitude = rng.uniform(0.5, 2.0)
    harmonics = amplitude * 0.3 * np.sin(4 * np.pi * np.arange(length) / period + phase)
    base = amplitude * np.sin(2 * np.pi * np.arange(length) / period + phase)
    return base + harmonics + rng.normal(0, 0.05 * amplitude, length)


def _sawtooth_channel(length: int, rng: np.random.Generator) -> np.ndarray:
    """Tank-level style channel: slow fill, fast drain."""
    period = int(rng.uniform(100, 400))
    t = np.arange(length)
    ramp = (t % period) / period
    return ramp * rng.uniform(1.0, 3.0) + rng.normal(0, 0.02, length)


def _actuator_channel(length: int, rng: np.random.Generator) -> np.ndarray:
    """Binary on/off channel driven by geometric dwell times."""
    out = np.empty(length)
    state = float(rng.integers(0, 2))
    position = 0
    while position < length:
        dwell = int(rng.geometric(1.0 / rng.uniform(50, 300)))
        out[position : position + dwell] = state
        state = 1.0 - state
        position += dwell
    return out + rng.normal(0, 0.01, length)


def _ar1_channel(length: int, rng: np.random.Generator) -> np.ndarray:
    """Smooth mean-reverting baseline (AR(1) process)."""
    phi = rng.uniform(0.95, 0.995)
    noise = rng.normal(0, 0.1, length)
    out = np.empty(length)
    out[0] = noise[0]
    for t in range(1, length):
        out[t] = phi * out[t - 1] + noise[t]
    return out


def _bursty_channel(length: int, rng: np.random.Generator) -> np.ndarray:
    """Request-rate style channel: log-normal bursts over a daily cycle."""
    period = rng.uniform(200, 500)
    cycle = 1.0 + 0.5 * np.sin(2 * np.pi * np.arange(length) / period)
    bursts = rng.lognormal(mean=0.0, sigma=0.4, size=length)
    return cycle * bursts


_CHANNEL_BUILDERS = {
    "periodic": _periodic_channel,
    "sawtooth": _sawtooth_channel,
    "actuator": _actuator_channel,
    "ar1": _ar1_channel,
    "bursty": _bursty_channel,
}


def _build_channels(
    length: int,
    dimension: int,
    mix: dict[str, float],
    rng: np.random.Generator,
) -> np.ndarray:
    """Assemble ``dimension`` channels with the given behaviour mixture."""
    kinds = list(mix)
    weights = np.array([mix[k] for k in kinds], dtype=np.float64)
    weights /= weights.sum()
    assignments = rng.choice(kinds, size=dimension, p=weights)
    columns = [_CHANNEL_BUILDERS[kind](length, rng) for kind in assignments]
    return np.stack(columns, axis=1)


# ----------------------------------------------------------------------
# correlated multi-channel anomaly events
# ----------------------------------------------------------------------
_POINT_INJECTORS = ("global", "contextual")
_PATTERN_INJECTORS = ("shapelet", "seasonal", "trend")


def _inject_events(
    data: np.ndarray,
    target_ratio: float,
    rng: np.random.Generator,
    point_weight: float = 0.5,
    segment_length_range: tuple[int, int] = (20, 100),
    channel_fraction: float = 0.3,
) -> tuple[np.ndarray, np.ndarray]:
    """Corrupt ``data`` with correlated events until ``target_ratio`` is hit.

    Each event selects a time span and a random subset of channels; point
    events touch 1-3 observations, pattern events a contiguous segment.
    Labels mark the union over channels (an observation is anomalous if
    any channel is).
    """
    out = data.copy()
    time, dimension = data.shape
    labels = np.zeros(time, dtype=np.int64)
    target = int(target_ratio * time)
    n_channels = max(1, int(channel_fraction * dimension))
    guard = 0
    while labels.sum() < target and guard < 100_000:
        guard += 1
        is_point = rng.random() < point_weight
        if is_point:
            start = int(rng.integers(1, time - 3))
            stop = start + int(rng.integers(1, 4))
        else:
            seg_len = int(rng.integers(*segment_length_range))
            seg_len = min(seg_len, max(2, target - int(labels.sum())))
            start = int(rng.integers(0, max(1, time - seg_len)))
            stop = start + seg_len
        channels = rng.choice(dimension, size=n_channels, replace=False)
        kind = rng.choice(_POINT_INJECTORS if is_point else _PATTERN_INJECTORS)
        for channel in channels:
            column = out[:, channel]
            if kind == "global":
                column, _ = inject_global(column, np.arange(start, stop), rng)
            elif kind == "contextual":
                column, _ = inject_contextual(column, np.arange(start, stop), rng)
            elif kind == "shapelet":
                column, _ = inject_shapelet(column, [(start, stop)], rng)
            elif kind == "seasonal":
                column, _ = inject_seasonal(column, [(start, stop)], rng)
            else:  # trend
                column, _ = inject_trend(column, [(start, stop)], rng, slope_scale=0.1)
            out[:, channel] = column
        labels[start:stop] = 1
    return out, labels


def _scaled_spec(spec: DatasetSpec, scale: float) -> tuple[int, int, int]:
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return (
        max(400, int(spec.train_len * scale)),
        max(200, int(spec.val_len * scale)),
        max(400, int(spec.test_len * scale)),
    )


def _make_profile(
    spec: DatasetSpec,
    mix: dict[str, float],
    seed: int,
    scale: float,
    point_weight: float,
    segment_length_range: tuple[int, int],
    train_contamination: float,
    test_level_shift: float = 0.0,
) -> TimeSeriesDataset:
    rng = np.random.default_rng(seed)
    train_len, val_len, test_len = _scaled_spec(spec, scale)

    # One long stationary regime, split chronologically like the real data.
    total = train_len + val_len + test_len
    series = _build_channels(total, spec.dimension, mix, rng)
    train = series[:train_len]
    validation = series[train_len : train_len + val_len]
    test = series[train_len + val_len :]

    if test_level_shift:
        # Distribution shift: the test regime drifts (Fig. 1/9 motivation).
        drift = test_level_shift * np.linspace(0.0, 1.0, test.shape[0])[:, None]
        shifted_channels = rng.random(spec.dimension) < 0.5
        test = test + drift * shifted_channels[None, :]

    train, train_labels = _inject_events(
        train, train_contamination, rng,
        point_weight=point_weight, segment_length_range=segment_length_range,
    )
    test, test_labels = _inject_events(
        test, spec.anomaly_ratio, rng,
        point_weight=point_weight, segment_length_range=segment_length_range,
    )

    return TimeSeriesDataset(
        name=spec.name,
        train=train,
        validation=validation,
        test=test,
        test_labels=test_labels,
        train_labels=train_labels,
    )


def make_msl(seed: int = 0, scale: float = 1.0) -> TimeSeriesDataset:
    """MSL surrogate: rover telemetry — many command/actuator channels."""
    return _make_profile(
        PROFILE_SPECS["MSL"],
        mix={"periodic": 0.3, "actuator": 0.4, "ar1": 0.3},
        seed=seed, scale=scale,
        point_weight=0.5, segment_length_range=(20, 80),
        train_contamination=0.02,
    )


def make_smap(seed: int = 0, scale: float = 1.0) -> TimeSeriesDataset:
    """SMAP surrogate: satellite telemetry with train-to-test regime drift.

    The paper uses SMAP to illustrate distribution shift (Fig. 1 right,
    Fig. 9), so the test regime includes a slow level drift absent from
    training.
    """
    return _make_profile(
        PROFILE_SPECS["SMAP"],
        mix={"periodic": 0.4, "actuator": 0.3, "ar1": 0.3},
        seed=seed, scale=scale,
        point_weight=0.6, segment_length_range=(20, 60),
        train_contamination=0.02,
        test_level_shift=1.5,
    )


def make_psm(seed: int = 0, scale: float = 1.0) -> TimeSeriesDataset:
    """PSM surrogate: pooled eBay server metrics — bursty and periodic."""
    return _make_profile(
        PROFILE_SPECS["PSM"],
        mix={"bursty": 0.4, "periodic": 0.4, "ar1": 0.2},
        seed=seed, scale=scale,
        point_weight=0.4, segment_length_range=(30, 120),
        train_contamination=0.03,
    )


def make_smd(seed: int = 0, scale: float = 1.0) -> TimeSeriesDataset:
    """SMD surrogate: internet server machines — the longest benchmark."""
    return _make_profile(
        PROFILE_SPECS["SMD"],
        mix={"periodic": 0.4, "bursty": 0.3, "ar1": 0.3},
        seed=seed, scale=scale,
        point_weight=0.5, segment_length_range=(20, 100),
        train_contamination=0.01,
    )


def make_swat(seed: int = 0, scale: float = 1.0) -> TimeSeriesDataset:
    """SWaT surrogate: water-treatment plant — long contiguous attacks.

    Channels mix slow sawtooth tank levels, continuous sensors and binary
    actuators; anomalies are long pattern segments (staged attacks), so
    ``point_weight`` is low and segments are long.
    """
    return _make_profile(
        PROFILE_SPECS["SWaT"],
        mix={"sawtooth": 0.3, "periodic": 0.2, "actuator": 0.3, "ar1": 0.2},
        seed=seed, scale=scale,
        point_weight=0.1, segment_length_range=(80, 300),
        train_contamination=0.005,
    )
