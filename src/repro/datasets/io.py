"""Dataset persistence: CSV and NPZ round-trips.

Lets users bring their own data into the :class:`TimeSeriesDataset`
pipeline and export the synthetic surrogates for inspection in external
tools.  CSV layout: one file per split (``<name>_train.csv`` etc.), one
column per feature with a header row, plus ``<name>_test_labels.csv`` for
the labels.  NPZ stores the whole dataset in one file.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .base import TimeSeriesDataset

__all__ = ["save_dataset_npz", "load_dataset_npz", "save_dataset_csv", "load_dataset_csv"]


def save_dataset_npz(dataset: TimeSeriesDataset, path: str | Path) -> Path:
    """Write the full dataset to one ``.npz`` archive; returns the path."""
    path = Path(path)
    payload = {
        "name": np.array(dataset.name),
        "train": dataset.train,
        "validation": dataset.validation,
        "test": dataset.test,
        "test_labels": dataset.test_labels,
    }
    if dataset.train_labels is not None:
        payload["train_labels"] = dataset.train_labels
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_dataset_npz(path: str | Path) -> TimeSeriesDataset:
    """Load a dataset written by :func:`save_dataset_npz`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        return TimeSeriesDataset(
            name=str(archive["name"]),
            train=archive["train"],
            validation=archive["validation"],
            test=archive["test"],
            test_labels=archive["test_labels"],
            train_labels=archive["train_labels"] if "train_labels" in archive.files else None,
        )


def save_dataset_csv(dataset: TimeSeriesDataset, directory: str | Path) -> Path:
    """Write one CSV per split under ``directory``; returns the directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    header = ",".join(f"f{i}" for i in range(dataset.n_features))
    for split in ("train", "validation", "test"):
        np.savetxt(
            directory / f"{dataset.name}_{split}.csv",
            getattr(dataset, split),
            delimiter=",", header=header, comments="",
        )
    np.savetxt(
        directory / f"{dataset.name}_test_labels.csv",
        dataset.test_labels, fmt="%d", header="label", comments="",
    )
    return directory


def load_dataset_csv(directory: str | Path, name: str) -> TimeSeriesDataset:
    """Load a dataset written by :func:`save_dataset_csv`."""
    directory = Path(directory)

    def read(filename: str, **kwargs) -> np.ndarray:
        return np.loadtxt(directory / filename, delimiter=",", skiprows=1, **kwargs)

    train = np.atleast_2d(read(f"{name}_train.csv"))
    validation = np.atleast_2d(read(f"{name}_validation.csv"))
    test = np.atleast_2d(read(f"{name}_test.csv"))
    # A single-feature CSV loads as 1-D -> (1, time); fix the orientation.
    if train.shape[0] == 1 and train.shape[1] > 1:
        train, validation, test = train.T, validation.T, test.T
    labels = np.loadtxt(directory / f"{name}_test_labels.csv", skiprows=1).astype(np.int64)
    return TimeSeriesDataset(
        name=name, train=train, validation=validation, test=test,
        test_labels=np.atleast_1d(labels),
    )
