"""Dataset registry: name -> generator, with caching.

``get_dataset("MSL", scale=0.01)`` returns a CPU-scale surrogate of the
benchmark; ``scale=1.0`` reproduces the Table II sizes.  Generators are
deterministic in ``(seed, scale)`` and results are memoised per process so
repeated bench invocations do not regenerate data.
"""

from __future__ import annotations

from typing import Callable

from .base import TimeSeriesDataset
from .profiles import make_msl, make_psm, make_smap, make_smd, make_swat
from .synthetic import make_nips_ts_global, make_nips_ts_seasonal

__all__ = ["DATASET_GENERATORS", "get_dataset", "available_datasets"]

DATASET_GENERATORS: dict[str, Callable[..., TimeSeriesDataset]] = {
    "MSL": make_msl,
    "SMAP": make_smap,
    "PSM": make_psm,
    "SMD": make_smd,
    "SWaT": make_swat,
    "NIPS-TS-Global": make_nips_ts_global,
    "NIPS-TS-Seasonal": make_nips_ts_seasonal,
}

_CACHE: dict[tuple[str, int, float], TimeSeriesDataset] = {}


def available_datasets() -> list[str]:
    """Names of all registered benchmark datasets."""
    return list(DATASET_GENERATORS)


def get_dataset(name: str, seed: int = 0, scale: float = 1.0, cache: bool = True) -> TimeSeriesDataset:
    """Build (or fetch from cache) a benchmark dataset by name.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (case-sensitive, paper spelling).
    seed:
        Generation seed; different seeds give independent realisations.
    scale:
        Length multiplier relative to the paper's Table II sizes.
    cache:
        Memoise per ``(name, seed, scale)``; disable for memory-sensitive
        sweeps over many configurations.
    """
    if name not in DATASET_GENERATORS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    key = (name, seed, scale)
    if cache and key in _CACHE:
        return _CACHE[key]
    dataset = DATASET_GENERATORS[name](seed=seed, scale=scale)
    if cache:
        _CACHE[key] = dataset
    return dataset
