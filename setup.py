"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` requires bdist_wheel; this shim
lets `python setup.py develop` provide the editable install instead.
"""
from setuptools import setup

setup()
