"""Dataset container and scaler tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import StandardScaler, TimeSeriesDataset


def _dataset(rng, anomalies=10) -> TimeSeriesDataset:
    labels = np.zeros(100, dtype=np.int64)
    labels[:anomalies] = 1
    return TimeSeriesDataset(
        name="toy",
        train=rng.normal(size=(200, 3)),
        validation=rng.normal(size=(50, 3)),
        test=rng.normal(size=(100, 3)),
        test_labels=labels,
    )


class TestScaler:
    def test_zero_mean_unit_std(self, rng):
        data = rng.normal(5.0, 3.0, size=(500, 4))
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_constant_channel_safe(self):
        data = np.ones((100, 2))
        data[:, 1] = np.arange(100)
        scaled = StandardScaler().fit_transform(data)
        assert np.all(np.isfinite(scaled))
        np.testing.assert_array_equal(scaled[:, 0], 0.0)

    def test_transform_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(rng.normal(size=(10, 2)))

    def test_inverse_roundtrip(self, rng):
        data = rng.normal(2.0, 4.0, size=(100, 3))
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            StandardScaler().fit(rng.normal(size=100))


class TestTimeSeriesDataset:
    def test_properties(self, rng):
        ds = _dataset(rng)
        assert ds.n_features == 3
        assert ds.anomaly_ratio == pytest.approx(0.1)

    def test_summary_matches_table2_format(self, rng):
        summary = _dataset(rng).summary()
        assert summary["dimension"] == 3
        assert summary["train"] == 200
        assert summary["anomaly_ratio_pct"] == 10.0

    def test_normalised_uses_train_statistics(self, rng):
        ds = _dataset(rng)
        normalised = ds.normalised()
        np.testing.assert_allclose(normalised.train.mean(axis=0), 0.0, atol=1e-10)
        # Test split is scaled with TRAIN stats, so not exactly zero-mean.
        assert not np.allclose(normalised.test.mean(axis=0), 0.0, atol=1e-12)

    def test_normalised_preserves_labels(self, rng):
        ds = _dataset(rng)
        np.testing.assert_array_equal(ds.normalised().test_labels, ds.test_labels)

    def test_label_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            TimeSeriesDataset(
                name="bad",
                train=rng.normal(size=(10, 2)),
                validation=rng.normal(size=(10, 2)),
                test=rng.normal(size=(10, 2)),
                test_labels=np.zeros(5),
            )

    def test_feature_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            TimeSeriesDataset(
                name="bad",
                train=rng.normal(size=(10, 2)),
                validation=rng.normal(size=(10, 3)),
                test=rng.normal(size=(10, 2)),
                test_labels=np.zeros(10),
            )

    def test_1d_split_rejected(self, rng):
        with pytest.raises(ValueError):
            TimeSeriesDataset(
                name="bad",
                train=rng.normal(size=10),
                validation=rng.normal(size=(10, 1)),
                test=rng.normal(size=(10, 1)),
                test_labels=np.zeros(10),
            )
