"""Windowing and series-scoring coverage tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import non_overlapping_windows, score_series, sliding_windows
from repro.datasets.windows import batched_window_scores


class TestSlidingWindows:
    def test_counts_and_content(self, rng):
        series = rng.normal(size=(10, 2))
        windows = sliding_windows(series, size=4, stride=2)
        assert windows.shape == (4, 4, 2)
        np.testing.assert_array_equal(windows[0], series[0:4])
        np.testing.assert_array_equal(windows[1], series[2:6])

    def test_stride_one(self, rng):
        series = rng.normal(size=(10, 1))
        assert sliding_windows(series, 4, 1).shape == (7, 4, 1)

    def test_series_shorter_than_window(self, rng):
        windows = sliding_windows(rng.normal(size=(3, 2)), 5, 1)
        assert windows.shape == (0, 5, 2)

    def test_non_overlapping(self, rng):
        series = rng.normal(size=(10, 1))
        windows = non_overlapping_windows(series, 3)
        assert windows.shape == (3, 3, 1)  # tail observation dropped

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            sliding_windows(rng.normal(size=(10, 1)), 0, 1)
        with pytest.raises(ValueError):
            sliding_windows(rng.normal(size=10), 4, 1)


class TestZeroCopyViews:
    """Regression: window extraction must not materialise copies."""

    def test_sliding_windows_is_a_view(self, rng):
        series = rng.normal(size=(50, 3))
        windows = sliding_windows(series, size=10, stride=1)
        assert windows.base is not None  # strided view, not a copy
        assert not windows.flags.writeable

    def test_strided_windows_stay_views(self, rng):
        series = rng.normal(size=(60, 2))
        windows = sliding_windows(series, size=8, stride=4)
        assert windows.base is not None
        assert not windows.flags.writeable

    def test_view_values_match_manual_extraction(self, rng):
        series = rng.normal(size=(30, 2))
        windows = sliding_windows(series, size=5, stride=3)
        manual = np.stack([series[s : s + 5] for s in range(0, 26, 3)])
        np.testing.assert_array_equal(np.asarray(windows), manual)

    def test_view_tracks_source_mutation(self, rng):
        """A true view sees later writes to the source series."""
        series = rng.normal(size=(12, 1))
        windows = sliding_windows(series, size=4, stride=1)
        series[0, 0] = 123.0
        assert windows[0, 0, 0] == 123.0

    def test_mutating_consumer_must_copy(self, rng):
        windows = sliding_windows(rng.normal(size=(10, 1)), 4, 1)
        with pytest.raises((ValueError, RuntimeError)):
            windows[0, 0, 0] = 1.0
        copied = windows.copy()
        copied[0, 0, 0] = 1.0  # the documented escape hatch

    def test_fancy_indexing_yields_writable_batch(self, rng):
        """Training gathers batches by fancy index, which copies."""
        windows = sliding_windows(rng.normal(size=(20, 2)), 5, 1)
        batch = windows[np.array([0, 3, 7])]
        assert batch.flags.writeable
        assert batch.base is None


class TestBatchedWindowScores:
    @staticmethod
    def _sum_score(batch: np.ndarray) -> np.ndarray:
        return batch.sum(axis=(1, 2))

    def test_matches_single_call(self, rng):
        windows = rng.normal(size=(37, 6, 2))
        chunked = batched_window_scores(windows, self._sum_score, batch_size=5)
        np.testing.assert_array_equal(chunked, self._sum_score(windows))

    def test_matches_per_window_loop(self, rng):
        windows = rng.normal(size=(11, 4, 3))
        chunked = batched_window_scores(windows, self._sum_score, batch_size=4)
        loop = np.array([self._sum_score(w[None])[0] for w in windows])
        np.testing.assert_array_equal(chunked, loop)

    def test_preserves_trailing_shape(self, rng):
        windows = rng.normal(size=(9, 5, 2))
        per_position = batched_window_scores(
            windows, lambda b: b[:, :, 0], batch_size=2
        )
        assert per_position.shape == (9, 5)

    def test_empty_input(self):
        out = batched_window_scores(np.empty((0, 5, 2)), self._sum_score)
        assert out.shape == (0,)

    def test_invalid_batch_size(self, rng):
        with pytest.raises(ValueError):
            batched_window_scores(rng.normal(size=(3, 2, 1)), self._sum_score, 0)

    def test_accepts_read_only_views(self, rng):
        series = rng.normal(size=(40, 2))
        windows = sliding_windows(series, size=8, stride=8)
        scores = batched_window_scores(windows, self._sum_score, batch_size=2)
        np.testing.assert_array_equal(scores, self._sum_score(np.asarray(windows)))


class TestScoreSeries:
    @staticmethod
    def _identity_score(batch: np.ndarray) -> np.ndarray:
        """Score = value of the first feature (lets us verify alignment)."""
        return batch[:, :, 0]

    def test_exact_multiple(self, rng):
        series = rng.normal(size=(20, 1))
        scores = score_series(series, 5, self._identity_score)
        np.testing.assert_allclose(scores, series[:, 0])

    def test_tail_covered_by_overlapping_window(self, rng):
        series = rng.normal(size=(23, 1))
        scores = score_series(series, 5, self._identity_score)
        np.testing.assert_allclose(scores, series[:, 0])

    def test_series_shorter_than_window(self, rng):
        series = rng.normal(size=(3, 1))
        scores = score_series(series, 5, self._identity_score)
        np.testing.assert_allclose(scores, series[:, 0])

    def test_batching_consistent(self, rng):
        series = rng.normal(size=(100, 2))
        small = score_series(series, 10, self._identity_score, batch_size=1)
        large = score_series(series, 10, self._identity_score, batch_size=64)
        np.testing.assert_allclose(small, large)

    @given(length=st.integers(1, 60), size=st.integers(2, 15))
    @settings(max_examples=40, deadline=None)
    def test_every_position_scored_once_property(self, length, size):
        """Each observation's score equals its own value, for any length."""
        series = np.arange(length, dtype=np.float64)[:, None]
        scores = score_series(series, size, self._identity_score)
        np.testing.assert_allclose(scores, series[:, 0])
