"""Windowing and series-scoring coverage tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import non_overlapping_windows, score_series, sliding_windows


class TestSlidingWindows:
    def test_counts_and_content(self, rng):
        series = rng.normal(size=(10, 2))
        windows = sliding_windows(series, size=4, stride=2)
        assert windows.shape == (4, 4, 2)
        np.testing.assert_array_equal(windows[0], series[0:4])
        np.testing.assert_array_equal(windows[1], series[2:6])

    def test_stride_one(self, rng):
        series = rng.normal(size=(10, 1))
        assert sliding_windows(series, 4, 1).shape == (7, 4, 1)

    def test_series_shorter_than_window(self, rng):
        windows = sliding_windows(rng.normal(size=(3, 2)), 5, 1)
        assert windows.shape == (0, 5, 2)

    def test_non_overlapping(self, rng):
        series = rng.normal(size=(10, 1))
        windows = non_overlapping_windows(series, 3)
        assert windows.shape == (3, 3, 1)  # tail observation dropped

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            sliding_windows(rng.normal(size=(10, 1)), 0, 1)
        with pytest.raises(ValueError):
            sliding_windows(rng.normal(size=10), 4, 1)


class TestScoreSeries:
    @staticmethod
    def _identity_score(batch: np.ndarray) -> np.ndarray:
        """Score = value of the first feature (lets us verify alignment)."""
        return batch[:, :, 0]

    def test_exact_multiple(self, rng):
        series = rng.normal(size=(20, 1))
        scores = score_series(series, 5, self._identity_score)
        np.testing.assert_allclose(scores, series[:, 0])

    def test_tail_covered_by_overlapping_window(self, rng):
        series = rng.normal(size=(23, 1))
        scores = score_series(series, 5, self._identity_score)
        np.testing.assert_allclose(scores, series[:, 0])

    def test_series_shorter_than_window(self, rng):
        series = rng.normal(size=(3, 1))
        scores = score_series(series, 5, self._identity_score)
        np.testing.assert_allclose(scores, series[:, 0])

    def test_batching_consistent(self, rng):
        series = rng.normal(size=(100, 2))
        small = score_series(series, 10, self._identity_score, batch_size=1)
        large = score_series(series, 10, self._identity_score, batch_size=64)
        np.testing.assert_allclose(small, large)

    @given(length=st.integers(1, 60), size=st.integers(2, 15))
    @settings(max_examples=40, deadline=None)
    def test_every_position_scored_once_property(self, length, size):
        """Each observation's score equals its own value, for any length."""
        series = np.arange(length, dtype=np.float64)[:, None]
        scores = score_series(series, size, self._identity_score)
        np.testing.assert_allclose(scores, series[:, 0])
