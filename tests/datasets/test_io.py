"""Dataset persistence tests (CSV and NPZ round-trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import TimeSeriesDataset, make_nips_ts_global
from repro.datasets.io import (
    load_dataset_csv,
    load_dataset_npz,
    save_dataset_csv,
    save_dataset_npz,
)


@pytest.fixture
def dataset(rng) -> TimeSeriesDataset:
    labels = (rng.random(60) < 0.1).astype(np.int64)
    return TimeSeriesDataset(
        name="toy",
        train=rng.normal(size=(120, 3)),
        validation=rng.normal(size=(40, 3)),
        test=rng.normal(size=(60, 3)),
        test_labels=labels,
        train_labels=np.zeros(120, dtype=np.int64),
    )


class TestNpzRoundTrip:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "toy.npz"
        save_dataset_npz(dataset, path)
        loaded = load_dataset_npz(path)
        assert loaded.name == "toy"
        np.testing.assert_array_equal(loaded.train, dataset.train)
        np.testing.assert_array_equal(loaded.test_labels, dataset.test_labels)
        np.testing.assert_array_equal(loaded.train_labels, dataset.train_labels)

    def test_without_train_labels(self, tmp_path):
        dataset = make_nips_ts_global(scale=0.01)
        path = tmp_path / "g.npz"
        save_dataset_npz(dataset, path)
        loaded = load_dataset_npz(path)
        assert loaded.train_labels is None
        np.testing.assert_array_equal(loaded.test, dataset.test)


class TestCsvRoundTrip:
    def test_roundtrip_multivariate(self, dataset, tmp_path):
        save_dataset_csv(dataset, tmp_path)
        loaded = load_dataset_csv(tmp_path, "toy")
        np.testing.assert_allclose(loaded.train, dataset.train)
        np.testing.assert_allclose(loaded.validation, dataset.validation)
        np.testing.assert_array_equal(loaded.test_labels, dataset.test_labels)

    def test_roundtrip_univariate(self, tmp_path):
        dataset = make_nips_ts_global(scale=0.01)
        save_dataset_csv(dataset, tmp_path)
        loaded = load_dataset_csv(tmp_path, "NIPS-TS-Global")
        assert loaded.n_features == 1
        np.testing.assert_allclose(loaded.test, dataset.test)

    def test_files_created(self, dataset, tmp_path):
        save_dataset_csv(dataset, tmp_path)
        for suffix in ("train", "validation", "test", "test_labels"):
            assert (tmp_path / f"toy_{suffix}.csv").exists()
