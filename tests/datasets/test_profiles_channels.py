"""Tests for the dataset-profile channel primitives and event injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.profiles import (
    _actuator_channel,
    _ar1_channel,
    _build_channels,
    _bursty_channel,
    _inject_events,
    _periodic_channel,
    _sawtooth_channel,
)


class TestChannelPrimitives:
    def test_periodic_has_dominant_frequency(self, rng):
        channel = _periodic_channel(2000, rng)
        spectrum = np.abs(np.fft.rfft(channel - channel.mean()))
        peak_share = spectrum.max() / spectrum.sum()
        assert peak_share > 0.05  # concentrated, not white noise

    def test_actuator_is_near_binary(self, rng):
        channel = _actuator_channel(2000, rng)
        near_zero = np.abs(channel) < 0.1
        near_one = np.abs(channel - 1.0) < 0.1
        assert (near_zero | near_one).mean() > 0.99

    def test_actuator_switches_state(self, rng):
        channel = _actuator_channel(5000, rng)
        rounded = (channel > 0.5).astype(int)
        assert 0 < rounded.mean() < 1  # both states occur

    def test_sawtooth_ramps_up(self, rng):
        channel = _sawtooth_channel(2000, rng)
        increments = np.diff(channel)
        # Mostly small positive steps with occasional large drops.
        assert (increments > -0.05).mean() > 0.9
        assert increments.min() < -0.3

    def test_ar1_is_mean_reverting(self, rng):
        channel = _ar1_channel(5000, rng)
        assert abs(channel.mean()) < 1.0
        # Strong lag-1 autocorrelation.
        lag1 = np.corrcoef(channel[:-1], channel[1:])[0, 1]
        assert lag1 > 0.9

    def test_bursty_is_positive(self, rng):
        channel = _bursty_channel(2000, rng)
        assert np.all(channel > 0)
        # Log-normal bursts give right skew.
        assert channel.max() > 3 * np.median(channel)

    def test_build_channels_mixture(self, rng):
        data = _build_channels(500, 12, {"periodic": 0.5, "actuator": 0.5}, rng)
        assert data.shape == (500, 12)
        assert np.all(np.isfinite(data))


class TestEventInjection:
    def test_hits_target_ratio(self, rng):
        data = rng.normal(size=(5000, 6))
        _, labels = _inject_events(data, target_ratio=0.10, rng=rng)
        assert labels.mean() == pytest.approx(0.10, abs=0.03)

    def test_zero_ratio_injects_nothing(self, rng):
        data = rng.normal(size=(1000, 4))
        out, labels = _inject_events(data, target_ratio=0.0, rng=rng)
        assert labels.sum() == 0
        np.testing.assert_array_equal(out, data)

    def test_changes_are_labelled(self, rng):
        data = rng.normal(size=(3000, 5))
        out, labels = _inject_events(data, target_ratio=0.05, rng=rng)
        changed_rows = np.any(out != data, axis=1)
        # Every modified observation lies in a labelled region.
        assert np.all(labels[changed_rows] == 1)

    def test_point_weight_zero_gives_segments(self, rng):
        from repro.metrics import anomaly_segments
        data = rng.normal(size=(5000, 4))
        _, labels = _inject_events(
            data, target_ratio=0.08, rng=rng,
            point_weight=0.0, segment_length_range=(50, 100),
        )
        lengths = [stop - start for start, stop in anomaly_segments(labels)]
        assert min(lengths) >= 2
        assert max(lengths) >= 40
