"""Anomaly injection tests: every injector marks exactly what it changes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    inject_contextual,
    inject_global,
    inject_seasonal,
    inject_shapelet,
    inject_trend,
    random_positions,
    random_segments,
)


@pytest.fixture
def channel(rng):
    return np.sin(2 * np.pi * np.arange(500) / 50.0) + rng.normal(0, 0.05, 500)


class TestSampling:
    def test_random_positions_distinct_sorted(self, rng):
        positions = random_positions(100, 20, rng)
        assert len(set(positions.tolist())) == 20
        assert np.all(np.diff(positions) > 0)

    def test_random_positions_respects_margin(self, rng):
        positions = random_positions(100, 50, rng, margin=5)
        assert positions.min() >= 5
        assert positions.max() < 95

    def test_random_positions_zero(self, rng):
        assert random_positions(100, 0, rng).size == 0

    def test_random_positions_overflow_raises(self, rng):
        with pytest.raises(ValueError):
            random_positions(10, 100, rng)

    def test_random_segments_non_overlapping(self, rng):
        segments = random_segments(1000, 10, 50, rng)
        assert len(segments) == 10
        for (s1, e1), (s2, e2) in zip(segments, segments[1:]):
            assert e1 <= s2

    def test_random_segments_zero(self, rng):
        assert random_segments(100, 0, 10, rng) == []


class TestPointInjectors:
    def test_global_labels_match_positions(self, channel, rng):
        positions = np.array([10, 200, 450])
        out, labels = inject_global(channel, positions, rng)
        assert labels.sum() == 3
        np.testing.assert_array_equal(np.flatnonzero(labels), positions)

    def test_global_values_are_extreme(self, channel, rng):
        positions = np.array([100])
        out, _ = inject_global(channel, positions, rng, magnitude=6.0)
        deviation = abs(out[100] - channel.mean()) / channel.std()
        assert deviation > 4.0

    def test_global_untouched_elsewhere(self, channel, rng):
        positions = np.array([100])
        out, _ = inject_global(channel, positions, rng)
        mask = np.ones(500, dtype=bool)
        mask[100] = False
        np.testing.assert_array_equal(out[mask], channel[mask])

    def test_global_empty_positions(self, channel, rng):
        out, labels = inject_global(channel, np.empty(0, dtype=np.int64), rng)
        np.testing.assert_array_equal(out, channel)
        assert labels.sum() == 0

    def test_contextual_deviates_locally(self, channel, rng):
        positions = np.array([250])
        out, labels = inject_contextual(channel, positions, rng, magnitude=4.0)
        assert labels[250] == 1
        local = channel[230:270]
        assert abs(out[250] - local.mean()) > 2.0 * local.std()


class TestPatternInjectors:
    def test_shapelet_replaces_segment(self, channel, rng):
        out, labels = inject_shapelet(channel, [(100, 150)], rng)
        assert labels[100:150].all()
        assert labels.sum() == 50
        assert not np.allclose(out[100:150], channel[100:150])

    def test_seasonal_changes_frequency(self, channel, rng):
        out, labels = inject_seasonal(channel, [(100, 200)], rng)
        assert labels[100:200].all()
        # Faster oscillation => more zero crossings in the segment.
        def crossings(x):
            return int(np.sum(np.diff(np.sign(x - x.mean())) != 0))
        assert crossings(out[100:200]) > crossings(channel[100:200])

    def test_trend_accumulates_drift(self, channel, rng):
        out, labels = inject_trend(channel, [(200, 300)], rng, slope_scale=0.1)
        assert labels[200:300].all()
        drift = np.abs(out[200:300] - channel[200:300])
        assert drift[-1] > drift[5]
        # Snaps back after the segment.
        np.testing.assert_array_equal(out[300:], channel[300:])

    def test_inputs_not_mutated(self, channel, rng):
        original = channel.copy()
        inject_global(channel, np.array([5]), rng)
        inject_shapelet(channel, [(10, 30)], rng)
        inject_seasonal(channel, [(40, 80)], rng)
        inject_trend(channel, [(90, 120)], rng)
        np.testing.assert_array_equal(channel, original)


class TestStreamFaults:
    """The telemetry-corruption taxonomy used by the robustness bench."""

    def test_registry_covers_the_taxonomy(self):
        from repro.datasets import STREAM_FAULTS

        assert set(STREAM_FAULTS) == {
            "nan_burst", "stuck_at", "dropout_gap", "spike_corruption", "scale_drift",
        }

    @pytest.mark.parametrize("fault", ["nan_burst", "stuck_at", "dropout_gap",
                                       "spike_corruption", "scale_drift"])
    def test_mask_marks_exactly_the_corruption(self, rng, fault):
        from repro.datasets import inject_stream_fault

        series = rng.normal(size=(300, 4))
        corrupted, mask = inject_stream_fault(series, fault, rng, channel_fraction=1.0)
        assert corrupted.shape == series.shape
        assert mask.shape == (300,)
        assert mask.sum() > 0
        # Unmasked rows are untouched.
        np.testing.assert_array_equal(corrupted[mask == 0], series[mask == 0])
        # Masked rows differ somewhere (stuck_at may coincide rarely, so
        # require at least one changed row rather than all).
        changed = ~np.all(np.isclose(corrupted[mask == 1], series[mask == 1],
                                     equal_nan=False), axis=1)
        assert changed.any()

    def test_nan_burst_produces_nans_others_stay_finite(self, rng):
        from repro.datasets import inject_stream_fault

        series = rng.normal(size=(200, 3))
        corrupted, mask = inject_stream_fault(series, "nan_burst", rng)
        assert np.isnan(corrupted).any()
        for fault in ["stuck_at", "dropout_gap", "spike_corruption", "scale_drift"]:
            other, _ = inject_stream_fault(series, fault, rng)
            assert np.all(np.isfinite(other))

    def test_unknown_fault_rejected(self, rng):
        from repro.datasets import inject_stream_fault

        with pytest.raises(ValueError, match="unknown stream fault"):
            inject_stream_fault(rng.normal(size=(50, 2)), "cosmic_rays", rng)
