"""Generator tests: NIPS-TS rules, dataset profiles, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    PROFILE_SPECS,
    available_datasets,
    get_dataset,
    make_nips_ts_global,
    make_nips_ts_seasonal,
)
from repro.datasets.registry import DATASET_GENERATORS


class TestNipsTsGenerators:
    def test_global_is_univariate_with_5pct_anomalies(self):
        ds = make_nips_ts_global(scale=0.05)
        assert ds.n_features == 1
        assert ds.anomaly_ratio == pytest.approx(0.05, abs=0.005)

    def test_global_anomalies_are_points(self):
        ds = make_nips_ts_global(scale=0.05)
        # Global anomalies are isolated observations: runs of 1s are short.
        from repro.metrics import anomaly_segments
        lengths = [stop - start for start, stop in anomaly_segments(ds.test_labels)]
        assert max(lengths) <= 3

    def test_seasonal_anomalies_are_segments(self):
        ds = make_nips_ts_seasonal(scale=0.05)
        from repro.metrics import anomaly_segments
        lengths = [stop - start for start, stop in anomaly_segments(ds.test_labels)]
        assert min(lengths) >= 10

    def test_deterministic_in_seed(self):
        a = make_nips_ts_global(seed=3, scale=0.02)
        b = make_nips_ts_global(seed=3, scale=0.02)
        np.testing.assert_array_equal(a.test, b.test)
        c = make_nips_ts_global(seed=4, scale=0.02)
        assert not np.array_equal(a.test, c.test)

    def test_full_scale_matches_table2(self):
        # Only check the arithmetic, not a full-size allocation.
        ds = make_nips_ts_global(scale=0.01)
        assert ds.train.shape[0] == 400
        assert ds.validation.shape[0] == 100
        assert ds.test.shape[0] == 500

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            make_nips_ts_global(scale=0.0)


class TestProfiles:
    @pytest.mark.parametrize("name", ["MSL", "SMAP", "PSM", "SMD", "SWaT"])
    def test_profile_matches_spec(self, name):
        spec = PROFILE_SPECS[name]
        ds = get_dataset(name, scale=0.004)
        assert ds.n_features == spec.dimension
        assert ds.anomaly_ratio == pytest.approx(spec.anomaly_ratio, abs=0.05)
        # Split proportions follow Table II.
        assert ds.train.shape[0] == max(400, int(spec.train_len * 0.004))

    def test_train_contamination_present(self):
        ds = get_dataset("PSM", scale=0.01)
        assert ds.train_labels is not None
        assert 0 < ds.train_labels.mean() < 0.1

    def test_smap_has_distribution_shift(self):
        """SMAP's test regime drifts away from training (Fig. 1/9 setup)."""
        ds = get_dataset("SMAP", scale=0.01)
        normal_test = ds.test[ds.test_labels == 0]
        late = normal_test[-len(normal_test) // 4 :]
        shift = np.abs(late.mean(axis=0) - ds.train.mean(axis=0)).max()
        assert shift > 0.5

    def test_swat_has_long_segments(self):
        from repro.metrics import anomaly_segments
        ds = get_dataset("SWaT", scale=0.004)
        lengths = [stop - start for start, stop in anomaly_segments(ds.test_labels)]
        assert max(lengths) >= 80


class TestRegistry:
    def test_all_seven_datasets_registered(self):
        assert set(available_datasets()) == {
            "MSL", "SMAP", "PSM", "SMD", "SWaT", "NIPS-TS-Global", "NIPS-TS-Seasonal",
        }
        assert len(DATASET_GENERATORS) == 7

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_dataset("NOPE")

    def test_cache_returns_same_object(self):
        a = get_dataset("NIPS-TS-Global", scale=0.01)
        b = get_dataset("NIPS-TS-Global", scale=0.01)
        assert a is b

    def test_cache_disabled_returns_fresh(self):
        a = get_dataset("NIPS-TS-Global", scale=0.01, cache=False)
        b = get_dataset("NIPS-TS-Global", scale=0.01, cache=False)
        assert a is not b
        np.testing.assert_array_equal(a.test, b.test)
