"""Detection-metric tests: segments, point adjustment, P/R/F1."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import (
    anomaly_segments,
    evaluate_detection,
    point_adjust,
    precision_recall_f1,
)


class TestAnomalySegments:
    def test_basic_runs(self):
        labels = np.array([0, 1, 1, 0, 0, 1, 0, 1, 1, 1])
        assert anomaly_segments(labels) == [(1, 3), (5, 6), (7, 10)]

    def test_all_zero(self):
        assert anomaly_segments(np.zeros(5)) == []

    def test_all_one(self):
        assert anomaly_segments(np.ones(5)) == [(0, 5)]

    def test_boundaries(self):
        assert anomaly_segments(np.array([1, 0, 1])) == [(0, 1), (2, 3)]

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            anomaly_segments(np.zeros((2, 2)))


class TestPointAdjust:
    def test_one_hit_marks_whole_segment(self):
        labels = np.array([0, 1, 1, 1, 0])
        predictions = np.array([0, 0, 1, 0, 0])
        np.testing.assert_array_equal(point_adjust(predictions, labels), [0, 1, 1, 1, 0])

    def test_missed_segment_unchanged(self):
        labels = np.array([0, 1, 1, 0, 1, 1])
        predictions = np.array([0, 1, 0, 0, 0, 0])
        np.testing.assert_array_equal(point_adjust(predictions, labels), [0, 1, 1, 0, 0, 0])

    def test_false_positives_preserved(self):
        labels = np.array([0, 0, 0, 1, 1])
        predictions = np.array([1, 0, 0, 0, 1])
        np.testing.assert_array_equal(point_adjust(predictions, labels), [1, 0, 0, 1, 1])

    def test_does_not_mutate_inputs(self):
        labels = np.array([1, 1, 0])
        predictions = np.array([1, 0, 0])
        point_adjust(predictions, labels)
        np.testing.assert_array_equal(predictions, [1, 0, 0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            point_adjust(np.zeros(3), np.zeros(4))

    @given(
        arrays(np.int64, st.integers(5, 50), elements=st.integers(0, 1)),
        arrays(np.int64, st.integers(5, 50), elements=st.integers(0, 1)),
    )
    @settings(max_examples=50, deadline=None)
    def test_adjustment_never_hurts_recall_property(self, predictions, labels):
        if predictions.shape != labels.shape:
            return
        raw = precision_recall_f1(predictions, labels)
        adjusted = precision_recall_f1(point_adjust(predictions, labels), labels)
        assert adjusted.recall >= raw.recall - 1e-12


class TestPrecisionRecallF1:
    def test_perfect(self):
        labels = np.array([0, 1, 0, 1])
        metrics = precision_recall_f1(labels, labels)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f1 == 1.0

    def test_known_values(self):
        labels = np.array([1, 1, 1, 0, 0])
        predictions = np.array([1, 0, 0, 1, 0])
        metrics = precision_recall_f1(predictions, labels)
        assert metrics.precision == pytest.approx(0.5)
        assert metrics.recall == pytest.approx(1.0 / 3.0)
        assert metrics.f1 == pytest.approx(0.4)

    def test_no_predictions(self):
        metrics = precision_recall_f1(np.zeros(5), np.array([1, 0, 0, 0, 0]))
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0

    def test_no_anomalies_in_labels(self):
        metrics = precision_recall_f1(np.array([1, 0, 0]), np.zeros(3))
        assert metrics.recall == 0.0

    def test_as_percent_and_str(self):
        metrics = precision_recall_f1(np.array([1, 1]), np.array([1, 1]))
        assert metrics.as_percent() == (100.0, 100.0, 100.0)
        assert "F1=100.00%" in str(metrics)


class TestEvaluateDetection:
    def test_adjustment_improves_segment_recall(self):
        labels = np.zeros(100, dtype=np.int64)
        labels[40:60] = 1
        predictions = np.zeros(100, dtype=np.int64)
        predictions[45] = 1  # single hit inside the segment
        raw = evaluate_detection(predictions, labels, adjust=False)
        adjusted = evaluate_detection(predictions, labels, adjust=True)
        assert raw.recall == pytest.approx(0.05)
        assert adjusted.recall == 1.0

    def test_adjust_flag_off_matches_plain(self):
        labels = np.array([0, 1, 1, 0])
        predictions = np.array([0, 1, 0, 0])
        plain = precision_recall_f1(predictions, labels)
        assert evaluate_detection(predictions, labels, adjust=False) == plain
