"""ROC-AUC and average-precision tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import average_precision, roc_auc


class TestRocAuc:
    def test_perfect_ranking(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == 1.0

    def test_inverted_ranking(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == 0.0

    def test_random_scores_near_half(self, rng):
        scores = rng.random(20_000)
        labels = rng.random(20_000) < 0.3
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.02)

    def test_all_tied_is_half(self):
        scores = np.ones(10)
        labels = np.array([1, 0] * 5)
        assert roc_auc(scores, labels) == pytest.approx(0.5)

    def test_hand_computed(self):
        # positives: 3, 1; negatives: 2, 0 -> pairs won: (3>2,3>0,1>0)=3/4
        scores = np.array([3.0, 1.0, 2.0, 0.0])
        labels = np.array([1, 1, 0, 0])
        assert roc_auc(scores, labels) == pytest.approx(0.75)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([1.0, 2.0]), np.array([1, 1]))

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.zeros(3), np.zeros(4))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_invariant_to_monotone_transform(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=50)
        labels = rng.random(50) < 0.4
        if labels.all() or not labels.any():
            return
        original = roc_auc(scores, labels)
        transformed = roc_auc(np.exp(scores), labels)
        assert original == pytest.approx(transformed, abs=1e-12)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        assert average_precision(scores, labels) == 1.0

    def test_hand_computed(self):
        # Descending: pos, neg, pos, neg -> precisions at hits: 1/1, 2/3.
        scores = np.array([4.0, 3.0, 2.0, 1.0])
        labels = np.array([1, 0, 1, 0])
        assert average_precision(scores, labels) == pytest.approx((1.0 + 2.0 / 3.0) / 2.0)

    def test_baseline_matches_prevalence(self, rng):
        scores = rng.random(50_000)
        labels = rng.random(50_000) < 0.2
        assert average_precision(scores, labels) == pytest.approx(0.2, abs=0.02)

    def test_bounded(self, rng):
        scores = rng.normal(size=200)
        labels = rng.random(200) < 0.5
        value = average_precision(scores, labels)
        assert 0.0 < value <= 1.0
