"""Score-distribution diagnostics tests (Fig. 9 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import cdf_gap, empirical_cdf, ks_distance


class TestEmpiricalCdf:
    def test_monotone_zero_to_one(self, rng):
        grid, cdf = empirical_cdf(rng.normal(size=1000))
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[0] >= 0.0
        assert cdf[-1] == 1.0

    def test_shared_grid(self, rng):
        scores = rng.normal(size=100)
        grid = np.linspace(-5, 5, 50)
        out_grid, cdf = empirical_cdf(scores, grid)
        assert out_grid is grid
        assert cdf.shape == (50,)

    def test_known_values(self):
        grid, cdf = empirical_cdf(np.array([1.0, 2.0, 3.0, 4.0]), np.array([2.5]))
        assert cdf[0] == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.array([]))


class TestGapMeasures:
    def test_identical_distributions_near_zero(self, rng):
        scores = rng.normal(size=5000)
        assert cdf_gap(scores, scores) == 0.0
        assert ks_distance(scores, scores) == 0.0

    def test_shifted_distributions_large_gap(self, rng):
        a = rng.normal(0, 1, 5000)
        b = rng.normal(3, 1, 5000)
        assert cdf_gap(a, b) > 0.2
        assert ks_distance(a, b) > 0.8

    def test_ks_bounds(self, rng):
        a = rng.normal(size=100)
        b = rng.normal(size=100)
        distance = ks_distance(a, b)
        assert 0.0 <= distance <= 1.0

    def test_symmetry(self, rng):
        a = rng.normal(0, 1, 500)
        b = rng.normal(1, 2, 500)
        assert cdf_gap(a, b) == pytest.approx(cdf_gap(b, a))
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    def test_matches_scipy_ks(self, rng):
        from scipy.stats import ks_2samp
        a = rng.normal(0, 1, 400)
        b = rng.normal(0.5, 1, 400)
        ours = ks_distance(a, b, grid_size=4096)
        reference = ks_2samp(a, b).statistic
        assert ours == pytest.approx(reference, abs=0.02)
