"""POT/EVT threshold tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import pot_threshold


class TestPotThreshold:
    def test_exceedance_rate_close_to_q(self, rng):
        """On heavy-ish tailed data, ~q of fresh samples exceed z_q."""
        calibration = rng.standard_gamma(2.0, size=50_000)
        fresh = np.random.default_rng(1).standard_gamma(2.0, size=200_000)
        q = 1e-3
        z = pot_threshold(calibration, q=q)
        rate = (fresh > z).mean()
        assert rate == pytest.approx(q, rel=0.6)

    def test_extrapolates_beyond_observed_max(self, rng):
        calibration = rng.standard_gamma(2.0, size=5_000)
        z = pot_threshold(calibration, q=1e-6)
        assert z > calibration.max()

    def test_smaller_q_higher_threshold(self, rng):
        calibration = rng.standard_gamma(2.0, size=10_000)
        assert pot_threshold(calibration, q=1e-5) > pot_threshold(calibration, q=1e-2)

    def test_fallback_on_tiny_sample(self, rng):
        scores = rng.normal(size=30)
        z = pot_threshold(scores, q=0.05)
        assert np.isfinite(z)
        # Falls back to the empirical quantile.
        assert z == pytest.approx(np.quantile(scores, 0.95))

    def test_fallback_on_constant_tail(self):
        scores = np.concatenate([np.zeros(990), np.full(10, 5.0)])
        z = pot_threshold(scores, q=0.01)
        assert np.isfinite(z)

    def test_validation(self, rng):
        scores = rng.normal(size=100)
        with pytest.raises(ValueError):
            pot_threshold(np.array([]), q=0.01)
        with pytest.raises(ValueError):
            pot_threshold(scores, q=0.0)
        with pytest.raises(ValueError):
            pot_threshold(scores, initial_quantile=30.0)
