"""Threshold-selection tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import apply_threshold, best_f1_threshold, ratio_threshold


class TestRatioThreshold:
    def test_flags_expected_fraction(self, rng):
        scores = rng.normal(size=10_000)
        threshold = ratio_threshold(scores, anomaly_ratio=1.0)
        flagged = (scores >= threshold).mean()
        assert flagged == pytest.approx(0.01, abs=0.002)

    def test_monotone_in_ratio(self, rng):
        scores = rng.normal(size=1000)
        assert ratio_threshold(scores, 0.5) >= ratio_threshold(scores, 5.0)

    def test_flattens_input(self, rng):
        scores = rng.normal(size=(10, 10))
        assert ratio_threshold(scores, 1.0) == ratio_threshold(scores.reshape(-1), 1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ratio_threshold(np.array([]), 1.0)

    def test_out_of_range_ratio_raises(self, rng):
        scores = rng.normal(size=10)
        with pytest.raises(ValueError):
            ratio_threshold(scores, 0.0)
        with pytest.raises(ValueError):
            ratio_threshold(scores, 100.0)


class TestApplyThreshold:
    def test_eq17_semantics(self):
        """Score >= delta means anomaly, strictly below means normal."""
        scores = np.array([0.1, 0.5, 0.5, 0.9])
        np.testing.assert_array_equal(apply_threshold(scores, 0.5), [0, 1, 1, 1])

    def test_returns_int64(self):
        assert apply_threshold(np.array([1.0]), 0.5).dtype == np.int64


class TestBestF1Threshold:
    def test_recovers_separable_threshold(self, rng):
        scores = np.concatenate([rng.normal(0, 0.1, 900), rng.normal(5, 0.1, 100)])
        labels = np.concatenate([np.zeros(900), np.ones(100)])
        threshold, f1 = best_f1_threshold(scores, labels, adjust=False)
        assert f1 == pytest.approx(1.0)
        assert 0.5 < threshold < 4.5

    def test_alignment_required(self, rng):
        with pytest.raises(ValueError):
            best_f1_threshold(rng.normal(size=10), np.zeros(9))

    def test_oracle_at_least_ratio_threshold(self, rng):
        """The oracle sweep can never do worse than any fixed threshold."""
        from repro.metrics import evaluate_detection
        scores = rng.normal(size=500)
        labels = (rng.random(500) < 0.1).astype(int)
        _, oracle_f1 = best_f1_threshold(scores, labels)
        fixed = ratio_threshold(scores, 10.0)
        fixed_f1 = evaluate_detection(apply_threshold(scores, fixed), labels).f1
        assert oracle_f1 >= fixed_f1 - 1e-9
