"""Score post-processing tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.postprocess import debounce_alarms, ewma_smooth, moving_average_smooth


class TestEwmaSmooth:
    def test_alpha_one_is_identity(self, rng):
        scores = rng.normal(size=50)
        np.testing.assert_allclose(ewma_smooth(scores, alpha=1.0), scores)

    def test_reduces_variance(self, rng):
        scores = rng.normal(size=5000)
        assert ewma_smooth(scores, alpha=0.1).std() < 0.5 * scores.std()

    def test_causal(self, rng):
        """Changing a future score never changes earlier outputs."""
        scores = rng.normal(size=30)
        modified = scores.copy()
        modified[20] += 100.0
        a = ewma_smooth(scores, alpha=0.3)
        b = ewma_smooth(modified, alpha=0.3)
        np.testing.assert_array_equal(a[:20], b[:20])

    def test_constant_preserved(self):
        np.testing.assert_allclose(ewma_smooth(np.full(10, 3.0), alpha=0.4), 3.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ewma_smooth(np.ones(3), alpha=0.0)


class TestMovingAverage:
    def test_window_one_is_identity(self, rng):
        scores = rng.normal(size=20)
        np.testing.assert_allclose(moving_average_smooth(scores, 1), scores)

    def test_trailing_semantics(self):
        scores = np.array([1.0, 2.0, 3.0, 4.0])
        out = moving_average_smooth(scores, window=2)
        np.testing.assert_allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average_smooth(np.ones(3), 0)


class TestDebounce:
    def test_merges_close_runs(self):
        alarms = np.array([1, 1, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 1])
        out = debounce_alarms(alarms, merge_gap=2, min_length=1)
        np.testing.assert_array_equal(out[:6], 1)   # first two runs merged
        assert out[12] == 1                          # far run kept separate
        assert out[8:12].sum() == 0

    def test_drops_blips(self):
        alarms = np.array([0, 1, 0, 0, 1, 1, 1, 0])
        out = debounce_alarms(alarms, merge_gap=0, min_length=2)
        assert out[1] == 0
        np.testing.assert_array_equal(out[4:7], 1)

    def test_empty_stream(self):
        np.testing.assert_array_equal(debounce_alarms(np.zeros(5)), np.zeros(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            debounce_alarms(np.ones(3), merge_gap=-1)
        with pytest.raises(ValueError):
            debounce_alarms(np.ones(3), min_length=0)
