"""Range-based precision/recall tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.range_based import range_precision_recall


class TestRangePrecisionRecall:
    def test_perfect_match(self):
        labels = np.array([0, 1, 1, 0, 1, 0])
        metrics = range_precision_recall(labels, labels)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0

    def test_half_overlap_recall(self):
        labels = np.zeros(20, dtype=int)
        labels[5:15] = 1
        predictions = np.zeros(20, dtype=int)
        predictions[5:10] = 1  # half the true range
        metrics = range_precision_recall(predictions, labels, alpha=0.5)
        # recall = 0.5 * existence(1) + 0.5 * overlap(0.5) = 0.75
        assert metrics.recall == pytest.approx(0.75)
        assert metrics.precision == 1.0

    def test_alpha_extremes(self):
        labels = np.zeros(20, dtype=int)
        labels[5:15] = 1
        predictions = np.zeros(20, dtype=int)
        predictions[5:6] = 1  # tiny sliver of the range
        existence_only = range_precision_recall(predictions, labels, alpha=1.0)
        overlap_only = range_precision_recall(predictions, labels, alpha=0.0)
        assert existence_only.recall == 1.0
        assert overlap_only.recall == pytest.approx(0.1)

    def test_stricter_than_point_adjustment(self):
        """The motivating property: one-point hits earn far less credit
        than under point adjustment."""
        from repro.metrics import evaluate_detection
        labels = np.zeros(100, dtype=int)
        labels[10:60] = 1
        predictions = np.zeros(100, dtype=int)
        predictions[30] = 1
        adjusted = evaluate_detection(predictions, labels, adjust=True)
        ranged = range_precision_recall(predictions, labels)
        assert adjusted.recall == 1.0
        assert ranged.recall < 0.6

    def test_false_positive_range_hurts_precision(self):
        labels = np.zeros(30, dtype=int)
        labels[5:10] = 1
        predictions = np.zeros(30, dtype=int)
        predictions[5:10] = 1
        predictions[20:25] = 1  # entirely outside truth
        metrics = range_precision_recall(predictions, labels)
        assert metrics.precision == pytest.approx(0.5)

    def test_empty_predictions(self):
        labels = np.array([0, 1, 1, 0])
        metrics = range_precision_recall(np.zeros(4, dtype=int), labels)
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0

    def test_no_true_anomalies(self):
        predictions = np.array([0, 1, 0, 0])
        metrics = range_precision_recall(predictions, np.zeros(4, dtype=int))
        assert metrics.recall == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            range_precision_recall(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            range_precision_recall(np.zeros(3), np.zeros(3), alpha=2.0)

    @given(
        arrays(np.int64, st.integers(5, 60), elements=st.integers(0, 1)),
        arrays(np.int64, st.integers(5, 60), elements=st.integers(0, 1)),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_property(self, predictions, labels):
        if predictions.shape != labels.shape:
            return
        metrics = range_precision_recall(predictions, labels)
        assert 0.0 <= metrics.precision <= 1.0
        assert 0.0 <= metrics.recall <= 1.0
        assert 0.0 <= metrics.f1 <= 1.0
