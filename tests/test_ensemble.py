"""Ensemble-detector tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LOF, IsolationForest
from repro.detector import BaseDetector
from repro.ensemble import EnsembleDetector


class _ConstantDetector(BaseDetector):
    """Scores are a fixed linear function of channel 0 — for exact checks."""

    name = "const"

    def __init__(self, scale: float, **kwargs):
        super().__init__(**kwargs)
        self.scale = scale

    def _fit(self, train: np.ndarray) -> None:
        pass

    def score(self, series: np.ndarray) -> np.ndarray:
        return self.scale * np.abs(series[:, 0])


class TestConstruction:
    def test_needs_members(self):
        with pytest.raises(ValueError):
            EnsembleDetector([])

    def test_unknown_normaliser(self):
        with pytest.raises(ValueError):
            EnsembleDetector([_ConstantDetector(1.0)], normaliser="minmax")

    def test_unknown_aggregator(self):
        with pytest.raises(ValueError):
            EnsembleDetector([_ConstantDetector(1.0)], aggregate="median")

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            EnsembleDetector([_ConstantDetector(1.0)], weights=[0.5, 0.5])
        with pytest.raises(ValueError):
            EnsembleDetector([_ConstantDetector(1.0)], weights=[1.0], aggregate="max")

    def test_name_composition(self):
        ensemble = EnsembleDetector([_ConstantDetector(1.0), _ConstantDetector(2.0)])
        assert ensemble.name == "Ensemble(const+const)"


class TestScoreCombination:
    def test_rank_normalisation_erases_scale(self, rng):
        """Members whose scores differ only by scale contribute equally."""
        train = rng.normal(size=(200, 2))
        val = rng.normal(size=(300, 2))
        test = rng.normal(size=(100, 2))
        single = EnsembleDetector([_ConstantDetector(1.0)], anomaly_ratio=5.0)
        scaled = EnsembleDetector([_ConstantDetector(1.0), _ConstantDetector(1000.0)],
                                  anomaly_ratio=5.0)
        single.fit(train, val)
        scaled.fit(train, val)
        np.testing.assert_allclose(single.score(test), scaled.score(test))

    def test_max_aggregation(self, rng):
        train = rng.normal(size=(200, 2))
        val = rng.normal(size=(300, 2))
        ensemble = EnsembleDetector(
            [_ConstantDetector(1.0), _ConstantDetector(2.0)],
            aggregate="max", anomaly_ratio=5.0,
        )
        ensemble.fit(train, val)
        test = rng.normal(size=(50, 2))
        scores = ensemble.score(test)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_weighted_mean(self, rng):
        train = rng.normal(size=(200, 1))
        val = rng.normal(size=(200, 1))
        heavy = EnsembleDetector(
            [_ConstantDetector(1.0), _ConstantDetector(-1.0)],
            weights=[1.0, 0.0], anomaly_ratio=5.0,
        )
        heavy.fit(train, val)
        solo = EnsembleDetector([_ConstantDetector(1.0)], anomaly_ratio=5.0)
        solo.fit(train, val)
        test = rng.normal(size=(40, 1))
        np.testing.assert_allclose(heavy.score(test), solo.score(test))

    def test_zscore_normaliser(self, rng):
        ensemble = EnsembleDetector([_ConstantDetector(5.0)], normaliser="zscore",
                                    anomaly_ratio=5.0)
        ensemble.fit(rng.normal(size=(100, 1)), rng.normal(size=(500, 1)))
        scores = ensemble.score(rng.normal(size=(500, 1)))
        assert abs(scores.mean()) < 0.3


class TestEndToEnd:
    def test_real_members_detect_outliers(self, rng):
        train = rng.normal(size=(800, 3))
        val = rng.normal(size=(400, 3))
        test = rng.normal(size=(300, 3))
        outliers = [20, 150, 280]
        test[outliers] = 10.0
        ensemble = EnsembleDetector(
            [LOF(n_neighbors=10, seed=0), IsolationForest(n_trees=30, seed=0)],
            anomaly_ratio=3.0,
        )
        ensemble.fit(train, val)
        labels = ensemble.predict(test)
        assert labels[outliers].all()
        assert labels.mean() < 0.2

    def test_fit_without_validation_uses_train(self, rng):
        ensemble = EnsembleDetector([_ConstantDetector(1.0)])
        ensemble.fit(rng.normal(size=(100, 1)))
        assert ensemble.threshold_ is None  # not calibrated, but scoreable
        assert ensemble.score(rng.normal(size=(20, 1))).shape == (20,)

    def test_train_shape_validation(self, rng):
        with pytest.raises(ValueError):
            EnsembleDetector([_ConstantDetector(1.0)]).fit(rng.normal(size=100))
