"""Evaluation-harness tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LOF, IsolationForest
from repro.eval import evaluate_detector, format_results_table, profile_detector


class TestEvaluateDetector:
    def test_full_pipeline(self, tiny_global_dataset):
        result = evaluate_detector(LOF(anomaly_ratio=5.0), tiny_global_dataset)
        assert result.detector == "LOF"
        assert result.dataset == "NIPS-TS-Global"
        assert 0.0 <= result.metrics.f1 <= 1.0
        assert result.fit_seconds > 0
        assert np.isfinite(result.threshold)

    def test_lof_strong_on_global_point_anomalies(self, tiny_global_dataset):
        result = evaluate_detector(LOF(anomaly_ratio=5.0), tiny_global_dataset)
        assert result.metrics.f1 > 0.5

    def test_row_format(self, tiny_global_dataset):
        result = evaluate_detector(IsolationForest(n_trees=10, anomaly_ratio=5.0),
                                   tiny_global_dataset)
        row = result.row()
        assert set(row) == {"detector", "dataset", "P", "R", "F1", "fit_s", "score_s"}

    def test_adjust_flag_changes_metrics_on_segments(self):
        from repro.datasets import make_nips_ts_seasonal
        dataset = make_nips_ts_seasonal(seed=0, scale=0.02)
        adjusted = evaluate_detector(LOF(anomaly_ratio=5.0, seed=0), dataset, adjust=True)
        raw = evaluate_detector(LOF(anomaly_ratio=5.0, seed=0), dataset, adjust=False)
        assert adjusted.metrics.recall >= raw.metrics.recall

    def test_format_results_table(self, tiny_global_dataset):
        results = [evaluate_detector(LOF(anomaly_ratio=5.0), tiny_global_dataset)]
        table = format_results_table(results, title="demo")
        assert "demo" in table
        assert "LOF" in table
        assert "NIPS-TS-Global" in table


class TestProtocolFlags:
    def test_normalise_flag_changes_inputs(self, tiny_global_dataset):
        """With normalise=False the detector sees raw data; a scale-
        sensitive detector's threshold then lives on a different scale.
        (LOF would not do here — density ratios are scale-invariant.)"""
        import numpy as np
        from repro.detector import BaseDetector

        class _Magnitude(BaseDetector):
            name = "mag"

            def _fit(self, train):
                self.offset = float(train.mean())

            def score(self, series):
                return np.abs(series[:, 0] - self.offset) + abs(self.offset)

        raw = evaluate_detector(_Magnitude(anomaly_ratio=5.0), tiny_global_dataset,
                                normalise=False)
        scaled = evaluate_detector(_Magnitude(anomaly_ratio=5.0), tiny_global_dataset,
                                   normalise=True)
        assert raw.threshold != pytest.approx(scaled.threshold)

    def test_perfect_scores_reach_perfect_f1(self):
        """Protocol sanity: a detector that scores exactly the labels and
        a threshold budget matching the anomaly rate give F1 = 1."""
        import numpy as np
        from repro.datasets import TimeSeriesDataset
        from repro.detector import BaseDetector

        rng = np.random.default_rng(0)
        labels = (rng.random(400) < 0.1).astype(np.int64)
        test = np.zeros((400, 1))
        test[labels == 1] = 10.0
        dataset = TimeSeriesDataset(
            name="perfect",
            train=rng.normal(size=(100, 1)),
            validation=rng.normal(size=(1000, 1)),
            test=test,
            test_labels=labels,
        )

        class _Oracle(BaseDetector):
            name = "oracle"

            def _fit(self, train):
                pass

            def score(self, series):
                return np.abs(series[:, 0])

        result = evaluate_detector(_Oracle(anomaly_ratio=0.5), dataset, normalise=False)
        assert result.metrics.f1 == 1.0


class TestProfileDetector:
    def test_profile_fields(self, tiny_global_dataset):
        profile = profile_detector(IsolationForest(n_trees=5, anomaly_ratio=5.0),
                                   tiny_global_dataset)
        assert profile.fit_seconds > 0
        assert profile.peak_memory_mb > 0
        assert profile.throughput_obs_per_s > 0
        assert set(profile.row()) == {"detector", "fit_s", "peak_MB", "obs_per_s"}
