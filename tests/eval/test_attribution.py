"""Channel-attribution tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detector import BaseDetector
from repro.eval import channel_attribution, top_channels


class _ChannelZeroDetector(BaseDetector):
    """Toy detector whose score is driven entirely by channel 0."""

    name = "ch0"

    def _fit(self, train: np.ndarray) -> None:
        pass

    def score(self, series: np.ndarray) -> np.ndarray:
        return np.abs(series[:, 0])


class TestChannelAttribution:
    def test_identifies_driving_channel(self, rng):
        detector = _ChannelZeroDetector()
        detector.fit(rng.normal(size=(50, 3)))
        window = rng.normal(size=(40, 3))
        window[20, 0] = 30.0  # spike on channel 0
        attribution = channel_attribution(detector, window)
        assert attribution.argmax() == 0
        assert attribution[0] > 0.9

    def test_normalised(self, rng):
        detector = _ChannelZeroDetector()
        detector.fit(rng.normal(size=(50, 3)))
        window = rng.normal(size=(40, 3))
        window[5, 0] = 20.0
        attribution = channel_attribution(detector, window)
        assert attribution.sum() == pytest.approx(1.0)
        assert np.all(attribution >= 0)

    def test_explicit_positions(self, rng):
        detector = _ChannelZeroDetector()
        detector.fit(rng.normal(size=(50, 2)))
        window = rng.normal(size=(30, 2))
        window[[3, 17], 0] = 25.0
        attribution = channel_attribution(detector, window, positions=np.array([3, 17]))
        assert attribution.argmax() == 0

    def test_requires_2d_window(self, rng):
        detector = _ChannelZeroDetector()
        detector.fit(rng.normal(size=(50, 2)))
        with pytest.raises(ValueError):
            channel_attribution(detector, rng.normal(size=30))

    def test_with_reconstruction_detector(self, rng):
        """Occlusion attribution works for reconstruction-based scores:
        the spiked channel wins with a real GPT4TS detector."""
        from repro.baselines import GPT4TS

        t = np.arange(800)
        series = np.stack([
            np.sin(2 * np.pi * t / 25.0),
            np.cos(2 * np.pi * t / 40.0),
            np.sin(2 * np.pi * t / 60.0),
        ], axis=1) + rng.normal(0, 0.05, (800, 3))
        detector = GPT4TS(window_size=50, epochs=4, batch_size=8,
                          anomaly_ratio=5.0, seed=0)
        detector.fit(series[:600], series[600:700])

        window = series[700:750].copy()
        window[25, 1] += 8.0  # fault on channel 1
        attribution = channel_attribution(detector, window, positions=np.array([25]))
        assert attribution.argmax() == 1


class TestStatisticAttribution:
    def test_spiked_channel_wins(self, rng):
        from repro.eval import statistic_attribution

        window = rng.normal(1.0, 0.05, size=(60, 4))
        window[30, 2] = 15.0
        attribution = statistic_attribution(window, positions=np.arange(28, 36))
        assert attribution.argmax() == 2
        assert attribution[2] > 0.8
        assert attribution.sum() == pytest.approx(1.0)

    def test_requires_2d(self, rng):
        from repro.eval import statistic_attribution

        with pytest.raises(ValueError):
            statistic_attribution(rng.normal(size=30), positions=np.array([5]))


class TestTopChannels:
    def test_ordering_and_shares(self):
        attribution = np.array([0.1, 0.6, 0.3])
        top = top_channels(attribution, k=2)
        assert top == [(1, 0.6), (2, pytest.approx(0.3))]

    def test_k_validation(self):
        with pytest.raises(ValueError):
            top_channels(np.ones(3), k=0)
