"""Grid-search tuner tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TFMAEConfig
from repro.eval.tuning import GridResult, grid_search


@pytest.fixture(scope="module")
def small_dataset():
    from repro.datasets import get_dataset
    return get_dataset("NIPS-TS-Global", seed=0, scale=0.02)


def _base() -> TFMAEConfig:
    return TFMAEConfig(window_size=50, d_model=16, num_layers=1, num_heads=2,
                       anomaly_ratio=5.0, epochs=2, batch_size=8,
                       learning_rate=1e-3)


class TestGridSearch:
    def test_covers_full_product(self, small_dataset):
        results = grid_search(
            small_dataset,
            grid={"temporal_mask_ratio": [20.0, 50.0], "frequency_mask_ratio": [20.0, 50.0]},
            base=_base(),
        )
        assert len(results) == 4
        seen = {tuple(sorted(r.overrides.items())) for r in results}
        assert len(seen) == 4

    def test_sorted_by_objective(self, small_dataset):
        results = grid_search(
            small_dataset,
            grid={"temporal_mask_ratio": [10.0, 60.0]},
            base=_base(),
        )
        assert results[0].f1 >= results[-1].f1

    def test_auc_objective(self, small_dataset):
        results = grid_search(
            small_dataset,
            grid={"temporal_mask_ratio": [10.0, 60.0]},
            base=_base(),
            objective="auc",
        )
        assert results[0].auc >= results[-1].auc
        assert all(0.0 <= r.auc <= 1.0 for r in results)

    def test_validation(self, small_dataset):
        with pytest.raises(ValueError):
            grid_search(small_dataset, grid={}, base=_base())
        with pytest.raises(ValueError):
            grid_search(small_dataset, grid={"epochs": [1]}, base=_base(),
                        objective="accuracy")

    def test_result_str(self):
        result = GridResult(overrides={"x": 1}, f1=0.5, auc=0.9)
        assert "F1=50.00%" in str(result)
        assert "x=1" in str(result)
