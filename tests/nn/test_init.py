"""Weight-initialisation tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import init


class TestInitialisers:
    def test_xavier_uniform_bounds(self, rng):
        weights = init.xavier_uniform((100, 200), rng)
        bound = np.sqrt(6.0 / 300)
        assert np.all(np.abs(weights) <= bound)
        assert weights.std() > 0.5 * bound / np.sqrt(3)  # actually spread out

    def test_xavier_normal_variance(self, rng):
        weights = init.xavier_normal((500, 500), rng)
        expected_std = np.sqrt(2.0 / 1000)
        assert weights.std() == pytest.approx(expected_std, rel=0.1)

    def test_kaiming_uniform_bounds(self, rng):
        weights = init.kaiming_uniform((100, 50), rng)
        assert np.all(np.abs(weights) <= np.sqrt(6.0 / 100))

    def test_gain_scales(self, rng):
        small = init.xavier_uniform((50, 50), np.random.default_rng(0), gain=1.0)
        large = init.xavier_uniform((50, 50), np.random.default_rng(0), gain=2.0)
        np.testing.assert_allclose(large, 2.0 * small)

    def test_normal_std(self, rng):
        weights = init.normal((10_000,), rng, std=0.02)
        assert weights.std() == pytest.approx(0.02, rel=0.1)

    def test_zeros(self):
        np.testing.assert_array_equal(init.zeros((3, 4)), np.zeros((3, 4)))

    def test_1d_fans(self, rng):
        # 1-D shapes (e.g. mask tokens) treat the size as both fans.
        weights = init.xavier_uniform((64,), rng)
        assert weights.shape == (64,)

    def test_conv_fans(self, rng):
        # (out, in, kernel) shapes include the receptive field in the fans.
        weights = init.xavier_uniform((8, 4, 3), rng)
        bound = np.sqrt(6.0 / (4 * 3 + 8 * 3))
        assert np.all(np.abs(weights) <= bound)

    def test_empty_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            init.xavier_uniform((), rng)

    def test_deterministic_with_seeded_rng(self):
        a = init.xavier_uniform((5, 5), np.random.default_rng(42))
        b = init.xavier_uniform((5, 5), np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)
